//! Property-style tests for the connection matching resolver.
//!
//! Across many seeds, topologies, and random intent assignments:
//! - no node ever appears in two connections in a round (the model's
//!   one-connection-per-node invariant),
//! - every connection joins a proposer to a listening neighbor,
//! - the matching is maximal over willing pairs: no free proposer is left
//!   adjacent to a free listener — which on complete graphs means the
//!   proposer/listener matching is maximal outright.

use gossip_core::{resolve_connections, Intent, NodeId, Rng, Topology};

fn random_intents(topo: &Topology, rng: &mut Rng) -> Vec<Intent> {
    (0..topo.num_nodes())
        .map(|u| {
            let neighbors = topo.neighbors(NodeId(u as u32));
            match rng.gen_range(3) {
                0 if !neighbors.is_empty() => {
                    Intent::Propose(neighbors[rng.gen_range(neighbors.len())])
                }
                1 => Intent::Listen,
                _ => Intent::Idle,
            }
        })
        .collect()
}

fn check_invariants(topo: &Topology, intents: &[Intent], seed: u64) {
    let conns = resolve_connections(topo, intents, &mut Rng::new(seed));

    // Invariant 1: a matching — no node in two connections.
    let mut matched = vec![false; topo.num_nodes()];
    for c in &conns {
        for node in [c.initiator, c.acceptor] {
            assert!(
                !matched[node.index()],
                "node {node} appears in two connections (seed {seed})"
            );
            matched[node.index()] = true;
        }
    }

    // Invariant 2: connections respect roles and the topology.
    for c in &conns {
        assert!(
            matches!(intents[c.initiator.index()], Intent::Propose(_)),
            "initiator {} did not propose",
            c.initiator
        );
        assert_eq!(
            intents[c.acceptor.index()],
            Intent::Listen,
            "acceptor {} was not listening",
            c.acceptor
        );
        assert!(
            topo.are_neighbors(c.initiator, c.acceptor),
            "connection across non-edge"
        );
    }

    // Invariant 3: maximal over willing pairs — no free proposer adjacent
    // to a free listener.
    for u in 0..topo.num_nodes() {
        let u = NodeId(u as u32);
        if !matches!(intents[u.index()], Intent::Propose(_)) || matched[u.index()] {
            continue;
        }
        for &v in topo.neighbors(u) {
            assert!(
                intents[v.index()] != Intent::Listen || matched[v.index()],
                "free proposer {u} adjacent to free listener {v} (seed {seed})"
            );
        }
    }
}

#[test]
fn invariants_hold_across_topologies_and_seeds() {
    for seed in 0..30u64 {
        let mut rng = Rng::new(seed);
        let topologies = [
            Topology::line(17),
            Topology::ring(24),
            Topology::grid(25),
            Topology::complete(16),
            Topology::random_geometric(20, &mut rng),
        ];
        for topo in &topologies {
            let intents = random_intents(topo, &mut rng);
            check_invariants(topo, &intents, seed.wrapping_mul(31).wrapping_add(7));
        }
    }
}

#[test]
fn complete_graph_matchings_are_maximal() {
    // On a complete graph every proposer is adjacent to every listener, so
    // maximality over willing pairs means min(free proposers, free
    // listeners) == 0 after resolution.
    for seed in 0..50u64 {
        let n = 20;
        let topo = Topology::complete(n);
        let mut rng = Rng::new(seed);
        let intents: Vec<Intent> = (0..n)
            .map(|u| {
                if rng.gen_bool() {
                    // Propose to a random other node.
                    let mut v = rng.gen_range(n - 1);
                    if v >= u {
                        v += 1;
                    }
                    Intent::Propose(NodeId(v as u32))
                } else {
                    Intent::Listen
                }
            })
            .collect();

        let conns = resolve_connections(&topo, &intents, &mut rng);
        let mut matched = vec![false; n];
        for c in &conns {
            matched[c.initiator.index()] = true;
            matched[c.acceptor.index()] = true;
        }
        let free_proposers = (0..n)
            .filter(|&u| matches!(intents[u], Intent::Propose(_)) && !matched[u])
            .count();
        let free_listeners = (0..n)
            .filter(|&u| intents[u] == Intent::Listen && !matched[u])
            .count();
        assert!(
            free_proposers == 0 || free_listeners == 0,
            "non-maximal matching on complete graph (seed {seed}): \
             {free_proposers} free proposers, {free_listeners} free listeners"
        );
        // And the number of connections is what maximality dictates: the
        // smaller side of the willing split is fully matched.
        let proposers = (0..n)
            .filter(|&u| matches!(intents[u], Intent::Propose(_)))
            .count();
        assert_eq!(conns.len(), proposers.min(n - proposers));
    }
}

#[test]
fn resolution_is_deterministic_for_a_fixed_seed() {
    let topo = Topology::grid(36);
    let mut rng = Rng::new(99);
    let intents = random_intents(&topo, &mut rng);
    let a = resolve_connections(&topo, &intents, &mut Rng::new(1234));
    let b = resolve_connections(&topo, &intents, &mut Rng::new(1234));
    assert_eq!(a, b);
}
