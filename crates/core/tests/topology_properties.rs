//! Property tests for the static topology builders: exact edge counts for
//! the regular families, structural invariants of `from_edges` (symmetry,
//! sortedness, dedup), and connectivity across all builders and sizes.

use gossip_core::{NodeId, Rng, Topology};

/// Every adjacency list is sorted, duplicate-free, self-loop-free, and
/// symmetric (`v ∈ adj[u]` iff `u ∈ adj[v]`).
fn assert_well_formed(t: &Topology) {
    for u in 0..t.num_nodes() {
        let u = NodeId(u as u32);
        let neighbors = t.neighbors(u);
        assert!(
            neighbors.windows(2).all(|w| w[0] < w[1]),
            "{}: neighbors of {u} not strictly sorted (dup or disorder)",
            t.name()
        );
        for &v in neighbors {
            assert_ne!(v, u, "{}: self-loop at {u}", t.name());
            assert!(
                t.are_neighbors(v, u),
                "{}: asymmetric edge {u} -> {v}",
                t.name()
            );
        }
    }
    // Degree sum is even and consistent with the edge count.
    let degree_sum: usize = (0..t.num_nodes()).map(|u| t.degree(NodeId(u as u32))).sum();
    assert_eq!(degree_sum, 2 * t.num_edges(), "{}", t.name());
}

#[test]
fn line_edge_counts_and_connectivity() {
    for n in 1..=40 {
        let t = Topology::line(n);
        assert_eq!(t.num_edges(), n - 1, "line({n})");
        assert!(t.is_connected(), "line({n})");
        assert_well_formed(&t);
    }
}

#[test]
fn ring_edge_counts_and_regularity() {
    for n in 1..=40 {
        let t = Topology::ring(n);
        let expected = match n {
            1 => 0,
            2 => 1,
            n => n,
        };
        assert_eq!(t.num_edges(), expected, "ring({n})");
        assert!(t.is_connected(), "ring({n})");
        assert_well_formed(&t);
        if n >= 3 {
            for u in 0..n {
                assert_eq!(t.degree(NodeId(u as u32)), 2, "ring({n}) node {u}");
            }
        }
    }
}

#[test]
fn grid_edge_counts_match_the_lattice() {
    // Independent count: `rows = floor(sqrt n)`, `cols = ceil(n / rows)`,
    // nodes laid out row-major; horizontal edges join row-adjacent cells,
    // vertical edges join column-adjacent cells.
    for n in 1..=80 {
        let t = Topology::grid(n);
        let rows = (n as f64).sqrt().floor().max(1.0) as usize;
        let cols = n.div_ceil(rows);
        let horizontal = (0..n).filter(|i| i % cols + 1 < cols && i + 1 < n).count();
        let vertical = (0..n).filter(|i| i + cols < n).count();
        assert_eq!(t.num_edges(), horizontal + vertical, "grid({n})");
        assert!(t.is_connected(), "grid({n})");
        assert_well_formed(&t);
        for u in 0..n {
            assert!(t.degree(NodeId(u as u32)) <= 4, "grid({n}) node {u}");
        }
    }
}

#[test]
fn complete_edge_counts() {
    for n in 1..=30 {
        let t = Topology::complete(n);
        assert_eq!(t.num_edges(), n * (n - 1) / 2, "complete({n})");
        assert!(t.is_connected(), "complete({n})");
        assert_well_formed(&t);
    }
}

#[test]
fn random_geometric_is_connected_and_well_formed_across_seeds() {
    for seed in 0..8 {
        let mut rng = Rng::new(seed);
        let t = Topology::random_geometric(40, &mut rng);
        assert!(t.is_connected(), "rgg seed {seed}");
        assert_well_formed(&t);
    }
}

#[test]
fn rgg_geometry_matches_the_graph() {
    // The returned point set and radius must reproduce exactly the edges
    // the builder chose — the contract mobility models depend on.
    let mut rng = Rng::new(17);
    let (t, geometry) = Topology::random_geometric_with_geometry(50, &mut rng);
    assert_eq!(geometry.positions().len(), 50);
    for u in 0..50u32 {
        let derived = geometry.neighbors_of(NodeId(u));
        assert_eq!(
            derived,
            t.neighbors(NodeId(u)).to_vec(),
            "geometry-derived neighbors of {u} diverge from the graph"
        );
    }
}

#[test]
fn from_edges_dedups_and_symmetrizes() {
    // Duplicates (in both orientations) and self-loops collapse away.
    let t = Topology::from_edges(
        "messy",
        5,
        &[(0, 1), (1, 0), (0, 1), (2, 2), (3, 4), (4, 3), (1, 4)],
    );
    assert_eq!(t.num_edges(), 3);
    assert_eq!(t.neighbors(NodeId(0)), &[NodeId(1)]);
    assert_eq!(t.neighbors(NodeId(1)), &[NodeId(0), NodeId(4)]);
    assert_eq!(t.neighbors(NodeId(2)), &[] as &[NodeId]);
    assert_well_formed(&t);
}

#[test]
fn from_edges_random_inputs_stay_well_formed() {
    for seed in 0..10 {
        let mut rng = Rng::new(1000 + seed);
        let n = 2 + rng.gen_range(30);
        let m = rng.gen_range(3 * n);
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.gen_range(n) as u32, rng.gen_range(n) as u32))
            .collect();
        let t = Topology::from_edges("random", n, &edges);
        assert_well_formed(&t);
        // Every requested non-loop edge is present.
        for &(u, v) in &edges {
            if u != v {
                assert!(
                    t.are_neighbors(NodeId(u), NodeId(v)),
                    "seed {seed}: {u}-{v}"
                );
            }
        }
    }
}

#[test]
fn builders_degrade_gracefully_on_empty_graphs() {
    for t in [
        Topology::line(0),
        Topology::ring(0),
        Topology::grid(0),
        Topology::complete(0),
        Topology::from_edges("empty", 0, &[]),
    ] {
        assert_eq!(t.num_nodes(), 0);
        assert_eq!(t.num_edges(), 0);
        assert!(t.is_connected(), "empty graph counts as connected");
    }
}
