//! Virtual time and timing distributions for event-driven executions.
//!
//! The synchronous mobile telephone model measures executions in rounds;
//! the asynchronous variant (Newport, Weaver & Zheng 2021) replaces the
//! global round clock with per-node local clocks that drift, advertisement
//! refreshes that fire on randomized intervals, and connections whose
//! setup and transfer take variable latency. This module provides the
//! shared vocabulary for that world:
//!
//! - [`SimTime`]: a point in virtual time, measured in integer ticks so
//!   event ordering is exact (no float comparison in the event queue),
//! - [`TICKS_PER_ROUND`]: the conversion constant that makes virtual-time
//!   results comparable with synchronous round counts,
//! - [`TimingConfig`]: the drift/jitter/latency distributions an
//!   event-driven scheduler samples, all deterministically from [`Rng`].

use crate::Rng;

/// Virtual-time ticks corresponding to one synchronous round.
///
/// One tick is the resolution of the event queue; one round's worth of
/// ticks is the nominal advertisement refresh period of an undrifted node.
/// Reporting virtual time in units of `TICKS_PER_ROUND` makes asynchronous
/// completion times directly comparable to synchronous round counts.
pub const TICKS_PER_ROUND: u64 = 1024;

/// A point in virtual time: ticks elapsed since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The start of every run.
    pub const ZERO: SimTime = SimTime(0);

    /// Raw tick count.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// The instant `delay` ticks later (saturating at the far future).
    #[inline]
    pub fn after(self, delay: u64) -> SimTime {
        SimTime(self.0.saturating_add(delay))
    }

    /// This instant expressed in synchronous-round equivalents, rounded
    /// up: time zero is round 0, and any instant in `((r-1), r]` rounds'
    /// worth of ticks maps to round `r`. This mirrors the engine's 1-based
    /// round numbering so async completion times slot into the same
    /// metrics.
    #[inline]
    pub fn round_equivalent(self) -> usize {
        self.0.div_ceil(TICKS_PER_ROUND) as usize
    }

    /// The coarse epoch this instant falls in: `ticks / TICKS_PER_ROUND`.
    ///
    /// Event-driven schedulers use the epoch where the synchronous engine
    /// uses the round number — e.g. as the advertisement-tag salt — so
    /// nodes acting around the same virtual time agree on the salt despite
    /// having no shared round counter.
    #[inline]
    pub fn epoch(self) -> u64 {
        self.0 / TICKS_PER_ROUND
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}t", self.0)
    }
}

/// Distributions governing an asynchronous execution. All sampling is
/// deterministic given the [`Rng`], so event-driven runs are exactly
/// reproducible from a seed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingConfig {
    /// Maximum relative clock drift. Each node draws a fixed clock-period
    /// factor uniformly from `[1 - drift, 1 + drift]`; a node with factor
    /// 1.1 refreshes its advertisement ~10% slower than nominal. Must lie
    /// in `[0, 1)`.
    pub drift: f64,
    /// Per-refresh jitter. Every advertisement refresh interval is
    /// additionally scaled by a fresh uniform draw from
    /// `[1 - refresh_jitter, 1 + refresh_jitter]`, so refreshes never
    /// phase-lock across nodes. Must lie in `[0, 1)`.
    pub refresh_jitter: f64,
    /// Minimum connection-setup / transfer latency, in ticks.
    pub min_latency: u64,
    /// Maximum connection-setup / transfer latency, in ticks. Must be at
    /// least `min_latency`.
    pub max_latency: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            drift: 0.1,
            refresh_jitter: 0.25,
            min_latency: 32,
            max_latency: 256,
        }
    }
}

impl TimingConfig {
    /// Check the parameter ranges documented on each field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.drift) {
            return Err(format!("drift {} must lie in [0, 1)", self.drift));
        }
        if !(0.0..1.0).contains(&self.refresh_jitter) {
            return Err(format!(
                "refresh jitter {} must lie in [0, 1)",
                self.refresh_jitter
            ));
        }
        if self.min_latency > self.max_latency {
            return Err(format!(
                "min latency {} exceeds max latency {}",
                self.min_latency, self.max_latency
            ));
        }
        Ok(())
    }

    /// Draw a node's fixed clock-period factor from `[1 - drift, 1 + drift]`.
    pub fn drift_factor(&self, rng: &mut Rng) -> f64 {
        1.0 + (2.0 * rng.gen_f64() - 1.0) * self.drift
    }

    /// Draw the delay until a node's next advertisement refresh: the
    /// nominal period of [`TICKS_PER_ROUND`] ticks, scaled by the node's
    /// `drift_factor` and fresh jitter. Always at least one tick, so event
    /// chains can never stall at a single instant.
    pub fn refresh_interval(&self, drift_factor: f64, rng: &mut Rng) -> u64 {
        let jitter = 1.0 + (2.0 * rng.gen_f64() - 1.0) * self.refresh_jitter;
        ((TICKS_PER_ROUND as f64 * drift_factor * jitter) as u64).max(1)
    }

    /// Draw one connection-setup or transfer latency, uniform over
    /// `[min_latency, max_latency]` ticks.
    pub fn latency(&self, rng: &mut Rng) -> u64 {
        let span = self.max_latency - self.min_latency;
        if span == u64::MAX {
            // [0, u64::MAX]: the +1 below would overflow; the raw output
            // is already uniform over the whole domain.
            return rng.next_u64();
        }
        self.min_latency + rng.gen_range((span + 1) as usize) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_equivalents_are_one_based_like_engine_rounds() {
        assert_eq!(SimTime::ZERO.round_equivalent(), 0);
        assert_eq!(SimTime(1).round_equivalent(), 1);
        assert_eq!(SimTime(TICKS_PER_ROUND).round_equivalent(), 1);
        assert_eq!(SimTime(TICKS_PER_ROUND + 1).round_equivalent(), 2);
    }

    #[test]
    fn epochs_partition_time_into_round_sized_slabs() {
        assert_eq!(SimTime(0).epoch(), 0);
        assert_eq!(SimTime(TICKS_PER_ROUND - 1).epoch(), 0);
        assert_eq!(SimTime(TICKS_PER_ROUND).epoch(), 1);
    }

    #[test]
    fn after_saturates_instead_of_wrapping() {
        assert_eq!(SimTime(5).after(7), SimTime(12));
        assert_eq!(SimTime(u64::MAX).after(1), SimTime(u64::MAX));
    }

    #[test]
    fn drift_factors_stay_in_band() {
        let cfg = TimingConfig {
            drift: 0.2,
            ..TimingConfig::default()
        };
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            let f = cfg.drift_factor(&mut rng);
            assert!((0.8..=1.2).contains(&f), "drift factor {f} out of band");
        }
    }

    #[test]
    fn refresh_intervals_stay_in_band_and_vary() {
        let cfg = TimingConfig::default();
        let mut rng = Rng::new(9);
        let lo = (TICKS_PER_ROUND as f64 * 0.9 * 0.75) as u64;
        let hi = (TICKS_PER_ROUND as f64 * 1.1 * 1.25) as u64;
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..200 {
            let f = cfg.drift_factor(&mut rng);
            let iv = cfg.refresh_interval(f, &mut rng);
            assert!((lo..=hi).contains(&iv), "interval {iv} outside [{lo},{hi}]");
            distinct.insert(iv);
        }
        assert!(distinct.len() > 50, "intervals should be well spread");
    }

    #[test]
    fn latency_is_uniform_over_the_closed_range() {
        let cfg = TimingConfig {
            min_latency: 4,
            max_latency: 7,
            ..TimingConfig::default()
        };
        let mut rng = Rng::new(11);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let l = cfg.latency(&mut rng);
            assert!((4..=7).contains(&l));
            seen[l as usize] = true;
        }
        assert!(seen[4] && seen[5] && seen[6] && seen[7]);
    }

    #[test]
    fn latency_over_the_full_domain_does_not_overflow() {
        let cfg = TimingConfig {
            min_latency: 0,
            max_latency: u64::MAX,
            ..TimingConfig::default()
        };
        let mut rng = Rng::new(2);
        for _ in 0..100 {
            // Any draw is in range by construction; this must not panic.
            cfg.latency(&mut rng);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let cfg = TimingConfig::default();
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(cfg.latency(&mut a), cfg.latency(&mut b));
            let (fa, fb) = (cfg.drift_factor(&mut a), cfg.drift_factor(&mut b));
            assert_eq!(fa, fb);
            assert_eq!(
                cfg.refresh_interval(fa, &mut a),
                cfg.refresh_interval(fb, &mut b)
            );
        }
    }

    #[test]
    fn validate_rejects_bad_ranges() {
        let ok = TimingConfig::default();
        assert!(ok.validate().is_ok());
        assert!(TimingConfig { drift: 1.0, ..ok }.validate().is_err());
        assert!(TimingConfig { drift: -0.1, ..ok }.validate().is_err());
        assert!(TimingConfig {
            refresh_jitter: 1.5,
            ..ok
        }
        .validate()
        .is_err());
        assert!(TimingConfig {
            min_latency: 10,
            max_latency: 5,
            ..ok
        }
        .validate()
        .is_err());
    }
}
