//! Static communication graphs for the mobile telephone model.
//!
//! The model abstracts physical proximity as an undirected graph: nodes can
//! only scan advertisements of, and connect to, their graph neighbors. The
//! builders here cover the standard analysis topologies — line, ring, grid,
//! complete — plus random geometric graphs, the usual stand-in for devices
//! scattered in space with a fixed radio range.
//!
//! Adjacency is stored in **CSR form** (one flat edge array plus per-node
//! offsets) rather than a `Vec` of per-node `Vec`s: a scan over a node's
//! neighbors is a contiguous slice read, the whole graph is two
//! allocations, and a round-loop sweep over all nodes walks the edge array
//! linearly — the layout the engine's sharded hot path is built around.

use crate::{NodeId, Rng};

/// Read access to an undirected graph over dense node ids, with sorted
/// per-node neighbor slices.
///
/// Both the static [`Topology`] and the mutable
/// [`DynamicTopology`](crate::DynamicTopology) implement this view, so the
/// matching resolvers — and anything else that only *reads* adjacency —
/// run unchanged over a frozen graph or one mutating under churn. For a
/// dynamic graph the view exposes the **currently active** edges: both
/// endpoints alive and the edge not faded out.
pub trait GraphView {
    /// Number of nodes (alive or not) in the graph.
    fn num_nodes(&self) -> usize;

    /// Sorted neighbors of `node` visible through this view.
    fn neighbors(&self, node: NodeId) -> &[NodeId];

    /// Are `u` and `v` adjacent through this view?
    fn are_neighbors(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }
}

/// A uniform bucket grid over the unit square: cells of edge length
/// `>= radius` so that all points within `radius` of a query point lie in
/// a bounded window of cells around it. This is what makes RGG
/// construction and mobility re-derivation `O(local density)` instead of
/// a full `O(n)` scan per node.
#[derive(Clone, Debug)]
struct SpatialGrid {
    /// Cells per side.
    dims: usize,
    /// How many cells a radius spans (the query window half-width).
    reach: usize,
    /// `dims × dims` buckets of node ids, row-major.
    buckets: Vec<Vec<u32>>,
}

impl SpatialGrid {
    fn new(positions: &[(f64, f64)], radius: f64) -> Self {
        let n = positions.len();
        // Cell edge ~ radius, but never more buckets than ~n so sparse
        // point sets with tiny radii do not allocate absurd grids.
        let max_dims = (n as f64).sqrt().ceil().max(1.0) as usize;
        let dims = ((1.0 / radius).floor() as usize).clamp(1, max_dims);
        let reach = (radius * dims as f64).ceil().max(1.0) as usize;
        let mut grid = SpatialGrid {
            dims,
            reach,
            buckets: vec![Vec::new(); dims * dims],
        };
        for (i, &p) in positions.iter().enumerate() {
            let b = grid.bucket_of(p);
            grid.buckets[b].push(i as u32);
        }
        grid
    }

    #[inline]
    fn axis_cell(&self, coord: f64) -> usize {
        ((coord * self.dims as f64) as usize).min(self.dims - 1)
    }

    #[inline]
    fn bucket_of(&self, (x, y): (f64, f64)) -> usize {
        self.axis_cell(y) * self.dims + self.axis_cell(x)
    }

    fn remove(&mut self, pos: (f64, f64), id: u32) {
        let b = self.bucket_of(pos);
        let bucket = &mut self.buckets[b];
        let at = bucket
            .iter()
            .position(|&v| v == id)
            .expect("node must be bucketed at its recorded position");
        bucket.swap_remove(at);
    }

    fn insert(&mut self, pos: (f64, f64), id: u32) {
        let b = self.bucket_of(pos);
        self.buckets[b].push(id);
    }

    /// Visit every node id bucketed within `reach` cells of `pos`.
    fn for_window(&self, pos: (f64, f64), mut f: impl FnMut(u32)) {
        let (cx, cy) = (self.axis_cell(pos.0), self.axis_cell(pos.1));
        let (x0, x1) = (
            cx.saturating_sub(self.reach),
            (cx + self.reach).min(self.dims - 1),
        );
        let (y0, y1) = (
            cy.saturating_sub(self.reach),
            (cy + self.reach).min(self.dims - 1),
        );
        for y in y0..=y1 {
            for x in x0..=x1 {
                for &id in &self.buckets[y * self.dims + x] {
                    f(id);
                }
            }
        }
    }
}

/// The point set and connection radius behind a random geometric graph,
/// for consumers that need the embedding itself — e.g. waypoint mobility
/// models that move nodes and re-derive radius-based edges.
///
/// The geometry maintains an internal uniform bucket grid over the points, so
/// neighbor re-derivation queries only nearby cells; positions therefore
/// change through [`move_to`](Self::move_to) (which keeps the index
/// consistent) rather than by direct field access.
#[derive(Clone, Debug)]
pub struct RggGeometry {
    /// Node positions in the unit square, indexed by node id.
    positions: Vec<(f64, f64)>,
    /// Connection radius: nodes within this distance are adjacent.
    radius: f64,
    grid: SpatialGrid,
}

impl RggGeometry {
    /// Index `positions` under connection radius `radius`.
    pub fn new(positions: Vec<(f64, f64)>, radius: f64) -> Self {
        assert!(
            radius > 0.0 && radius.is_finite(),
            "connection radius must be positive"
        );
        let grid = SpatialGrid::new(&positions, radius);
        RggGeometry {
            positions,
            radius,
            grid,
        }
    }

    /// Number of embedded nodes.
    pub fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    /// All node positions, indexed by node id.
    pub fn positions(&self) -> &[(f64, f64)] {
        &self.positions
    }

    /// Current position of `node`.
    #[inline]
    pub fn position(&self, node: NodeId) -> (f64, f64) {
        self.positions[node.index()]
    }

    /// The connection radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Move `node` to `pos`, keeping the spatial index consistent.
    pub fn move_to(&mut self, node: NodeId, pos: (f64, f64)) {
        let old = self.positions[node.index()];
        self.grid.remove(old, node.0);
        self.positions[node.index()] = pos;
        self.grid.insert(pos, node.0);
    }

    /// Sorted ids of every node within `radius` of `node`'s position
    /// (excluding `node` itself), against the current positions. Queries
    /// only the grid cells a radius can span, so the cost scales with
    /// local density, not `n`.
    pub fn neighbors_of(&self, node: NodeId) -> Vec<NodeId> {
        let (x, y) = self.positions[node.index()];
        let r2 = self.radius * self.radius;
        let mut out = Vec::new();
        self.grid.for_window((x, y), |v| {
            if v != node.0 {
                let (px, py) = self.positions[v as usize];
                let (dx, dy) = (x - px, y - py);
                if dx * dx + dy * dy <= r2 {
                    out.push(NodeId(v));
                }
            }
        });
        out.sort_unstable();
        out
    }

    /// Every radius edge as a `(u, v)` pair with `u < v`, via the grid.
    fn edge_pairs(&self) -> Vec<(u32, u32)> {
        let r2 = self.radius * self.radius;
        let mut edges = Vec::new();
        for (u, &(x, y)) in self.positions.iter().enumerate() {
            self.grid.for_window((x, y), |v| {
                if (v as usize) > u {
                    let (px, py) = self.positions[v as usize];
                    let (dx, dy) = (x - px, y - py);
                    if dx * dx + dy * dy <= r2 {
                        edges.push((u as u32, v));
                    }
                }
            });
        }
        edges
    }
}

/// An undirected graph over nodes `0..num_nodes()` in CSR layout: one flat
/// sorted edge array plus `u32` offsets, giving cache-friendly contiguous
/// neighbor slices and `O(log degree)` membership checks with exactly two
/// heap allocations for the whole graph.
#[derive(Clone, Debug)]
pub struct Topology {
    /// `offsets[u]..offsets[u+1]` indexes `u`'s neighbors in `edges`.
    pub(crate) offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists.
    pub(crate) edges: Vec<NodeId>,
    name: String,
}

impl Topology {
    /// Build a topology from an undirected edge list. Self-loops and
    /// duplicate edges are ignored.
    pub fn from_edges(name: &str, n: usize, edges: &[(u32, u32)]) -> Self {
        // Materialize both directions, sort, dedup, then cut into CSR.
        let mut directed: Vec<(u32, u32)> = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            let (ui, vi) = (u as usize, v as usize);
            assert!(ui < n && vi < n, "edge ({u},{v}) out of range for n={n}");
            if ui == vi {
                continue;
            }
            directed.push((u, v));
            directed.push((v, u));
        }
        directed.sort_unstable();
        directed.dedup();
        assert!(
            directed.len() < u32::MAX as usize,
            "edge count overflows u32 CSR offsets"
        );
        let mut offsets = vec![0u32; n + 1];
        for &(u, _) in &directed {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let edges = directed.into_iter().map(|(_, v)| NodeId(v)).collect();
        Topology {
            offsets,
            edges,
            name: name.to_string(),
        }
    }

    /// Path graph: `0 — 1 — … — n-1`.
    pub fn line(n: usize) -> Self {
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
        Self::from_edges("line", n, &edges)
    }

    /// Cycle graph: the line plus the wrap-around edge `n-1 — 0`.
    pub fn ring(n: usize) -> Self {
        let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
        if n > 2 {
            edges.push((n as u32 - 1, 0));
        }
        Self::from_edges("ring", n, &edges)
    }

    /// Near-square 4-neighbor lattice over `n` nodes. The grid has
    /// `floor(sqrt(n))` rows; the final row may be partial.
    pub fn grid(n: usize) -> Self {
        let rows = (n as f64).sqrt().floor().max(1.0) as usize;
        let cols = n.div_ceil(rows);
        let mut edges = Vec::new();
        for i in 0..n {
            let c = i % cols;
            if c + 1 < cols && i + 1 < n {
                edges.push((i as u32, i as u32 + 1));
            }
            if i + cols < n {
                edges.push((i as u32, (i + cols) as u32));
            }
        }
        Self::from_edges("grid", n, &edges)
    }

    /// Complete graph: every pair of nodes is adjacent.
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        Self::from_edges("complete", n, &edges)
    }

    /// Random geometric graph: `n` points placed uniformly in the unit
    /// square, adjacent when within the connection radius. The radius starts
    /// at the standard connectivity threshold `sqrt(2 ln n / n)` and grows
    /// until the graph is connected, so the result is always usable for
    /// gossip while staying sparse. Deterministic in `rng`.
    ///
    /// The canonical name of the resulting topology is `"rgg"`.
    pub fn random_geometric(n: usize, rng: &mut Rng) -> Self {
        Self::random_geometric_with_geometry(n, rng).0
    }

    /// [`random_geometric`](Self::random_geometric), also returning the
    /// point set and final radius so mobility models can move the nodes
    /// and re-derive radius-based edges. Same RNG consumption, same graph.
    ///
    /// Edge derivation goes through the geometry's spatial grid — each
    /// node checks only the points bucketed within a radius of itself —
    /// so a million-node RGG builds in `O(n · expected degree)` rather
    /// than the old all-pairs `O(n²)` sweep.
    pub fn random_geometric_with_geometry(n: usize, rng: &mut Rng) -> (Self, RggGeometry) {
        let pts = Self::sample_unit_square(n, rng);
        let mut radius = if n > 1 {
            (2.0 * (n as f64).ln() / n as f64).sqrt()
        } else {
            1.0
        };
        loop {
            let geometry = RggGeometry::new(pts.clone(), radius);
            let topo = Self::from_edges("rgg", n, &geometry.edge_pairs());
            if topo.is_connected() {
                return (topo, geometry);
            }
            radius *= 1.25;
        }
    }

    /// Random geometric graph at an **explicit** connection radius, with
    /// its embedding. Unlike [`random_geometric`](Self::random_geometric),
    /// the radius is taken as given and never grown: a radius below the
    /// connectivity threshold yields a disconnected graph (and a gossip
    /// run that can never complete), which is itself a legitimate
    /// experiment. The point sampling is identical to the adaptive
    /// builder's — the same `rng` state yields the same embedding — and
    /// the topology's canonical name is `"rgg"` either way.
    pub fn random_geometric_fixed_radius(
        n: usize,
        radius: f64,
        rng: &mut Rng,
    ) -> (Self, RggGeometry) {
        let pts = Self::sample_unit_square(n, rng);
        let geometry = RggGeometry::new(pts, radius);
        let topo = Self::from_edges("rgg", n, &geometry.edge_pairs());
        (topo, geometry)
    }

    /// The shared point sampling of both RGG builders: `n` uniform points
    /// in the unit square, two `rng` draws per point.
    fn sample_unit_square(n: usize, rng: &mut Rng) -> Vec<(f64, f64)> {
        (0..n).map(|_| (rng.gen_f64(), rng.gen_f64())).collect()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Builder name ("ring", "grid", …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sorted neighbors of `node`.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let u = node.index();
        &self.edges[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        let u = node.index();
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Are `u` and `v` adjacent?
    pub fn are_neighbors(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Total number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// BFS connectivity check. The empty graph counts as connected.
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0usize]);
        seen[0] = true;
        let mut visited = 1;
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(NodeId(u as u32)) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    visited += 1;
                    queue.push_back(v.index());
                }
            }
        }
        visited == n
    }
}

impl GraphView for Topology {
    fn num_nodes(&self) -> usize {
        Topology::num_nodes(self)
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        Topology::neighbors(self, node)
    }

    fn are_neighbors(&self, u: NodeId, v: NodeId) -> bool {
        Topology::are_neighbors(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_degrees() {
        let t = Topology::line(5);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.degree(NodeId(0)), 1);
        assert_eq!(t.degree(NodeId(2)), 2);
        assert_eq!(t.degree(NodeId(4)), 1);
        assert!(t.is_connected());
    }

    #[test]
    fn ring_is_two_regular() {
        let t = Topology::ring(6);
        assert_eq!(t.num_edges(), 6);
        for i in 0..6 {
            assert_eq!(t.degree(NodeId(i)), 2);
        }
        assert!(t.are_neighbors(NodeId(5), NodeId(0)));
    }

    #[test]
    fn tiny_rings_degrade_gracefully() {
        // A 2-ring is just an edge; a 1-ring a lone node.
        assert_eq!(Topology::ring(2).num_edges(), 1);
        assert_eq!(Topology::ring(1).num_edges(), 0);
        assert!(Topology::ring(1).is_connected());
    }

    #[test]
    fn grid_structure() {
        // n=12 -> 3 rows x 4 cols.
        let t = Topology::grid(12);
        assert!(t.is_connected());
        assert_eq!(t.degree(NodeId(0)), 2); // corner
        assert_eq!(t.degree(NodeId(5)), 4); // interior
                                            // Partial last row still connects upward.
        let t = Topology::grid(10);
        assert!(t.is_connected());
    }

    #[test]
    fn complete_graph_edges() {
        let t = Topology::complete(7);
        assert_eq!(t.num_edges(), 21);
        for i in 0..7 {
            assert_eq!(t.degree(NodeId(i)), 6);
        }
    }

    #[test]
    fn random_geometric_is_connected_and_deterministic() {
        let mut rng = Rng::new(42);
        let a = Topology::random_geometric(50, &mut rng);
        assert!(a.is_connected());
        let mut rng = Rng::new(42);
        let b = Topology::random_geometric(50, &mut rng);
        assert_eq!(a.num_edges(), b.num_edges(), "same seed, same graph");
    }

    #[test]
    fn fixed_radius_rgg_shares_the_adaptive_embedding() {
        // Same seed => same points; a generous fixed radius on a small
        // point set must reproduce the adaptive builder's graph when the
        // adaptive builder settles on that same radius.
        let (adaptive, geo) = Topology::random_geometric_with_geometry(60, &mut Rng::new(3));
        let (fixed, fixed_geo) =
            Topology::random_geometric_fixed_radius(60, geo.radius(), &mut Rng::new(3));
        assert_eq!(adaptive.num_edges(), fixed.num_edges());
        assert_eq!(geo.positions(), fixed_geo.positions());
        assert_eq!(adaptive.name(), "rgg");
        assert_eq!(fixed.name(), "rgg");
        // A tiny radius is honored as-is, even though it disconnects.
        let (sparse, _) = Topology::random_geometric_fixed_radius(60, 1e-6, &mut Rng::new(3));
        assert!(!sparse.is_connected());
        assert_eq!(sparse.num_edges(), 0);
    }

    #[test]
    fn disconnected_graph_detected() {
        let t = Topology::from_edges("pair", 4, &[(0, 1), (2, 3)]);
        assert!(!t.is_connected());
    }

    #[test]
    fn csr_layout_is_contiguous_and_sorted() {
        let t = Topology::from_edges("messy", 4, &[(3, 0), (0, 1), (1, 3), (0, 2)]);
        assert_eq!(t.offsets.len(), 5);
        assert_eq!(t.offsets[4] as usize, t.edges.len());
        assert_eq!(t.neighbors(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(t.neighbors(NodeId(3)), &[NodeId(0), NodeId(1)]);
    }

    #[test]
    fn grid_neighbors_match_brute_force() {
        // The spatial index must reproduce exactly the all-pairs scan it
        // replaced, including points on cell boundaries.
        let mut rng = Rng::new(7);
        let pts: Vec<(f64, f64)> = (0..300).map(|_| (rng.gen_f64(), rng.gen_f64())).collect();
        for &radius in &[0.03, 0.1, 0.5, 1.5] {
            let geo = RggGeometry::new(pts.clone(), radius);
            let r2 = radius * radius;
            for u in 0..300u32 {
                let (x, y) = pts[u as usize];
                let brute: Vec<NodeId> = (0..300u32)
                    .filter(|&v| {
                        v != u && {
                            let (px, py) = pts[v as usize];
                            let (dx, dy) = (x - px, y - py);
                            dx * dx + dy * dy <= r2
                        }
                    })
                    .map(NodeId)
                    .collect();
                assert_eq!(
                    geo.neighbors_of(NodeId(u)),
                    brute,
                    "radius {radius} node {u}"
                );
            }
        }
    }

    #[test]
    fn geometry_moves_keep_the_index_consistent() {
        let mut rng = Rng::new(19);
        let pts: Vec<(f64, f64)> = (0..80).map(|_| (rng.gen_f64(), rng.gen_f64())).collect();
        let mut geo = RggGeometry::new(pts, 0.2);
        for step in 0..200 {
            let node = NodeId((step * 13 % 80) as u32);
            let target = (rng.gen_f64(), rng.gen_f64());
            geo.move_to(node, target);
            assert_eq!(geo.position(node), target);
            // Re-derived neighbors match a brute-force scan of the
            // *current* positions.
            let (x, y) = target;
            let r2 = geo.radius() * geo.radius();
            let brute: Vec<NodeId> = (0..80u32)
                .filter(|&v| {
                    v != node.0 && {
                        let (px, py) = geo.positions()[v as usize];
                        let (dx, dy) = (x - px, y - py);
                        dx * dx + dy * dy <= r2
                    }
                })
                .map(NodeId)
                .collect();
            assert_eq!(geo.neighbors_of(node), brute, "step {step}");
        }
    }
}
