//! Static communication graphs for the mobile telephone model.
//!
//! The model abstracts physical proximity as an undirected graph: nodes can
//! only scan advertisements of, and connect to, their graph neighbors. The
//! builders here cover the standard analysis topologies — line, ring, grid,
//! complete — plus random geometric graphs, the usual stand-in for devices
//! scattered in space with a fixed radio range.

use crate::{NodeId, Rng};

/// Read access to an undirected graph over dense node ids, with sorted
/// per-node neighbor slices.
///
/// Both the static [`Topology`] and the mutable
/// [`DynamicTopology`](crate::DynamicTopology) implement this view, so the
/// matching resolvers — and anything else that only *reads* adjacency —
/// run unchanged over a frozen graph or one mutating under churn. For a
/// dynamic graph the view exposes the **currently active** edges: both
/// endpoints alive and the edge not faded out.
pub trait GraphView {
    /// Number of nodes (alive or not) in the graph.
    fn num_nodes(&self) -> usize;

    /// Sorted neighbors of `node` visible through this view.
    fn neighbors(&self, node: NodeId) -> &[NodeId];

    /// Are `u` and `v` adjacent through this view?
    fn are_neighbors(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }
}

/// The point set and connection radius behind a random geometric graph,
/// for consumers that need the embedding itself — e.g. waypoint mobility
/// models that move nodes and re-derive radius-based edges.
#[derive(Clone, Debug)]
pub struct RggGeometry {
    /// Node positions in the unit square, indexed by node id.
    pub positions: Vec<(f64, f64)>,
    /// Connection radius: nodes within this distance are adjacent.
    pub radius: f64,
}

impl RggGeometry {
    /// Sorted ids of every node within `radius` of `node`'s position
    /// (excluding `node` itself), against the current `positions`.
    pub fn neighbors_of(&self, node: NodeId) -> Vec<NodeId> {
        let (x, y) = self.positions[node.index()];
        let r2 = self.radius * self.radius;
        self.positions
            .iter()
            .enumerate()
            .filter(|&(v, &(px, py))| {
                v != node.index() && {
                    let (dx, dy) = (x - px, y - py);
                    dx * dx + dy * dy <= r2
                }
            })
            .map(|(v, _)| NodeId(v as u32))
            .collect()
    }
}

/// An undirected graph over nodes `0..num_nodes()`, with sorted adjacency
/// lists for cache-friendly scans and `O(log degree)` membership checks.
#[derive(Clone, Debug)]
pub struct Topology {
    adj: Vec<Vec<NodeId>>,
    name: String,
}

impl Topology {
    /// Build a topology from an undirected edge list. Self-loops and
    /// duplicate edges are ignored.
    pub fn from_edges(name: &str, n: usize, edges: &[(u32, u32)]) -> Self {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            let (ui, vi) = (u as usize, v as usize);
            assert!(ui < n && vi < n, "edge ({u},{v}) out of range for n={n}");
            if ui == vi {
                continue;
            }
            adj[ui].push(NodeId(v));
            adj[vi].push(NodeId(u));
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        Topology {
            adj,
            name: name.to_string(),
        }
    }

    /// Path graph: `0 — 1 — … — n-1`.
    pub fn line(n: usize) -> Self {
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
        Self::from_edges("line", n, &edges)
    }

    /// Cycle graph: the line plus the wrap-around edge `n-1 — 0`.
    pub fn ring(n: usize) -> Self {
        let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
        if n > 2 {
            edges.push((n as u32 - 1, 0));
        }
        Self::from_edges("ring", n, &edges)
    }

    /// Near-square 4-neighbor lattice over `n` nodes. The grid has
    /// `floor(sqrt(n))` rows; the final row may be partial.
    pub fn grid(n: usize) -> Self {
        let rows = (n as f64).sqrt().floor().max(1.0) as usize;
        let cols = n.div_ceil(rows);
        let mut edges = Vec::new();
        for i in 0..n {
            let c = i % cols;
            if c + 1 < cols && i + 1 < n {
                edges.push((i as u32, i as u32 + 1));
            }
            if i + cols < n {
                edges.push((i as u32, (i + cols) as u32));
            }
        }
        Self::from_edges("grid", n, &edges)
    }

    /// Complete graph: every pair of nodes is adjacent.
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        Self::from_edges("complete", n, &edges)
    }

    /// Random geometric graph: `n` points placed uniformly in the unit
    /// square, adjacent when within the connection radius. The radius starts
    /// at the standard connectivity threshold `sqrt(2 ln n / n)` and grows
    /// until the graph is connected, so the result is always usable for
    /// gossip while staying sparse. Deterministic in `rng`.
    pub fn random_geometric(n: usize, rng: &mut Rng) -> Self {
        Self::random_geometric_with_geometry(n, rng).0
    }

    /// [`random_geometric`](Self::random_geometric), also returning the
    /// point set and final radius so mobility models can move the nodes
    /// and re-derive radius-based edges. Same RNG consumption, same graph.
    pub fn random_geometric_with_geometry(n: usize, rng: &mut Rng) -> (Self, RggGeometry) {
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen_f64(), rng.gen_f64())).collect();
        let mut radius = if n > 1 {
            (2.0 * (n as f64).ln() / n as f64).sqrt()
        } else {
            1.0
        };
        loop {
            let r2 = radius * radius;
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    let (dx, dy) = (pts[u].0 - pts[v].0, pts[u].1 - pts[v].1);
                    if dx * dx + dy * dy <= r2 {
                        edges.push((u as u32, v as u32));
                    }
                }
            }
            let topo = Self::from_edges("random_geometric", n, &edges);
            if topo.is_connected() {
                let geometry = RggGeometry {
                    positions: pts,
                    radius,
                };
                return (topo, geometry);
            }
            radius *= 1.25;
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Builder name ("ring", "grid", …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sorted neighbors of `node`.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adj[node.index()]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj[node.index()].len()
    }

    /// Are `u` and `v` adjacent?
    pub fn are_neighbors(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u.index()].binary_search(&v).is_ok()
    }

    /// Total number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// BFS connectivity check. The empty graph counts as connected.
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0usize]);
        seen[0] = true;
        let mut visited = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    visited += 1;
                    queue.push_back(v.index());
                }
            }
        }
        visited == n
    }
}

impl GraphView for Topology {
    fn num_nodes(&self) -> usize {
        Topology::num_nodes(self)
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        Topology::neighbors(self, node)
    }

    fn are_neighbors(&self, u: NodeId, v: NodeId) -> bool {
        Topology::are_neighbors(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_degrees() {
        let t = Topology::line(5);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.degree(NodeId(0)), 1);
        assert_eq!(t.degree(NodeId(2)), 2);
        assert_eq!(t.degree(NodeId(4)), 1);
        assert!(t.is_connected());
    }

    #[test]
    fn ring_is_two_regular() {
        let t = Topology::ring(6);
        assert_eq!(t.num_edges(), 6);
        for i in 0..6 {
            assert_eq!(t.degree(NodeId(i)), 2);
        }
        assert!(t.are_neighbors(NodeId(5), NodeId(0)));
    }

    #[test]
    fn tiny_rings_degrade_gracefully() {
        // A 2-ring is just an edge; a 1-ring a lone node.
        assert_eq!(Topology::ring(2).num_edges(), 1);
        assert_eq!(Topology::ring(1).num_edges(), 0);
        assert!(Topology::ring(1).is_connected());
    }

    #[test]
    fn grid_structure() {
        // n=12 -> 3 rows x 4 cols.
        let t = Topology::grid(12);
        assert!(t.is_connected());
        assert_eq!(t.degree(NodeId(0)), 2); // corner
        assert_eq!(t.degree(NodeId(5)), 4); // interior
                                            // Partial last row still connects upward.
        let t = Topology::grid(10);
        assert!(t.is_connected());
    }

    #[test]
    fn complete_graph_edges() {
        let t = Topology::complete(7);
        assert_eq!(t.num_edges(), 21);
        for i in 0..7 {
            assert_eq!(t.degree(NodeId(i)), 6);
        }
    }

    #[test]
    fn random_geometric_is_connected_and_deterministic() {
        let mut rng = Rng::new(42);
        let a = Topology::random_geometric(50, &mut rng);
        assert!(a.is_connected());
        let mut rng = Rng::new(42);
        let b = Topology::random_geometric(50, &mut rng);
        assert_eq!(a.num_edges(), b.num_edges(), "same seed, same graph");
    }

    #[test]
    fn disconnected_graph_detected() {
        let t = Topology::from_edges("pair", 4, &[(0, 1), (2, 3)]);
        assert!(!t.is_connected());
    }
}
