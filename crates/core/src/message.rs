//! Gossip state: the set of rumors a node currently holds.
//!
//! The gossip problem starts `k` messages (rumors) at designated sources and
//! completes when every node holds all `k`. Two owners of that state exist:
//!
//! - [`MessageSet`] — a standalone fixed-universe bitset, convenient for
//!   tests and incremental construction;
//! - [`MessageMatrix`] — the engine's **struct-of-arrays** form: all `n`
//!   nodes' bitset words packed into one flat `Vec<u64>` (plus one flat
//!   counts array), so a round sweep touches two contiguous buffers
//!   instead of chasing `n` per-node heap allocations.
//!
//! Both expose their per-node state as a borrowed [`MsgView`], which is
//! what protocols consume — a protocol cannot tell (and must not care)
//! which storage backs the node it is deciding for.

use crate::matching::Connection;
use crate::rng::mix;

/// Aggregate outcome of a batch of push-pull transfers
/// ([`MessageMatrix::union_pairs_parallel`]). Every field is a sum of
/// per-pair contributions, and the pairs of a round are node-disjoint, so
/// the totals are independent of the order — and the thread count — in
/// which the pairs were processed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Messages that moved, in both directions across all pairs.
    pub moved: usize,
    /// Pairs that moved at least one message.
    pub productive: usize,
    /// Endpoints that newly hold the full universe.
    pub newly_full: usize,
}

impl std::ops::AddAssign for TransferStats {
    fn add_assign(&mut self, rhs: TransferStats) {
        self.moved += rhs.moved;
        self.productive += rhs.productive;
        self.newly_full += rhs.newly_full;
    }
}

/// The push-pull union of two rows (both become their union), given
/// exclusive access to each row's words and count. Shared by the safe
/// serial path (slices from `split_at_mut`) and the parallel path (slices
/// reconstituted from raw parts over provably disjoint rows).
#[inline]
fn union_rows(
    a: &mut [u64],
    b: &mut [u64],
    count_a: &mut u32,
    count_b: &mut u32,
    universe: usize,
) -> TransferStats {
    let mut count = 0u32;
    for (x, y) in a.iter_mut().zip(b.iter_mut()) {
        let u = *x | *y;
        *x = u;
        *y = u;
        count += u.count_ones();
    }
    let full = universe as u32;
    let newly_full =
        (count == full && *count_a != full) as usize + (count == full && *count_b != full) as usize;
    let moved = ((count - *count_a) + (count - *count_b)) as usize;
    *count_a = count;
    *count_b = count;
    TransferStats {
        moved,
        productive: (moved > 0) as usize,
        newly_full,
    }
}

/// [`union_rows`] that additionally reports every message that moved, as
/// `(message id, moved a → b)` in ascending id order. The union and stats
/// are computed by the exact same code as the untraced path, so enabling
/// tracing cannot change a transfer's outcome — only describe it.
#[inline]
fn union_rows_traced(
    a: &mut [u64],
    b: &mut [u64],
    count_a: &mut u32,
    count_b: &mut u32,
    universe: usize,
    moved: &mut Vec<(u32, bool)>,
) -> TransferStats {
    for (w, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        let mut diff = *x ^ *y;
        let only_a = *x & !*y;
        while diff != 0 {
            let bit = diff.trailing_zeros();
            diff &= diff - 1;
            moved.push(((w * 64) as u32 + bit, only_a >> bit & 1 == 1));
        }
    }
    union_rows(a, b, count_a, count_b, universe)
}

fn fingerprint_words(words: &[u64], universe: usize, salt: u64) -> u64 {
    if universe <= 64 {
        return words.first().copied().unwrap_or(0);
    }
    let mut h = salt ^ (universe as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &w in words {
        h = mix(h ^ w);
    }
    h
}

/// A borrowed, read-only view of one node's message set — the shape
/// protocols see, regardless of whether a [`MessageSet`] or a row of the
/// engine's [`MessageMatrix`] backs it.
#[derive(Clone, Copy, Debug)]
pub struct MsgView<'a> {
    words: &'a [u64],
    universe: usize,
    count: usize,
}

impl MsgView<'_> {
    /// Size of the message universe (the `k` of k-gossip).
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of messages currently held.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// True once every message in the universe is held.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.count == self.universe
    }

    /// Does this set contain message `id`?
    pub fn contains(&self, id: usize) -> bool {
        id < self.universe && self.words[id / 64] & (1 << (id % 64)) != 0
    }

    /// A 64-bit summary suitable for an advertisement tag.
    ///
    /// For universes of at most 64 messages this is the exact membership
    /// mask, so two fingerprints are equal iff the sets are equal and
    /// bitwise comparisons recover exact set differences. Larger universes
    /// hash down to 64 bits; equality then only implies set equality with
    /// high probability, which is the regime the paper's small-tag (`b`-bit
    /// advertisement) analysis targets.
    ///
    /// Equivalent to [`fingerprint_salted`](Self::fingerprint_salted) with
    /// salt 0.
    pub fn fingerprint(&self) -> u64 {
        fingerprint_words(self.words, self.universe, 0)
    }

    /// [`fingerprint`](Self::fingerprint) mixed with a caller-chosen salt.
    ///
    /// For universes of at most 64 messages the salt is ignored and the
    /// exact membership mask is returned. Beyond that, the salt is mixed
    /// into the hash — protocols salt tags with the round number so that a
    /// hash collision between two *different* sets cannot persist: the
    /// colliding pair re-hashes differently next round, which is what rules
    /// out advertisement-guided livelock on large universes.
    pub fn fingerprint_salted(&self, salt: u64) -> u64 {
        fingerprint_words(self.words, self.universe, salt)
    }
}

/// A set of message ids drawn from a fixed universe `0..universe`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MessageSet {
    words: Vec<u64>,
    universe: usize,
    count: usize,
}

impl MessageSet {
    /// Empty set over message ids `0..universe`.
    pub fn new(universe: usize) -> Self {
        MessageSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
            count: 0,
        }
    }

    /// A borrowed view of this set, as handed to protocols.
    #[inline]
    pub fn view(&self) -> MsgView<'_> {
        MsgView {
            words: &self.words,
            universe: self.universe,
            count: self.count,
        }
    }

    /// Size of the message universe (the `k` of k-gossip).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of messages currently held.
    pub fn count(&self) -> usize {
        self.count
    }

    /// True once every message in the universe is held.
    pub fn is_full(&self) -> bool {
        self.count == self.universe
    }

    /// Insert message `id`; returns true if it was newly added.
    pub fn insert(&mut self, id: usize) -> bool {
        assert!(id < self.universe, "message id {id} out of universe");
        let (w, b) = (id / 64, id % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        if fresh {
            self.words[w] |= 1 << b;
            self.count += 1;
        }
        fresh
    }

    /// Does this set contain message `id`?
    pub fn contains(&self, id: usize) -> bool {
        self.view().contains(id)
    }

    /// Union `other` into `self` (one direction of a push-pull transfer).
    /// Returns how many messages were newly added.
    pub fn union_with(&mut self, other: &MessageSet) -> usize {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let before = self.count;
        let mut count = 0usize;
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
            count += w.count_ones() as usize;
        }
        self.count = count;
        self.count - before
    }

    /// See [`MsgView::fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        self.view().fingerprint()
    }

    /// See [`MsgView::fingerprint_salted`].
    pub fn fingerprint_salted(&self, salt: u64) -> u64 {
        self.view().fingerprint_salted(salt)
    }
}

/// All `n` nodes' message sets in struct-of-arrays layout: one flat words
/// buffer (`stride` words per node) and one flat counts array, owned by
/// the engine rather than scattered across per-node heap objects. This is
/// the layout the sharded round loop reads concurrently — a `view` of any
/// row is just slice arithmetic — while transfers mutate pairs of rows in
/// place.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MessageMatrix {
    words: Vec<u64>,
    counts: Vec<u32>,
    universe: usize,
    stride: usize,
}

impl MessageMatrix {
    /// `n` empty sets over message ids `0..universe`.
    pub fn new(n: usize, universe: usize) -> Self {
        let stride = universe.div_ceil(64);
        MessageMatrix {
            words: vec![0; n * stride],
            counts: vec![0; n],
            universe,
            stride,
        }
    }

    /// Number of per-node rows.
    pub fn num_nodes(&self) -> usize {
        self.counts.len()
    }

    /// Size of the message universe (the `k` of k-gossip).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// A borrowed view of node `u`'s set, as handed to protocols.
    #[inline]
    pub fn view(&self, u: usize) -> MsgView<'_> {
        MsgView {
            words: &self.words[u * self.stride..(u + 1) * self.stride],
            universe: self.universe,
            count: self.counts[u] as usize,
        }
    }

    /// Number of messages node `u` holds.
    #[inline]
    pub fn count(&self, u: usize) -> usize {
        self.counts[u] as usize
    }

    /// Does node `u` hold every message?
    #[inline]
    pub fn is_full(&self, u: usize) -> bool {
        self.counts[u] as usize == self.universe
    }

    /// Does node `u` hold message `id`?
    pub fn contains(&self, u: usize, id: usize) -> bool {
        self.view(u).contains(id)
    }

    /// Insert message `id` into node `u`'s set; true if newly added.
    pub fn insert(&mut self, u: usize, id: usize) -> bool {
        assert!(id < self.universe, "message id {id} out of universe");
        let w = u * self.stride + id / 64;
        let bit = 1u64 << (id % 64);
        let fresh = self.words[w] & bit == 0;
        if fresh {
            self.words[w] |= bit;
            self.counts[u] += 1;
        }
        fresh
    }

    /// Clear node `u`'s set (a rejoining device that lost its storage).
    pub fn reset(&mut self, u: usize) {
        self.words[u * self.stride..(u + 1) * self.stride].fill(0);
        self.counts[u] = 0;
    }

    /// The push-pull transfer over a connection: both rows become their
    /// union. Returns the total number of messages that moved (in both
    /// directions together).
    pub fn union_pair(&mut self, i: usize, j: usize) -> usize {
        self.union_pair_stats(i, j).moved
    }

    /// [`union_pair`](Self::union_pair) with the full per-pair stats.
    pub fn union_pair_stats(&mut self, i: usize, j: usize) -> TransferStats {
        assert_ne!(i, j, "a connection cannot join a node to itself");
        let stride = self.stride;
        let (lo, hi) = (i.min(j), i.max(j));
        let (head, tail) = self.words.split_at_mut(hi * stride);
        let (counts_head, counts_tail) = self.counts.split_at_mut(hi);
        union_rows(
            &mut head[lo * stride..(lo + 1) * stride],
            &mut tail[..stride],
            &mut counts_head[lo],
            &mut counts_tail[0],
            self.universe,
        )
    }

    /// [`union_pair_stats`](Self::union_pair_stats) that also appends every
    /// moved message to `moved` as `(message id, moved i → j)`, in
    /// ascending message-id order — the traced-transfer primitive probes
    /// consume. Identical union and stats to the untraced form.
    pub fn union_pair_stats_traced(
        &mut self,
        i: usize,
        j: usize,
        moved: &mut Vec<(u32, bool)>,
    ) -> TransferStats {
        assert_ne!(i, j, "a connection cannot join a node to itself");
        let stride = self.stride;
        let (lo, hi) = (i.min(j), i.max(j));
        let (head, tail) = self.words.split_at_mut(hi * stride);
        let (counts_head, counts_tail) = self.counts.split_at_mut(hi);
        let start = moved.len();
        let stats = union_rows_traced(
            &mut head[lo * stride..(lo + 1) * stride],
            &mut tail[..stride],
            &mut counts_head[lo],
            &mut counts_tail[0],
            self.universe,
            moved,
        );
        // The core reports lo → hi direction; flip when the caller's `i`
        // is the hi row.
        if i > j {
            for m in &mut moved[start..] {
                m.1 = !m.1;
            }
        }
        stats
    }

    /// The whole transfer phase of a round: every connection's row pair
    /// becomes its union, sharded over up to `threads` workers, returning
    /// the summed [`TransferStats`].
    ///
    /// `pairs` **must be node-disjoint** — exactly the matching invariant
    /// the connection resolver guarantees (debug builds assert it). That
    /// disjointness is what makes the parallel mutation sound: each worker
    /// takes a contiguous chunk of pairs and touches only the rows those
    /// pairs name, which no other worker's pairs can name. It also makes
    /// the result *byte-identical at any thread count*: each pair's union
    /// is independent of every other pair, and the stats are sums, so
    /// neither processing order nor worker count can show through.
    pub fn union_pairs_parallel(&mut self, pairs: &[Connection], threads: usize) -> TransferStats {
        #[cfg(debug_assertions)]
        {
            let mut seen = vec![false; self.num_nodes()];
            for c in pairs {
                for node in [c.initiator, c.acceptor] {
                    assert!(
                        !seen[node.index()],
                        "transfer pairs must be node-disjoint: {node} appears twice"
                    );
                    seen[node.index()] = true;
                }
            }
        }

        // Below this, thread spawn overhead outweighs the row unions. The
        // cutoff is a fixed property of the input (never of the thread
        // count alone deciding *which* math runs), so results stay
        // identical either way — the serial and parallel paths compute the
        // same per-pair unions and the same sums.
        const PAR_MIN_PAIRS: usize = 512;
        let threads = threads.clamp(1, pairs.len().max(1));
        if threads == 1 || pairs.len() < PAR_MIN_PAIRS {
            let mut total = TransferStats::default();
            for c in pairs {
                total += self.union_pair_stats(c.initiator.index(), c.acceptor.index());
            }
            return total;
        }

        struct Rows {
            words: *mut u64,
            counts: *mut u32,
        }
        // SAFETY: `Rows` only crosses into scoped workers below, which
        // dereference it exclusively at row offsets named by their own
        // chunk of node-disjoint pairs — no two workers touch the same
        // row, and the scope ends before `self` is usable again.
        unsafe impl Sync for Rows {}

        let stride = self.stride;
        let universe = self.universe;
        let rows = &Rows {
            words: self.words.as_mut_ptr(),
            counts: self.counts.as_mut_ptr(),
        };
        let chunk = pairs.len().div_ceil(threads);
        let totals: Vec<TransferStats> = std::thread::scope(|s| {
            let handles: Vec<_> = pairs
                .chunks(chunk)
                .map(|chunk_pairs| {
                    s.spawn(move || {
                        let mut local = TransferStats::default();
                        for c in chunk_pairs {
                            let (i, j) = (c.initiator.index(), c.acceptor.index());
                            debug_assert_ne!(i, j);
                            // SAFETY: rows `i` and `j` belong to this
                            // worker alone — the pairs are node-disjoint
                            // and chunked by pair, so no other worker
                            // names either row — and `i != j`, so the
                            // four reconstituted borrows are themselves
                            // disjoint. All offsets are in bounds: pairs
                            // index nodes of this matrix.
                            local += unsafe {
                                let a = std::slice::from_raw_parts_mut(
                                    rows.words.add(i * stride),
                                    stride,
                                );
                                let b = std::slice::from_raw_parts_mut(
                                    rows.words.add(j * stride),
                                    stride,
                                );
                                union_rows(
                                    a,
                                    b,
                                    &mut *rows.counts.add(i),
                                    &mut *rows.counts.add(j),
                                    universe,
                                )
                            };
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("transfer worker panicked"))
                .collect()
        });
        // Fold the per-worker deltas in worker order — i.e. node order,
        // since chunks are contiguous. (The sums are order-independent
        // anyway; the fixed order keeps that fact uninteresting.)
        let mut total = TransferStats::default();
        for t in totals {
            total += t;
        }
        total
    }

    /// Split the matrix into disjoint mutable blocks of `block` contiguous
    /// rows each (the last block may be shorter) — the region-parallel
    /// access pattern of the time-sliced event engine. Each
    /// [`MatrixChunk`] owns its rows exclusively, so workers on different
    /// chunks mutate concurrently in safe Rust; chunk methods take
    /// **global** row indices so call sites read like their full-matrix
    /// counterparts.
    pub fn region_chunks(&mut self, block: usize) -> impl Iterator<Item = MatrixChunk<'_>> {
        assert!(block > 0, "region block size must be non-zero");
        let stride = self.stride;
        let universe = self.universe;
        self.words
            .chunks_mut(block * stride)
            .zip(self.counts.chunks_mut(block))
            .enumerate()
            .map(move |(i, (words, counts))| MatrixChunk {
                base: i * block,
                words,
                counts,
                universe,
                stride,
            })
    }

    /// How many nodes hold the full universe.
    pub fn full_count(&self) -> usize {
        let k = self.universe as u32;
        self.counts.iter().filter(|&&c| c == k).count()
    }

    /// Total messages held across all nodes.
    pub fn total_messages(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }
}

/// Exclusive access to rows `base..base + len` of a [`MessageMatrix`],
/// produced by [`MessageMatrix::region_chunks`]. All row indices passed to
/// chunk methods are **global** node indices and must fall inside the
/// chunk's range (debug-asserted).
pub struct MatrixChunk<'a> {
    base: usize,
    words: &'a mut [u64],
    counts: &'a mut [u32],
    universe: usize,
    stride: usize,
}

impl MatrixChunk<'_> {
    /// First global row of this chunk.
    #[inline]
    pub fn base(&self) -> usize {
        self.base
    }

    #[inline]
    fn local(&self, u: usize) -> usize {
        debug_assert!(
            u >= self.base && u - self.base < self.counts.len(),
            "row {u} outside chunk {}..{}",
            self.base,
            self.base + self.counts.len()
        );
        u - self.base
    }

    /// A borrowed view of global row `u`'s set, as handed to protocols.
    #[inline]
    pub fn view(&self, u: usize) -> MsgView<'_> {
        let l = self.local(u);
        MsgView {
            words: &self.words[l * self.stride..(l + 1) * self.stride],
            universe: self.universe,
            count: self.counts[l] as usize,
        }
    }

    /// Does global row `u` hold every message?
    #[inline]
    pub fn is_full(&self, u: usize) -> bool {
        self.counts[self.local(u)] as usize == self.universe
    }

    /// The push-pull transfer between two rows of this chunk (both become
    /// their union), with per-pair stats — the in-region counterpart of
    /// [`MessageMatrix::union_pair_stats`].
    pub fn union_pair_stats(&mut self, i: usize, j: usize) -> TransferStats {
        assert_ne!(i, j, "a connection cannot join a node to itself");
        let (li, lj) = (self.local(i), self.local(j));
        let stride = self.stride;
        let (lo, hi) = (li.min(lj), li.max(lj));
        let (head, tail) = self.words.split_at_mut(hi * stride);
        let (counts_head, counts_tail) = self.counts.split_at_mut(hi);
        union_rows(
            &mut head[lo * stride..(lo + 1) * stride],
            &mut tail[..stride],
            &mut counts_head[lo],
            &mut counts_tail[0],
            self.universe,
        )
    }

    /// The in-region counterpart of
    /// [`MessageMatrix::union_pair_stats_traced`]: same union and stats,
    /// plus every moved message as `(message id, moved i → j)`.
    pub fn union_pair_stats_traced(
        &mut self,
        i: usize,
        j: usize,
        moved: &mut Vec<(u32, bool)>,
    ) -> TransferStats {
        assert_ne!(i, j, "a connection cannot join a node to itself");
        let (li, lj) = (self.local(i), self.local(j));
        let stride = self.stride;
        let (lo, hi) = (li.min(lj), li.max(lj));
        let (head, tail) = self.words.split_at_mut(hi * stride);
        let (counts_head, counts_tail) = self.counts.split_at_mut(hi);
        let start = moved.len();
        let stats = union_rows_traced(
            &mut head[lo * stride..(lo + 1) * stride],
            &mut tail[..stride],
            &mut counts_head[lo],
            &mut counts_tail[0],
            self.universe,
            moved,
        );
        if i > j {
            for m in &mut moved[start..] {
                m.1 = !m.1;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = MessageSet::new(10);
        assert!(!s.contains(3));
        assert!(s.insert(3));
        assert!(!s.insert(3), "double insert is not fresh");
        assert!(s.contains(3));
        assert_eq!(s.count(), 1);
        assert!(!s.is_full());
    }

    #[test]
    fn union_reports_added() {
        let mut a = MessageSet::new(130);
        let mut b = MessageSet::new(130);
        a.insert(0);
        a.insert(100);
        b.insert(100);
        b.insert(129);
        assert_eq!(a.union_with(&b), 1);
        assert_eq!(a.count(), 3);
        assert_eq!(a.union_with(&b), 0, "re-union adds nothing");
    }

    #[test]
    fn full_after_all_inserted() {
        let mut s = MessageSet::new(65);
        for i in 0..65 {
            s.insert(i);
        }
        assert!(s.is_full());
    }

    #[test]
    fn small_universe_fingerprint_is_exact_mask() {
        let mut s = MessageSet::new(64);
        s.insert(0);
        s.insert(5);
        assert_eq!(s.fingerprint(), 0b100001);
    }

    #[test]
    fn large_universe_fingerprints_differ_for_different_sets() {
        let mut a = MessageSet::new(200);
        let mut b = MessageSet::new(200);
        a.insert(3);
        b.insert(150);
        assert_ne!(a.fingerprint(), b.fingerprint());
        // The word-fold collision family of the old XOR-rotate scheme
        // (ids i and 64 + (i - 1) collided) must not survive the hash.
        let mut c = MessageSet::new(128);
        let mut d = MessageSet::new(128);
        c.insert(4);
        d.insert(67);
        assert_ne!(c.fingerprint(), d.fingerprint());
    }

    #[test]
    fn salt_changes_large_universe_tags_but_not_small() {
        let mut large = MessageSet::new(100);
        large.insert(42);
        assert_ne!(
            large.fingerprint_salted(1),
            large.fingerprint_salted(2),
            "same set must re-hash differently under a new salt"
        );
        let mut small = MessageSet::new(8);
        small.insert(3);
        assert_eq!(small.fingerprint_salted(1), small.fingerprint_salted(2));
        assert_eq!(small.fingerprint_salted(7), small.fingerprint());
    }

    #[test]
    fn matrix_rows_behave_like_independent_sets() {
        let mut m = MessageMatrix::new(3, 130);
        assert!(m.insert(0, 0));
        assert!(m.insert(0, 100));
        assert!(!m.insert(0, 100), "double insert is not fresh");
        assert!(m.insert(2, 129));
        assert_eq!(m.count(0), 2);
        assert_eq!(m.count(1), 0);
        assert!(m.contains(0, 100));
        assert!(!m.contains(1, 100), "rows must not bleed into each other");
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.full_count(), 0);
    }

    #[test]
    fn matrix_union_pair_is_push_pull() {
        let mut m = MessageMatrix::new(2, 130);
        m.insert(0, 0);
        m.insert(0, 100);
        m.insert(1, 100);
        m.insert(1, 129);
        // 0 gains 129, 1 gains 0: two messages moved in total.
        assert_eq!(m.union_pair(0, 1), 2);
        assert_eq!(m.count(0), 3);
        assert_eq!(m.count(1), 3);
        assert_eq!(m.union_pair(1, 0), 0, "re-union moves nothing");
    }

    #[test]
    fn matrix_views_match_equivalent_message_sets() {
        let mut m = MessageMatrix::new(2, 80);
        let mut s = MessageSet::new(80);
        for id in [3usize, 64, 79] {
            m.insert(1, id);
            s.insert(id);
        }
        let v = m.view(1);
        assert_eq!(v.count(), s.count());
        assert_eq!(v.universe(), s.universe());
        assert_eq!(v.fingerprint(), s.fingerprint());
        assert_eq!(v.fingerprint_salted(9), s.fingerprint_salted(9));
        assert!(v.contains(64) && !v.contains(4));
    }

    /// A matrix of `n` nodes over a 130-message universe (3 words/row),
    /// each row seeded pseudo-randomly, plus the disjoint pair list
    /// `(2p, 2p+1)`.
    fn transfer_fixture(n: usize) -> (MessageMatrix, Vec<Connection>) {
        use crate::{NodeId, Rng};
        let mut m = MessageMatrix::new(n, 130);
        let mut rng = Rng::new(0xabcd);
        for u in 0..n {
            for _ in 0..8 {
                m.insert(u, rng.gen_range(130));
            }
        }
        let pairs = (0..n / 2)
            .map(|p| Connection {
                initiator: NodeId((2 * p) as u32),
                acceptor: NodeId((2 * p + 1) as u32),
            })
            .collect();
        (m, pairs)
    }

    #[test]
    fn union_pairs_parallel_matches_the_serial_loop_at_any_thread_count() {
        // 2000 nodes / 1000 pairs: enough to cross the parallel cutoff.
        let (serial_m, pairs) = transfer_fixture(2000);
        let mut serial = serial_m.clone();
        let mut productive = 0usize;
        let mut moved = 0usize;
        let mut newly_full = 0usize;
        for c in &pairs {
            let (i, j) = (c.initiator.index(), c.acceptor.index());
            let before_i = serial.is_full(i);
            let before_j = serial.is_full(j);
            let m = serial.union_pair(i, j);
            moved += m;
            productive += (m > 0) as usize;
            newly_full += (serial.is_full(i) && !before_i) as usize;
            newly_full += (serial.is_full(j) && !before_j) as usize;
        }
        for threads in [1usize, 2, 8] {
            let mut par = serial_m.clone();
            let stats = par.union_pairs_parallel(&pairs, threads);
            assert_eq!(par, serial, "threads={threads}: matrices diverged");
            assert_eq!(
                stats,
                TransferStats {
                    moved,
                    productive,
                    newly_full
                },
                "threads={threads}: stats diverged"
            );
        }
    }

    #[test]
    fn traced_union_reports_every_moved_message_and_matches_untraced() {
        let mut m = MessageMatrix::new(2, 130);
        m.insert(0, 0);
        m.insert(0, 100);
        m.insert(1, 100);
        m.insert(1, 129);
        let mut untraced = m.clone();
        let mut moved = Vec::new();
        let stats = m.union_pair_stats_traced(1, 0, &mut moved);
        assert_eq!(stats, untraced.union_pair_stats(1, 0));
        assert_eq!(m, untraced, "tracing must not change the union");
        // Ascending message order; direction is relative to (i=1, j=0):
        // message 0 moves 0→1 (false), 129 moves 1→0 (true).
        assert_eq!(moved, vec![(0, false), (129, true)]);
        // Re-union moves nothing and appends nothing.
        moved.clear();
        let stats = m.union_pair_stats_traced(0, 1, &mut moved);
        assert_eq!(stats, TransferStats::default());
        assert!(moved.is_empty());
    }

    #[test]
    fn chunk_traced_union_matches_full_matrix() {
        let (mut m, _) = transfer_fixture(10);
        let mut full = m.clone();
        let mut moved_full = Vec::new();
        let full_stats = full.union_pair_stats_traced(6, 5, &mut moved_full);
        let mut chunks: Vec<_> = m.region_chunks(4).collect();
        let mut moved_chunk = Vec::new();
        let chunk_stats = chunks[1].union_pair_stats_traced(6, 5, &mut moved_chunk);
        drop(chunks);
        assert_eq!(chunk_stats, full_stats);
        assert_eq!(moved_chunk, moved_full);
        assert_eq!(m, full);
    }

    #[test]
    fn union_pairs_parallel_counts_newly_full_endpoints() {
        use crate::NodeId;
        let mut m = MessageMatrix::new(2, 4);
        for id in 0..4 {
            m.insert(0, id);
        }
        m.insert(1, 0);
        let stats = m.union_pairs_parallel(
            &[Connection {
                initiator: NodeId(0),
                acceptor: NodeId(1),
            }],
            4,
        );
        assert_eq!(
            stats,
            TransferStats {
                moved: 3,
                productive: 1,
                newly_full: 1
            }
        );
        assert_eq!(m.full_count(), 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "node-disjoint")]
    fn union_pairs_parallel_rejects_overlapping_pairs_in_debug() {
        use crate::NodeId;
        let mut m = MessageMatrix::new(3, 8);
        let overlapping = [
            Connection {
                initiator: NodeId(0),
                acceptor: NodeId(1),
            },
            Connection {
                initiator: NodeId(1),
                acceptor: NodeId(2),
            },
        ];
        m.union_pairs_parallel(&overlapping, 2);
    }

    #[test]
    fn region_chunks_mirror_full_matrix_operations() {
        // 10 rows split into blocks of 4 → chunks of 4, 4, 2 rows.
        let (mut m, _) = transfer_fixture(10);
        let reference = m.clone();
        let mut chunks: Vec<_> = m.region_chunks(4).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[2].base(), 8);
        for u in 0..10 {
            let c = &chunks[u / 4];
            assert_eq!(c.view(u).fingerprint(), reference.view(u).fingerprint());
            assert_eq!(c.is_full(u), reference.is_full(u));
        }
        // An in-chunk union matches the full-matrix union byte for byte.
        let stats = chunks[1].union_pair_stats(5, 6);
        drop(chunks);
        let mut expect = reference.clone();
        let expect_stats = expect.union_pair_stats(5, 6);
        assert_eq!(stats, expect_stats);
        assert_eq!(m, expect);
    }

    #[test]
    fn matrix_reset_clears_one_row_only() {
        let mut m = MessageMatrix::new(2, 4);
        for id in 0..4 {
            m.insert(0, id);
            m.insert(1, id);
        }
        assert_eq!(m.full_count(), 2);
        m.reset(0);
        assert_eq!(m.count(0), 0);
        assert!(m.is_full(1));
        assert_eq!(m.full_count(), 1);
    }
}
