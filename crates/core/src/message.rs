//! Gossip state: the set of rumors a node currently holds.
//!
//! The gossip problem starts `k` messages (rumors) at designated sources and
//! completes when every node holds all `k`. Two owners of that state exist:
//!
//! - [`MessageSet`] — a standalone fixed-universe bitset, convenient for
//!   tests and incremental construction;
//! - [`MessageMatrix`] — the engine's **struct-of-arrays** form: all `n`
//!   nodes' bitset words packed into one flat `Vec<u64>` (plus one flat
//!   counts array), so a round sweep touches two contiguous buffers
//!   instead of chasing `n` per-node heap allocations.
//!
//! Both expose their per-node state as a borrowed [`MsgView`], which is
//! what protocols consume — a protocol cannot tell (and must not care)
//! which storage backs the node it is deciding for.

use crate::rng::mix;

fn fingerprint_words(words: &[u64], universe: usize, salt: u64) -> u64 {
    if universe <= 64 {
        return words.first().copied().unwrap_or(0);
    }
    let mut h = salt ^ (universe as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &w in words {
        h = mix(h ^ w);
    }
    h
}

/// A borrowed, read-only view of one node's message set — the shape
/// protocols see, regardless of whether a [`MessageSet`] or a row of the
/// engine's [`MessageMatrix`] backs it.
#[derive(Clone, Copy, Debug)]
pub struct MsgView<'a> {
    words: &'a [u64],
    universe: usize,
    count: usize,
}

impl MsgView<'_> {
    /// Size of the message universe (the `k` of k-gossip).
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of messages currently held.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// True once every message in the universe is held.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.count == self.universe
    }

    /// Does this set contain message `id`?
    pub fn contains(&self, id: usize) -> bool {
        id < self.universe && self.words[id / 64] & (1 << (id % 64)) != 0
    }

    /// A 64-bit summary suitable for an advertisement tag.
    ///
    /// For universes of at most 64 messages this is the exact membership
    /// mask, so two fingerprints are equal iff the sets are equal and
    /// bitwise comparisons recover exact set differences. Larger universes
    /// hash down to 64 bits; equality then only implies set equality with
    /// high probability, which is the regime the paper's small-tag (`b`-bit
    /// advertisement) analysis targets.
    ///
    /// Equivalent to [`fingerprint_salted`](Self::fingerprint_salted) with
    /// salt 0.
    pub fn fingerprint(&self) -> u64 {
        fingerprint_words(self.words, self.universe, 0)
    }

    /// [`fingerprint`](Self::fingerprint) mixed with a caller-chosen salt.
    ///
    /// For universes of at most 64 messages the salt is ignored and the
    /// exact membership mask is returned. Beyond that, the salt is mixed
    /// into the hash — protocols salt tags with the round number so that a
    /// hash collision between two *different* sets cannot persist: the
    /// colliding pair re-hashes differently next round, which is what rules
    /// out advertisement-guided livelock on large universes.
    pub fn fingerprint_salted(&self, salt: u64) -> u64 {
        fingerprint_words(self.words, self.universe, salt)
    }
}

/// A set of message ids drawn from a fixed universe `0..universe`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MessageSet {
    words: Vec<u64>,
    universe: usize,
    count: usize,
}

impl MessageSet {
    /// Empty set over message ids `0..universe`.
    pub fn new(universe: usize) -> Self {
        MessageSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
            count: 0,
        }
    }

    /// A borrowed view of this set, as handed to protocols.
    #[inline]
    pub fn view(&self) -> MsgView<'_> {
        MsgView {
            words: &self.words,
            universe: self.universe,
            count: self.count,
        }
    }

    /// Size of the message universe (the `k` of k-gossip).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of messages currently held.
    pub fn count(&self) -> usize {
        self.count
    }

    /// True once every message in the universe is held.
    pub fn is_full(&self) -> bool {
        self.count == self.universe
    }

    /// Insert message `id`; returns true if it was newly added.
    pub fn insert(&mut self, id: usize) -> bool {
        assert!(id < self.universe, "message id {id} out of universe");
        let (w, b) = (id / 64, id % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        if fresh {
            self.words[w] |= 1 << b;
            self.count += 1;
        }
        fresh
    }

    /// Does this set contain message `id`?
    pub fn contains(&self, id: usize) -> bool {
        self.view().contains(id)
    }

    /// Union `other` into `self` (one direction of a push-pull transfer).
    /// Returns how many messages were newly added.
    pub fn union_with(&mut self, other: &MessageSet) -> usize {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let before = self.count;
        let mut count = 0usize;
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
            count += w.count_ones() as usize;
        }
        self.count = count;
        self.count - before
    }

    /// See [`MsgView::fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        self.view().fingerprint()
    }

    /// See [`MsgView::fingerprint_salted`].
    pub fn fingerprint_salted(&self, salt: u64) -> u64 {
        self.view().fingerprint_salted(salt)
    }
}

/// All `n` nodes' message sets in struct-of-arrays layout: one flat words
/// buffer (`stride` words per node) and one flat counts array, owned by
/// the engine rather than scattered across per-node heap objects. This is
/// the layout the sharded round loop reads concurrently — a `view` of any
/// row is just slice arithmetic — while transfers mutate pairs of rows in
/// place.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MessageMatrix {
    words: Vec<u64>,
    counts: Vec<u32>,
    universe: usize,
    stride: usize,
}

impl MessageMatrix {
    /// `n` empty sets over message ids `0..universe`.
    pub fn new(n: usize, universe: usize) -> Self {
        let stride = universe.div_ceil(64);
        MessageMatrix {
            words: vec![0; n * stride],
            counts: vec![0; n],
            universe,
            stride,
        }
    }

    /// Number of per-node rows.
    pub fn num_nodes(&self) -> usize {
        self.counts.len()
    }

    /// Size of the message universe (the `k` of k-gossip).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// A borrowed view of node `u`'s set, as handed to protocols.
    #[inline]
    pub fn view(&self, u: usize) -> MsgView<'_> {
        MsgView {
            words: &self.words[u * self.stride..(u + 1) * self.stride],
            universe: self.universe,
            count: self.counts[u] as usize,
        }
    }

    /// Number of messages node `u` holds.
    #[inline]
    pub fn count(&self, u: usize) -> usize {
        self.counts[u] as usize
    }

    /// Does node `u` hold every message?
    #[inline]
    pub fn is_full(&self, u: usize) -> bool {
        self.counts[u] as usize == self.universe
    }

    /// Does node `u` hold message `id`?
    pub fn contains(&self, u: usize, id: usize) -> bool {
        self.view(u).contains(id)
    }

    /// Insert message `id` into node `u`'s set; true if newly added.
    pub fn insert(&mut self, u: usize, id: usize) -> bool {
        assert!(id < self.universe, "message id {id} out of universe");
        let w = u * self.stride + id / 64;
        let bit = 1u64 << (id % 64);
        let fresh = self.words[w] & bit == 0;
        if fresh {
            self.words[w] |= bit;
            self.counts[u] += 1;
        }
        fresh
    }

    /// Clear node `u`'s set (a rejoining device that lost its storage).
    pub fn reset(&mut self, u: usize) {
        self.words[u * self.stride..(u + 1) * self.stride].fill(0);
        self.counts[u] = 0;
    }

    /// The push-pull transfer over a connection: both rows become their
    /// union. Returns the total number of messages that moved (in both
    /// directions together).
    pub fn union_pair(&mut self, i: usize, j: usize) -> usize {
        assert_ne!(i, j, "a connection cannot join a node to itself");
        let stride = self.stride;
        let (lo, hi) = (i.min(j), i.max(j));
        let (head, tail) = self.words.split_at_mut(hi * stride);
        let a = &mut head[lo * stride..lo * stride + stride];
        let b = &mut tail[..stride];
        let mut count = 0u32;
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            let u = *x | *y;
            *x = u;
            *y = u;
            count += u.count_ones();
        }
        let moved = (count - self.counts[lo]) + (count - self.counts[hi]);
        self.counts[lo] = count;
        self.counts[hi] = count;
        moved as usize
    }

    /// How many nodes hold the full universe.
    pub fn full_count(&self) -> usize {
        let k = self.universe as u32;
        self.counts.iter().filter(|&&c| c == k).count()
    }

    /// Total messages held across all nodes.
    pub fn total_messages(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = MessageSet::new(10);
        assert!(!s.contains(3));
        assert!(s.insert(3));
        assert!(!s.insert(3), "double insert is not fresh");
        assert!(s.contains(3));
        assert_eq!(s.count(), 1);
        assert!(!s.is_full());
    }

    #[test]
    fn union_reports_added() {
        let mut a = MessageSet::new(130);
        let mut b = MessageSet::new(130);
        a.insert(0);
        a.insert(100);
        b.insert(100);
        b.insert(129);
        assert_eq!(a.union_with(&b), 1);
        assert_eq!(a.count(), 3);
        assert_eq!(a.union_with(&b), 0, "re-union adds nothing");
    }

    #[test]
    fn full_after_all_inserted() {
        let mut s = MessageSet::new(65);
        for i in 0..65 {
            s.insert(i);
        }
        assert!(s.is_full());
    }

    #[test]
    fn small_universe_fingerprint_is_exact_mask() {
        let mut s = MessageSet::new(64);
        s.insert(0);
        s.insert(5);
        assert_eq!(s.fingerprint(), 0b100001);
    }

    #[test]
    fn large_universe_fingerprints_differ_for_different_sets() {
        let mut a = MessageSet::new(200);
        let mut b = MessageSet::new(200);
        a.insert(3);
        b.insert(150);
        assert_ne!(a.fingerprint(), b.fingerprint());
        // The word-fold collision family of the old XOR-rotate scheme
        // (ids i and 64 + (i - 1) collided) must not survive the hash.
        let mut c = MessageSet::new(128);
        let mut d = MessageSet::new(128);
        c.insert(4);
        d.insert(67);
        assert_ne!(c.fingerprint(), d.fingerprint());
    }

    #[test]
    fn salt_changes_large_universe_tags_but_not_small() {
        let mut large = MessageSet::new(100);
        large.insert(42);
        assert_ne!(
            large.fingerprint_salted(1),
            large.fingerprint_salted(2),
            "same set must re-hash differently under a new salt"
        );
        let mut small = MessageSet::new(8);
        small.insert(3);
        assert_eq!(small.fingerprint_salted(1), small.fingerprint_salted(2));
        assert_eq!(small.fingerprint_salted(7), small.fingerprint());
    }

    #[test]
    fn matrix_rows_behave_like_independent_sets() {
        let mut m = MessageMatrix::new(3, 130);
        assert!(m.insert(0, 0));
        assert!(m.insert(0, 100));
        assert!(!m.insert(0, 100), "double insert is not fresh");
        assert!(m.insert(2, 129));
        assert_eq!(m.count(0), 2);
        assert_eq!(m.count(1), 0);
        assert!(m.contains(0, 100));
        assert!(!m.contains(1, 100), "rows must not bleed into each other");
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.full_count(), 0);
    }

    #[test]
    fn matrix_union_pair_is_push_pull() {
        let mut m = MessageMatrix::new(2, 130);
        m.insert(0, 0);
        m.insert(0, 100);
        m.insert(1, 100);
        m.insert(1, 129);
        // 0 gains 129, 1 gains 0: two messages moved in total.
        assert_eq!(m.union_pair(0, 1), 2);
        assert_eq!(m.count(0), 3);
        assert_eq!(m.count(1), 3);
        assert_eq!(m.union_pair(1, 0), 0, "re-union moves nothing");
    }

    #[test]
    fn matrix_views_match_equivalent_message_sets() {
        let mut m = MessageMatrix::new(2, 80);
        let mut s = MessageSet::new(80);
        for id in [3usize, 64, 79] {
            m.insert(1, id);
            s.insert(id);
        }
        let v = m.view(1);
        assert_eq!(v.count(), s.count());
        assert_eq!(v.universe(), s.universe());
        assert_eq!(v.fingerprint(), s.fingerprint());
        assert_eq!(v.fingerprint_salted(9), s.fingerprint_salted(9));
        assert!(v.contains(64) && !v.contains(4));
    }

    #[test]
    fn matrix_reset_clears_one_row_only() {
        let mut m = MessageMatrix::new(2, 4);
        for id in 0..4 {
            m.insert(0, id);
            m.insert(1, id);
        }
        assert_eq!(m.full_count(), 2);
        m.reset(0);
        assert_eq!(m.count(0), 0);
        assert!(m.is_full(1));
        assert_eq!(m.full_count(), 1);
    }
}
