//! Gossip state: the set of rumors a node currently holds.
//!
//! The gossip problem starts `k` messages (rumors) at designated sources and
//! completes when every node holds all `k`. A [`MessageSet`] is a fixed-
//! universe bitset over message ids `0..k` with the operations the engine
//! and protocols need: insert, union (the push-pull transfer), completeness,
//! and a 64-bit fingerprint suitable for an advertisement tag.

/// A set of message ids drawn from a fixed universe `0..universe`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MessageSet {
    words: Vec<u64>,
    universe: usize,
    count: usize,
}

impl MessageSet {
    /// Empty set over message ids `0..universe`.
    pub fn new(universe: usize) -> Self {
        MessageSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
            count: 0,
        }
    }

    /// Size of the message universe (the `k` of k-gossip).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of messages currently held.
    pub fn count(&self) -> usize {
        self.count
    }

    /// True once every message in the universe is held.
    pub fn is_full(&self) -> bool {
        self.count == self.universe
    }

    /// Insert message `id`; returns true if it was newly added.
    pub fn insert(&mut self, id: usize) -> bool {
        assert!(id < self.universe, "message id {id} out of universe");
        let (w, b) = (id / 64, id % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        if fresh {
            self.words[w] |= 1 << b;
            self.count += 1;
        }
        fresh
    }

    /// Does this set contain message `id`?
    pub fn contains(&self, id: usize) -> bool {
        id < self.universe && self.words[id / 64] & (1 << (id % 64)) != 0
    }

    /// Union `other` into `self` (one direction of a push-pull transfer).
    /// Returns how many messages were newly added.
    pub fn union_with(&mut self, other: &MessageSet) -> usize {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let before = self.count;
        let mut count = 0usize;
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
            count += w.count_ones() as usize;
        }
        self.count = count;
        self.count - before
    }

    /// A 64-bit summary suitable for an advertisement tag.
    ///
    /// For universes of at most 64 messages this is the exact membership
    /// mask, so two fingerprints are equal iff the sets are equal and
    /// bitwise comparisons recover exact set differences. Larger universes
    /// hash down to 64 bits; equality then only implies set equality with
    /// high probability, which is the regime the paper's small-tag (`b`-bit
    /// advertisement) analysis targets.
    ///
    /// Equivalent to [`fingerprint_salted`](Self::fingerprint_salted) with
    /// salt 0.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint_salted(0)
    }

    /// [`fingerprint`](Self::fingerprint) mixed with a caller-chosen salt.
    ///
    /// For universes of at most 64 messages the salt is ignored and the
    /// exact membership mask is returned. Beyond that, the salt is mixed
    /// into the hash — protocols salt tags with the round number so that a
    /// hash collision between two *different* sets cannot persist: the
    /// colliding pair re-hashes differently next round, which is what rules
    /// out advertisement-guided livelock on large universes.
    pub fn fingerprint_salted(&self, salt: u64) -> u64 {
        if self.universe <= 64 {
            return self.words.first().copied().unwrap_or(0);
        }
        let mut h = salt ^ (self.universe as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for &w in &self.words {
            h ^= w;
            h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            h ^= h >> 31;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = MessageSet::new(10);
        assert!(!s.contains(3));
        assert!(s.insert(3));
        assert!(!s.insert(3), "double insert is not fresh");
        assert!(s.contains(3));
        assert_eq!(s.count(), 1);
        assert!(!s.is_full());
    }

    #[test]
    fn union_reports_added() {
        let mut a = MessageSet::new(130);
        let mut b = MessageSet::new(130);
        a.insert(0);
        a.insert(100);
        b.insert(100);
        b.insert(129);
        assert_eq!(a.union_with(&b), 1);
        assert_eq!(a.count(), 3);
        assert_eq!(a.union_with(&b), 0, "re-union adds nothing");
    }

    #[test]
    fn full_after_all_inserted() {
        let mut s = MessageSet::new(65);
        for i in 0..65 {
            s.insert(i);
        }
        assert!(s.is_full());
    }

    #[test]
    fn small_universe_fingerprint_is_exact_mask() {
        let mut s = MessageSet::new(64);
        s.insert(0);
        s.insert(5);
        assert_eq!(s.fingerprint(), 0b100001);
    }

    #[test]
    fn large_universe_fingerprints_differ_for_different_sets() {
        let mut a = MessageSet::new(200);
        let mut b = MessageSet::new(200);
        a.insert(3);
        b.insert(150);
        assert_ne!(a.fingerprint(), b.fingerprint());
        // The word-fold collision family of the old XOR-rotate scheme
        // (ids i and 64 + (i - 1) collided) must not survive the hash.
        let mut c = MessageSet::new(128);
        let mut d = MessageSet::new(128);
        c.insert(4);
        d.insert(67);
        assert_ne!(c.fingerprint(), d.fingerprint());
    }

    #[test]
    fn salt_changes_large_universe_tags_but_not_small() {
        let mut large = MessageSet::new(100);
        large.insert(42);
        assert_ne!(
            large.fingerprint_salted(1),
            large.fingerprint_salted(2),
            "same set must re-hash differently under a new salt"
        );
        let mut small = MessageSet::new(8);
        small.insert(3);
        assert_eq!(small.fingerprint_salted(1), small.fingerprint_salted(2));
        assert_eq!(small.fingerprint_salted(7), small.fingerprint());
    }
}
