//! A small deterministic PRNG (splitmix64) so simulations are exactly
//! reproducible from a single `u64` seed, with no external dependencies.
//!
//! Splitmix64 passes the statistical tests that matter for simulation work,
//! is a single multiply-xor-shift pipeline, and — unlike lagged generators —
//! has no bad seeds (every seed, including 0, produces a full-period
//! sequence).

/// Deterministic 64-bit PRNG. Cloning or [`Rng::fork`]-ing yields
/// independent, reproducible streams.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The splitmix64 finalizer: a bijective avalanche over `u64`. Shared
/// with the message-set fingerprint hashing so the crate has exactly one
/// copy of these constants.
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Derive the independent stream at coordinates `(a, b)` of `seed` —
    /// e.g. `(round, node)` for the sharded round loop. Unlike
    /// [`fork`](Self::fork) this is *stateless*: the stream is a pure
    /// function of the three values, so any worker on any thread derives
    /// the identical generator for a given node without sequencing
    /// through a shared RNG. Nearby coordinates are decorrelated by two
    /// rounds of the splitmix64 finalizer.
    pub fn stream(seed: u64, a: u64, b: u64) -> Rng {
        let s = mix(seed ^ mix(a.wrapping_mul(GOLDEN_GAMMA)));
        Rng::new(mix(s ^ b.wrapping_mul(GOLDEN_GAMMA)))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`. `bound` must be non-zero.
    ///
    /// Uses rejection sampling (Lemire-style threshold) so the result is
    /// exactly uniform rather than modulo-biased.
    pub fn gen_range(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_range bound must be non-zero");
        let bound = bound as u64;
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            // Low 64 bits of r * bound are uniform once we reject the
            // truncated region below `threshold`.
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi as usize;
            }
        }
    }

    /// Fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derive an independent child generator. The parent advances by one
    /// step, so repeated forks yield distinct streams.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Fisher–Yates shuffle of a slice, deterministic given the RNG state.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut rng = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values 0..10 should appear");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(9);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn forks_are_independent() {
        let mut parent = Rng::new(11);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn streams_are_pure_functions_of_their_coordinates() {
        let mut a = Rng::stream(42, 7, 3);
        let mut b = Rng::stream(42, 7, 3);
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ_across_coordinates() {
        // Adjacent (round, node) coordinates — the worst case for a weak
        // mixer — must land in distinct streams.
        let mut seen = std::collections::HashSet::new();
        for round in 0..8u64 {
            for node in 0..64u64 {
                let mut rng = Rng::stream(9, round, node);
                assert!(seen.insert(rng.next_u64()), "stream collision");
            }
        }
        // And the seed matters too.
        let mut x = Rng::stream(1, 5, 5);
        let mut y = Rng::stream(2, 5, 5);
        assert_ne!(x.next_u64(), y.next_u64());
    }
}
