//! Core abstractions of the *mobile telephone model* from
//! "Gossip in a Smartphone Peer-to-Peer Network" (Newport, PODC 2017).
//!
//! The model captures BLE-style smartphone peer-to-peer communication:
//! time proceeds in synchronous rounds, and in each round every node
//!
//! 1. **advertises** a small tag visible to its neighbors in the topology
//!    graph,
//! 2. **scans** the advertisements of its neighbors,
//! 3. either **proposes a connection** to a single neighbor or makes itself
//!    available to accept one, and
//! 4. if a proposal is accepted, the matched pair may **transfer** data.
//!
//! The defining constraint is that every node participates in **at most one
//! pairwise connection per round** — connections form a matching in the
//! topology graph. This crate provides the pieces shared by every protocol
//! and engine built on the model:
//!
//! - [`NodeId`]: dense node identifiers,
//! - [`Topology`]: static undirected communication graphs plus standard
//!   builders (line, ring, grid, complete, random geometric), behind the
//!   [`GraphView`] read trait,
//! - [`DynamicTopology`]: the mutable wrapper for changing networks —
//!   alive-node set, faded-edge overlay, wholesale rewiring, and
//!   incrementally maintained active-neighbor views,
//! - [`Advertisement`]: the per-round tag a node broadcasts,
//! - [`MessageSet`] / [`MessageMatrix`]: the gossip state (which rumors a
//!   node holds) — standalone bitsets, and the engine's struct-of-arrays
//!   packing of all nodes' state, both read through [`MsgView`],
//! - [`Intent`] / [`resolve_connections`]: connection proposals and the
//!   batch matching resolver enforcing the one-connection-per-node
//!   invariant, plus [`resolve_connections_sharded`], the partitioned
//!   parallel form with identical invariants and thread-count-independent
//!   output, and [`IncrementalMatcher`], the event-at-a-time counterpart
//!   for asynchronous executions,
//! - [`SimTime`] / [`TimingConfig`]: virtual time and the drift/latency
//!   distributions of the asynchronous mobile telephone model,
//! - [`Rng`]: a small deterministic PRNG so whole simulations are seedable.

pub mod dynamic;
pub mod matching;
pub mod message;
pub mod rng;
pub mod time;
pub mod topology;

pub use dynamic::DynamicTopology;
pub use matching::{
    resolve_connections, resolve_connections_sharded, Connection, IncrementalMatcher, Intent,
    MatcherChunk, PeerState, Resolution, MATCH_REGIONS,
};
pub use message::{MatrixChunk, MessageMatrix, MessageSet, MsgView, TransferStats};
pub use rng::Rng;
pub use time::{SimTime, TimingConfig, TICKS_PER_ROUND};
pub use topology::{GraphView, RggGeometry, Topology};

/// Identifier of a node in a topology. Node ids are dense: a topology over
/// `n` nodes uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index into per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The tag a node broadcasts during the advertisement phase of a round.
///
/// The mobile telephone model parameterizes advertisements by a tag size of
/// `b` bits; protocols decide how to spend them. We give protocols a 64-bit
/// payload — enough for the exact message-set fingerprints used by
/// advertisement-guided gossip on universes of up to 64 rumors, and for the
/// hashed summaries larger universes fall back to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Advertisement(pub u64);
