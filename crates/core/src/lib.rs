pub fn placeholder() {}
