//! Connection proposals and the matching resolver.
//!
//! After scanning advertisements, each node commits to a per-round
//! [`Intent`]: propose a connection to one specific neighbor, listen for
//! incoming proposals (BLE peripheral role), or sit the round out. The
//! resolver turns those intents into the set of pairwise connections that
//! actually form, enforcing the model's defining invariant: **a node is in
//! at most one connection per round**.
//!
//! Resolution has two phases, both deterministic given the RNG:
//!
//! 1. **Proposal phase** — explicit proposals `u → v` (with `v` a listening
//!    neighbor of `u`) are visited in random order; a proposal succeeds when
//!    both endpoints are still free. Proposals aimed at nodes that are busy
//!    or not listening are simply lost, as in the model.
//! 2. **Rebound phase** — a proposer whose attempt failed re-scans and may
//!    connect to any still-free listening neighbor. This mirrors the model's
//!    assumption that connection resolution yields a matching that is
//!    *maximal* over willing pairs: after resolution, no free proposer is
//!    adjacent to a free listener. On a complete graph this means every
//!    round's matching is maximal over the proposer/listener split.

use crate::{NodeId, Rng, Topology};

/// A node's committed action for the connection phase of a round.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Intent {
    /// Attempt to open a connection to this neighbor.
    Propose(NodeId),
    /// Accept at most one incoming connection.
    Listen,
    /// Participate in neither side this round.
    #[default]
    Idle,
}

/// A formed pairwise connection. `initiator` proposed; `acceptor` listened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Connection {
    pub initiator: NodeId,
    pub acceptor: NodeId,
}

/// Resolve one round of intents into connections.
///
/// `intents[i]` is node `i`'s intent. Panics in debug builds if a proposal
/// targets a non-neighbor (a protocol bug); in release such proposals are
/// dropped. The returned connections form a matching: no node appears in
/// more than one, and no free proposer remains adjacent to a free listener.
pub fn resolve_connections(
    topology: &Topology,
    intents: &[Intent],
    rng: &mut Rng,
) -> Vec<Connection> {
    let n = topology.num_nodes();
    assert_eq!(intents.len(), n, "one intent per node required");

    let mut matched = vec![false; n];
    let mut connections = Vec::new();

    // Phase 1: explicit proposals, in random arrival order.
    let mut proposals: Vec<(NodeId, NodeId)> = intents
        .iter()
        .enumerate()
        .filter_map(|(u, intent)| match intent {
            Intent::Propose(v) => Some((NodeId(u as u32), *v)),
            _ => None,
        })
        .collect();
    rng.shuffle(&mut proposals);

    for &(u, v) in &proposals {
        debug_assert!(
            topology.are_neighbors(u, v),
            "protocol proposed {u} -> {v} across a non-edge"
        );
        if !topology.are_neighbors(u, v) {
            continue;
        }
        if intents[v.index()] == Intent::Listen && !matched[u.index()] && !matched[v.index()] {
            matched[u.index()] = true;
            matched[v.index()] = true;
            connections.push(Connection {
                initiator: u,
                acceptor: v,
            });
        }
    }

    // Phase 2: rebound. Failed proposers retry against any free listener in
    // range, making the matching maximal over willing (proposer, listener)
    // pairs.
    let mut free_proposers: Vec<NodeId> = proposals
        .iter()
        .map(|&(u, _)| u)
        .filter(|u| !matched[u.index()])
        .collect();
    rng.shuffle(&mut free_proposers);

    let mut candidates = Vec::new();
    for u in free_proposers {
        candidates.clear();
        candidates.extend(
            topology
                .neighbors(u)
                .iter()
                .copied()
                .filter(|v| intents[v.index()] == Intent::Listen && !matched[v.index()]),
        );
        if candidates.is_empty() {
            continue;
        }
        let v = candidates[rng.gen_range(candidates.len())];
        matched[u.index()] = true;
        matched[v.index()] = true;
        connections.push(Connection {
            initiator: u,
            acceptor: v,
        });
    }

    connections
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    #[test]
    fn proposal_to_listener_connects() {
        let topo = Topology::line(2);
        let intents = [Intent::Propose(NodeId(1)), Intent::Listen];
        let conns = resolve_connections(&topo, &intents, &mut Rng::new(1));
        assert_eq!(
            conns,
            vec![Connection {
                initiator: NodeId(0),
                acceptor: NodeId(1)
            }]
        );
    }

    #[test]
    fn proposal_to_non_listener_is_lost() {
        let topo = Topology::line(2);
        let intents = [Intent::Propose(NodeId(1)), Intent::Idle];
        assert!(resolve_connections(&topo, &intents, &mut Rng::new(1)).is_empty());
        let intents = [Intent::Propose(NodeId(1)), Intent::Propose(NodeId(0))];
        assert!(resolve_connections(&topo, &intents, &mut Rng::new(1)).is_empty());
    }

    #[test]
    fn listener_accepts_at_most_one() {
        // Both endpoints of a 3-line propose to the middle listener.
        let topo = Topology::line(3);
        let intents = [
            Intent::Propose(NodeId(1)),
            Intent::Listen,
            Intent::Propose(NodeId(1)),
        ];
        let conns = resolve_connections(&topo, &intents, &mut Rng::new(5));
        assert_eq!(conns.len(), 1);
        assert_eq!(conns[0].acceptor, NodeId(1));
    }

    #[test]
    fn rebound_rescues_failed_proposer() {
        // Nodes 0 and 2 both propose to listener 1; node 3 also listens.
        // Whoever loses node 1 must rebound onto node 3 if adjacent.
        let topo = Topology::complete(4);
        let intents = [
            Intent::Propose(NodeId(1)),
            Intent::Listen,
            Intent::Propose(NodeId(1)),
            Intent::Listen,
        ];
        let conns = resolve_connections(&topo, &intents, &mut Rng::new(8));
        assert_eq!(conns.len(), 2, "rebound phase should pair everyone");
    }
}
