//! Connection proposals and the matching resolver.
//!
//! After scanning advertisements, each node commits to a per-round
//! [`Intent`]: propose a connection to one specific neighbor, listen for
//! incoming proposals (BLE peripheral role), or sit the round out. The
//! resolver turns those intents into the set of pairwise connections that
//! actually form, enforcing the model's defining invariant: **a node is in
//! at most one connection per round**.
//!
//! Resolution has two phases, both deterministic given the RNG:
//!
//! 1. **Proposal phase** — explicit proposals `u → v` (with `v` a listening
//!    neighbor of `u`) are visited in random order; a proposal succeeds when
//!    both endpoints are still free. Proposals aimed at nodes that are busy
//!    or not listening are simply lost, as in the model.
//! 2. **Rebound phase** — a proposer whose attempt failed re-scans and may
//!    connect to any still-free listening neighbor. This mirrors the model's
//!    assumption that connection resolution yields a matching that is
//!    *maximal* over willing pairs: after resolution, no free proposer is
//!    adjacent to a free listener. On a complete graph this means every
//!    round's matching is maximal over the proposer/listener split.
//!
//! [`resolve_connections`] performs this resolution for a whole synchronous
//! round in one batch; [`resolve_connections_sharded`] is the partitioned
//! form the sharded round loop uses — node-range regions resolved in
//! parallel, boundary conflicts settled by a deterministic serial sweep —
//! with results that are byte-identical at any thread count. Event-driven
//! schedulers instead resolve proposals one at a time as their connection
//! events fire; [`IncrementalMatcher`] is the stateful counterpart that
//! enforces the same one-connection-per-node invariant across those
//! individual events.

use crate::topology::GraphView;
use crate::{NodeId, Rng};

/// A node's committed action for the connection phase of a round.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Intent {
    /// Attempt to open a connection to this neighbor.
    Propose(NodeId),
    /// Accept at most one incoming connection.
    Listen,
    /// Participate in neither side this round.
    #[default]
    Idle,
}

/// A formed pairwise connection. `initiator` proposed; `acceptor` listened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Connection {
    pub initiator: NodeId,
    pub acceptor: NodeId,
}

/// The outcome of resolving one round of intents: the connections that
/// formed, plus how many proposals were dropped because they targeted a
/// non-neighbor. A non-neighbor proposal is a protocol bug (within a
/// synchronous round the graph cannot change between scan and resolution),
/// so it panics in debug builds; in release it is counted here instead of
/// vanishing silently — the engine surfaces the sum as
/// `SimResult::dropped_proposals`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Resolution {
    /// The matching that formed: no node appears in more than one
    /// connection, and no free proposer remains adjacent to a free
    /// listener.
    pub connections: Vec<Connection>,
    /// Proposals dropped for targeting a non-neighbor (release builds
    /// only; debug builds panic first). The dropped proposer still
    /// participates in the rebound phase, exactly as if its target had
    /// merely declined.
    pub dropped_proposals: u64,
    /// Proposals resolved inside a region of the partitioned resolver
    /// (every listening neighbor in-region). Always zero from the serial
    /// [`resolve_connections`], which has no partition. Together with
    /// `boundary_proposals` this is the load-balance instrument of the
    /// sharded resolver: a high boundary share means the partition is
    /// fighting the topology.
    pub confined_proposals: u64,
    /// Proposals deferred to the serial boundary sweep of the partitioned
    /// resolver. Zero from the serial resolver.
    pub boundary_proposals: u64,
}

/// The two-phase resolution core shared by the serial resolver, every
/// parallel region, and the boundary sweep: visit `proposals` in random
/// arrival order (phase 1), then let still-free proposers rebound onto any
/// free listening neighbor (phase 2). `matched[i]` tracks node `base + i`
/// — regions pass their own slice of the global occupancy array with
/// `base` at the region's first node, which is sound because every node a
/// region touches (proposer, target, rebound candidate) lies inside its
/// slice by construction. Connections are appended to `connections`.
fn resolve_batch<G: GraphView + ?Sized>(
    proposals: &mut [(NodeId, NodeId)],
    topology: &G,
    intents: &[Intent],
    rng: &mut Rng,
    base: usize,
    matched: &mut [bool],
    connections: &mut Vec<Connection>,
) {
    // Phase 1: explicit proposals, in random arrival order.
    rng.shuffle(proposals);
    for &(u, v) in proposals.iter() {
        if !topology.are_neighbors(u, v) {
            continue; // dropped (counted by the caller)
        }
        if intents[v.index()] == Intent::Listen
            && !matched[u.index() - base]
            && !matched[v.index() - base]
        {
            matched[u.index() - base] = true;
            matched[v.index() - base] = true;
            connections.push(Connection {
                initiator: u,
                acceptor: v,
            });
        }
    }

    // Phase 2: rebound. Failed proposers retry against any free listener in
    // range, making the matching maximal over willing (proposer, listener)
    // pairs.
    let mut free_proposers: Vec<NodeId> = proposals
        .iter()
        .map(|&(u, _)| u)
        .filter(|u| !matched[u.index() - base])
        .collect();
    rng.shuffle(&mut free_proposers);

    let mut candidates = Vec::new();
    for u in free_proposers {
        candidates.clear();
        candidates.extend(
            topology
                .neighbors(u)
                .iter()
                .copied()
                .filter(|v| intents[v.index()] == Intent::Listen && !matched[v.index() - base]),
        );
        if candidates.is_empty() {
            continue;
        }
        let v = candidates[rng.gen_range(candidates.len())];
        matched[u.index() - base] = true;
        matched[v.index() - base] = true;
        connections.push(Connection {
            initiator: u,
            acceptor: v,
        });
    }
}

/// Collect `(proposer, target)` pairs in node order and count (and, in
/// debug builds, panic on) proposals across non-edges.
fn collect_proposals<G: GraphView + ?Sized>(
    topology: &G,
    intents: &[Intent],
) -> (Vec<(NodeId, NodeId)>, u64) {
    let proposals: Vec<(NodeId, NodeId)> = intents
        .iter()
        .enumerate()
        .filter_map(|(u, intent)| match intent {
            Intent::Propose(v) => Some((NodeId(u as u32), *v)),
            _ => None,
        })
        .collect();
    let mut dropped = 0;
    for &(u, v) in &proposals {
        debug_assert!(
            topology.are_neighbors(u, v),
            "protocol proposed {u} -> {v} across a non-edge"
        );
        dropped += !topology.are_neighbors(u, v) as u64;
    }
    (proposals, dropped)
}

/// Resolve one round of intents into connections, serially.
///
/// `intents[i]` is node `i`'s intent; `topology` is any [`GraphView`] —
/// static, or the active view of a dynamic graph. The returned matching
/// satisfies the invariants documented on [`Resolution`]; non-neighbor
/// proposals panic in debug builds and are dropped-and-counted in release.
/// This is the reference resolver: the partitioned
/// [`resolve_connections_sharded`] must produce a matching satisfying the
/// same invariants (the property tests in `tests/matching_properties.rs`
/// hold it to that).
pub fn resolve_connections<G: GraphView + ?Sized>(
    topology: &G,
    intents: &[Intent],
    rng: &mut Rng,
) -> Resolution {
    let n = topology.num_nodes();
    assert_eq!(intents.len(), n, "one intent per node required");

    let (mut proposals, dropped_proposals) = collect_proposals(topology, intents);
    let mut matched = vec![false; n];
    let mut connections = Vec::new();
    resolve_batch(
        &mut proposals,
        topology,
        intents,
        rng,
        0,
        &mut matched,
        &mut connections,
    );
    Resolution {
        connections,
        dropped_proposals,
        ..Resolution::default()
    }
}

/// Region count of the partitioned resolver. Fixed — deliberately *not* a
/// function of the thread count, because the partition (and therefore
/// which proposals are region-internal vs. boundary, and which RNG stream
/// resolves each) must be identical whether 1 or 64 workers execute it;
/// only then are results byte-identical at any thread count.
pub const MATCH_REGIONS: usize = 64;

/// Stream coordinate of region `r`'s resolver RNG. Node streams use the
/// node id (`< 2^32`) as their coordinate, so offsetting regions by
/// `2^32` can never collide with one.
const REGION_STREAM_BASE: u64 = 1 << 32;

/// Stream coordinate of the boundary sweep's RNG. (`u64::MAX` itself was
/// the retired whole-round matching stream; keeping this distinct makes
/// the sharded resolver's draws independent of the old serial ones.)
const BOUNDARY_STREAM: u64 = u64::MAX - 1;

/// Per-region scratch produced by the parallel pass, merged in region
/// (= node) order afterwards.
#[derive(Default)]
struct RegionOut {
    connections: Vec<Connection>,
    deferred: Vec<(NodeId, NodeId)>,
    dropped: u64,
    confined: u64,
}

/// One region's pass: split the region's proposers into *confined* ones —
/// every listening neighbor lies inside the region's node range, so
/// nothing outside the range can be touched — and *boundary* ones, which
/// are deferred. Confined proposals run the standard two-phase resolution
/// against the region's slice of the occupancy array, drawing from the
/// region's own `(seed, round, region)` stream.
#[allow(clippy::too_many_arguments)] // one flat hot-path call, not an API
fn resolve_region<G: GraphView + ?Sized>(
    region: usize,
    base: usize,
    matched: &mut [bool],
    out: &mut RegionOut,
    topology: &G,
    intents: &[Intent],
    seed: u64,
    round: u64,
) {
    let hi = base + matched.len();
    let mut confined: Vec<(NodeId, NodeId)> = Vec::new();
    for u in base..hi {
        let Intent::Propose(v) = intents[u] else {
            continue;
        };
        let u_id = NodeId(u as u32);
        debug_assert!(
            topology.are_neighbors(u_id, v),
            "protocol proposed {u_id} -> {v} across a non-edge"
        );
        // A dropped (non-neighbor) proposal still rebounds, so it stays in
        // whichever pool its listening neighborhood assigns it to.
        out.dropped += !topology.are_neighbors(u_id, v) as u64;
        let is_confined = topology
            .neighbors(u_id)
            .iter()
            .all(|w| intents[w.index()] != Intent::Listen || (base..hi).contains(&w.index()));
        if is_confined {
            confined.push((u_id, v));
        } else {
            out.deferred.push((u_id, v));
        }
    }
    out.confined += confined.len() as u64;
    let mut rng = Rng::stream(seed, round, REGION_STREAM_BASE + region as u64);
    resolve_batch(
        &mut confined,
        topology,
        intents,
        &mut rng,
        base,
        matched,
        &mut out.connections,
    );
}

/// Resolve one round of intents with the partitioned parallel resolver.
///
/// Nodes are split into `regions` fixed contiguous blocks (callers pass
/// [`MATCH_REGIONS`]). A proposer whose listening neighbors all lie in its
/// own block is resolved inside that block, in parallel across blocks —
/// each block owns a disjoint slice of the occupancy array, so the pass
/// needs no synchronization. Proposers with a listening neighbor in
/// another block are deferred to a serial *boundary sweep* that runs the
/// same two-phase resolution over the concatenated leftovers (in node
/// order) against the whole occupancy array.
///
/// **Determinism.** The partition, the confined/boundary split, and every
/// RNG stream (`(seed, round, 2³² + region)` per region,
/// `(seed, round, u64::MAX − 1)` for the sweep) depend only on the inputs
/// — never on `threads`, which merely says how many workers execute the
/// region passes. Regions merge in region order (= node order), so the
/// output is byte-identical at any thread count.
///
/// **Maximality.** A confined proposer left free had every listening
/// neighbor matched at the end of its own region's pass (all of them are
/// in-block by definition), and matches only accumulate afterwards. A
/// boundary proposer left free saw every still-free listener — it rebounds
/// against the global occupancy array. Hence no free proposer is adjacent
/// to a free listener: the same invariant [`resolve_connections`]
/// guarantees, verified against it property-style in
/// `tests/matching_properties.rs`.
pub fn resolve_connections_sharded<G: GraphView + Sync + ?Sized>(
    topology: &G,
    intents: &[Intent],
    seed: u64,
    round: u64,
    regions: usize,
    threads: usize,
) -> Resolution {
    let n = topology.num_nodes();
    assert_eq!(intents.len(), n, "one intent per node required");
    if n == 0 {
        return Resolution::default();
    }
    let regions = regions.clamp(1, n);
    let block = n.div_ceil(regions);
    // Ceiling rounding can leave fewer non-empty blocks than requested
    // (e.g. n = 6, regions = 4 → block = 2 → 3 blocks); recompute so every
    // region is non-empty and `chunks_mut(block)` lines up exactly.
    let regions = n.div_ceil(block);
    let threads = threads.clamp(1, regions);

    let mut matched = vec![false; n];
    let mut outs: Vec<RegionOut> = Vec::new();
    outs.resize_with(regions, RegionOut::default);

    if threads == 1 {
        for (r, (chunk, out)) in matched.chunks_mut(block).zip(outs.iter_mut()).enumerate() {
            resolve_region(r, r * block, chunk, out, topology, intents, seed, round);
        }
    } else {
        // Hand each worker a contiguous group of (region slice, scratch)
        // pairs. The slices are disjoint by construction (`chunks_mut`),
        // so the pass is safe Rust — no atomics, no unsafe.
        let mut work: Vec<(usize, (&mut [bool], &mut RegionOut))> = matched
            .chunks_mut(block)
            .zip(outs.iter_mut())
            .enumerate()
            .collect();
        let per_worker = regions.div_ceil(threads);
        std::thread::scope(|s| {
            let mut rest = work.as_mut_slice();
            while !rest.is_empty() {
                let (group, tail) = rest.split_at_mut(per_worker.min(rest.len()));
                rest = tail;
                s.spawn(move || {
                    for (r, (chunk, out)) in group.iter_mut() {
                        resolve_region(*r, *r * block, chunk, out, topology, intents, seed, round);
                    }
                });
            }
        });
    }

    // Deterministic merge in region (= node) order, then the serial
    // boundary sweep over the deferred proposals.
    let mut connections = Vec::new();
    let mut deferred: Vec<(NodeId, NodeId)> = Vec::new();
    let mut dropped_proposals = 0;
    let mut confined_proposals = 0;
    for out in &mut outs {
        connections.append(&mut out.connections);
        deferred.extend_from_slice(&out.deferred);
        dropped_proposals += out.dropped;
        confined_proposals += out.confined;
    }
    let boundary_proposals = deferred.len() as u64;
    let mut rng = Rng::stream(seed, round, BOUNDARY_STREAM);
    resolve_batch(
        &mut deferred,
        topology,
        intents,
        &mut rng,
        0,
        &mut matched,
        &mut connections,
    );
    Resolution {
        connections,
        dropped_proposals,
        confined_proposals,
        boundary_proposals,
    }
}

/// A node's availability in an event-driven execution, tracked by
/// [`IncrementalMatcher`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PeerState {
    /// Not engaged on either side of a connection.
    #[default]
    Free,
    /// Accepting at most one incoming proposal.
    Listening,
    /// Has a proposal in flight; cannot accept incoming proposals.
    Proposing,
    /// Engaged in an open connection (setup or transfer in progress).
    Connected,
}

/// Incremental connection resolution for event-driven schedulers.
///
/// Where [`resolve_connections`] settles a synchronous round's intents in
/// one batch, an asynchronous execution sees proposals *arrive* at their
/// targets at different virtual times. `IncrementalMatcher` tracks every
/// node's [`PeerState`] so that each arriving proposal can be resolved on
/// the spot — [`try_connect`](Self::try_connect) succeeds exactly when the
/// target is still listening and free — while the model's defining
/// invariant holds at every instant: **a node is in at most one connection
/// at a time**.
///
/// There is no rebound phase here: a failed proposer returns to its
/// advertise/scan cycle and retries naturally in continuous time.
#[derive(Clone, Debug)]
pub struct IncrementalMatcher {
    states: Vec<PeerState>,
}

impl IncrementalMatcher {
    /// All `n` nodes start [`PeerState::Free`].
    pub fn new(n: usize) -> Self {
        IncrementalMatcher {
            states: vec![PeerState::Free; n],
        }
    }

    /// Current state of `node`.
    pub fn state(&self, node: NodeId) -> PeerState {
        self.states[node.index()]
    }

    /// `Free → Listening`: the node starts accepting proposals.
    pub fn listen(&mut self, node: NodeId) {
        debug_assert_eq!(self.states[node.index()], PeerState::Free);
        self.states[node.index()] = PeerState::Listening;
    }

    /// `Free → Proposing`: the node commits to a proposal in flight.
    pub fn propose(&mut self, node: NodeId) {
        debug_assert_eq!(self.states[node.index()], PeerState::Free);
        self.states[node.index()] = PeerState::Proposing;
    }

    /// `Listening | Proposing → Free`: a listener re-entering its scan
    /// cycle, or a proposer whose attempt failed.
    pub fn cancel(&mut self, node: NodeId) {
        debug_assert!(matches!(
            self.states[node.index()],
            PeerState::Listening | PeerState::Proposing
        ));
        self.states[node.index()] = PeerState::Free;
    }

    /// Resolve `initiator`'s arriving proposal against `acceptor`.
    ///
    /// Succeeds — moving both endpoints to [`PeerState::Connected`] — iff
    /// the acceptor is currently listening and the pair is an edge of
    /// `topology` *at arrival time*. The initiator must be
    /// [`PeerState::Proposing`]; on failure it stays so (callers typically
    /// [`cancel`](Self::cancel) it back into its scan cycle). A proposal
    /// across a non-edge simply fails: under a dynamic topology the edge
    /// may legitimately have vanished — endpoint died, link faded, node
    /// moved — while the proposal was in flight.
    pub fn try_connect<G: GraphView + ?Sized>(
        &mut self,
        topology: &G,
        initiator: NodeId,
        acceptor: NodeId,
    ) -> bool {
        debug_assert_eq!(self.states[initiator.index()], PeerState::Proposing);
        if !topology.are_neighbors(initiator, acceptor)
            || self.states[acceptor.index()] != PeerState::Listening
        {
            return false;
        }
        self.states[initiator.index()] = PeerState::Connected;
        self.states[acceptor.index()] = PeerState::Connected;
        true
    }

    /// `Connected → Free` for both endpoints: the transfer finished and
    /// the connection closed.
    pub fn release(&mut self, a: NodeId, b: NodeId) {
        debug_assert_eq!(self.states[a.index()], PeerState::Connected);
        debug_assert_eq!(self.states[b.index()], PeerState::Connected);
        self.states[a.index()] = PeerState::Free;
        self.states[b.index()] = PeerState::Free;
    }

    /// Split the matcher into disjoint mutable blocks of `block`
    /// contiguous nodes each (the last block may be shorter) — the
    /// region-parallel access pattern of the time-sliced event engine.
    /// Each [`MatcherChunk`] owns its nodes' states exclusively, so
    /// workers on different chunks resolve region-local events
    /// concurrently in safe Rust; chunk methods take the same [`NodeId`]s
    /// as their full-matcher counterparts and enforce the identical state
    /// transitions.
    pub fn region_chunks(&mut self, block: usize) -> impl Iterator<Item = MatcherChunk<'_>> {
        assert!(block > 0, "region block size must be non-zero");
        self.states
            .chunks_mut(block)
            .enumerate()
            .map(move |(i, states)| MatcherChunk {
                base: i * block,
                states,
            })
    }
}

/// Exclusive access to nodes `base..base + len` of an
/// [`IncrementalMatcher`], produced by
/// [`IncrementalMatcher::region_chunks`]. Every node passed to a chunk
/// method must fall inside the chunk's range (debug-asserted) — the
/// time-sliced event engine guarantees this by deferring events whose
/// endpoints straddle regions to its serial boundary sweep.
pub struct MatcherChunk<'a> {
    base: usize,
    states: &'a mut [PeerState],
}

impl MatcherChunk<'_> {
    /// First node index owned by this chunk.
    pub fn base(&self) -> usize {
        self.base
    }

    #[inline]
    fn local(&self, node: NodeId) -> usize {
        debug_assert!(
            node.index() >= self.base && node.index() - self.base < self.states.len(),
            "node {node} outside chunk {}..{}",
            self.base,
            self.base + self.states.len()
        );
        node.index() - self.base
    }

    /// Current state of `node`.
    pub fn state(&self, node: NodeId) -> PeerState {
        self.states[self.local(node)]
    }

    /// `Free → Listening`; see [`IncrementalMatcher::listen`].
    pub fn listen(&mut self, node: NodeId) {
        let l = self.local(node);
        debug_assert_eq!(self.states[l], PeerState::Free);
        self.states[l] = PeerState::Listening;
    }

    /// `Free → Proposing`; see [`IncrementalMatcher::propose`].
    pub fn propose(&mut self, node: NodeId) {
        let l = self.local(node);
        debug_assert_eq!(self.states[l], PeerState::Free);
        self.states[l] = PeerState::Proposing;
    }

    /// `Listening | Proposing → Free`; see [`IncrementalMatcher::cancel`].
    pub fn cancel(&mut self, node: NodeId) {
        let l = self.local(node);
        debug_assert!(matches!(
            self.states[l],
            PeerState::Listening | PeerState::Proposing
        ));
        self.states[l] = PeerState::Free;
    }

    /// Resolve `initiator`'s arriving proposal against `acceptor`, both in
    /// this chunk; see [`IncrementalMatcher::try_connect`].
    pub fn try_connect<G: GraphView + ?Sized>(
        &mut self,
        topology: &G,
        initiator: NodeId,
        acceptor: NodeId,
    ) -> bool {
        let (li, la) = (self.local(initiator), self.local(acceptor));
        debug_assert_eq!(self.states[li], PeerState::Proposing);
        if !topology.are_neighbors(initiator, acceptor) || self.states[la] != PeerState::Listening {
            return false;
        }
        self.states[li] = PeerState::Connected;
        self.states[la] = PeerState::Connected;
        true
    }

    /// `Connected → Free` for both endpoints; see
    /// [`IncrementalMatcher::release`].
    pub fn release(&mut self, a: NodeId, b: NodeId) {
        let (la, lb) = (self.local(a), self.local(b));
        debug_assert_eq!(self.states[la], PeerState::Connected);
        debug_assert_eq!(self.states[lb], PeerState::Connected);
        self.states[la] = PeerState::Free;
        self.states[lb] = PeerState::Free;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    #[test]
    fn proposal_to_listener_connects() {
        let topo = Topology::line(2);
        let intents = [Intent::Propose(NodeId(1)), Intent::Listen];
        let res = resolve_connections(&topo, &intents, &mut Rng::new(1));
        assert_eq!(
            res.connections,
            vec![Connection {
                initiator: NodeId(0),
                acceptor: NodeId(1)
            }]
        );
        assert_eq!(res.dropped_proposals, 0);
    }

    #[test]
    fn matcher_chunks_mirror_full_matcher_transitions() {
        // 6-node ring split into blocks of 3: run the same transition
        // sequence through chunked and full matchers and compare states.
        let topo = Topology::ring(6);
        let mut full = IncrementalMatcher::new(6);
        let mut chunked = IncrementalMatcher::new(6);
        {
            let mut chunks: Vec<_> = chunked.region_chunks(3).collect();
            assert_eq!(chunks.len(), 2);
            assert_eq!(chunks[0].base(), 0);
            assert_eq!(chunks[1].base(), 3);
            // In-chunk pair 0-1 (block 0) and 4-5 (block 1).
            chunks[0].listen(NodeId(1));
            chunks[0].propose(NodeId(0));
            assert!(chunks[0].try_connect(&topo, NodeId(0), NodeId(1)));
            chunks[1].listen(NodeId(4));
            chunks[1].propose(NodeId(5));
            assert!(chunks[1].try_connect(&topo, NodeId(5), NodeId(4)));
            chunks[1].release(NodeId(5), NodeId(4));
            // Failed proposal: node 3 proposes to idle node 4 (now Free).
            chunks[1].propose(NodeId(3));
            assert!(!chunks[1].try_connect(&topo, NodeId(3), NodeId(4)));
            chunks[1].cancel(NodeId(3));
            assert_eq!(chunks[0].state(NodeId(0)), PeerState::Connected);
            assert_eq!(chunks[1].state(NodeId(3)), PeerState::Free);
        }
        full.listen(NodeId(1));
        full.propose(NodeId(0));
        assert!(full.try_connect(&topo, NodeId(0), NodeId(1)));
        full.listen(NodeId(4));
        full.propose(NodeId(5));
        assert!(full.try_connect(&topo, NodeId(5), NodeId(4)));
        full.release(NodeId(5), NodeId(4));
        full.propose(NodeId(3));
        assert!(!full.try_connect(&topo, NodeId(3), NodeId(4)));
        full.cancel(NodeId(3));
        for u in 0..6 {
            assert_eq!(
                chunked.state(NodeId(u as u32)),
                full.state(NodeId(u as u32))
            );
        }
    }

    #[test]
    fn proposal_to_non_listener_is_lost() {
        let topo = Topology::line(2);
        let intents = [Intent::Propose(NodeId(1)), Intent::Idle];
        assert!(resolve_connections(&topo, &intents, &mut Rng::new(1))
            .connections
            .is_empty());
        let intents = [Intent::Propose(NodeId(1)), Intent::Propose(NodeId(0))];
        assert!(resolve_connections(&topo, &intents, &mut Rng::new(1))
            .connections
            .is_empty());
    }

    #[test]
    fn listener_accepts_at_most_one() {
        // Both endpoints of a 3-line propose to the middle listener.
        let topo = Topology::line(3);
        let intents = [
            Intent::Propose(NodeId(1)),
            Intent::Listen,
            Intent::Propose(NodeId(1)),
        ];
        let conns = resolve_connections(&topo, &intents, &mut Rng::new(5)).connections;
        assert_eq!(conns.len(), 1);
        assert_eq!(conns[0].acceptor, NodeId(1));
    }

    #[test]
    fn rebound_rescues_failed_proposer() {
        // Nodes 0 and 2 both propose to listener 1; node 3 also listens.
        // Whoever loses node 1 must rebound onto node 3 if adjacent.
        let topo = Topology::complete(4);
        let intents = [
            Intent::Propose(NodeId(1)),
            Intent::Listen,
            Intent::Propose(NodeId(1)),
            Intent::Listen,
        ];
        let conns = resolve_connections(&topo, &intents, &mut Rng::new(8)).connections;
        assert_eq!(conns.len(), 2, "rebound phase should pair everyone");
    }

    #[test]
    fn sharded_resolver_forms_connections_and_is_thread_independent() {
        // A 12-ring with alternating propose/listen intents, split into
        // more regions than make sense — every region is tiny, so all
        // proposals defer to the boundary sweep — and into 2 regions,
        // where most are confined. Both must be internally
        // thread-independent.
        let topo = Topology::ring(12);
        let intents: Vec<Intent> = (0..12)
            .map(|u| {
                if u % 2 == 0 {
                    Intent::Propose(NodeId(((u + 1) % 12) as u32))
                } else {
                    Intent::Listen
                }
            })
            .collect();
        for regions in [2usize, 64] {
            let baseline = resolve_connections_sharded(&topo, &intents, 9, 3, regions, 1);
            assert!(
                !baseline.connections.is_empty(),
                "regions={regions}: some pairs must form"
            );
            assert_eq!(baseline.dropped_proposals, 0);
            assert_eq!(
                baseline.confined_proposals + baseline.boundary_proposals,
                6,
                "regions={regions}: every proposal is either confined or boundary"
            );
            for threads in [2usize, 8] {
                let sharded = resolve_connections_sharded(&topo, &intents, 9, 3, regions, threads);
                assert_eq!(
                    baseline, sharded,
                    "regions={regions}, threads={threads}: sharded resolver diverged"
                );
            }
        }
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn non_neighbor_proposals_are_counted_in_release() {
        // Node 0 proposes to non-neighbor 2 on a 3-line (a protocol bug;
        // debug builds panic instead). The proposal is dropped and
        // counted, but node 0 still rebounds onto its listening neighbor.
        let topo = Topology::line(3);
        let intents = [Intent::Propose(NodeId(2)), Intent::Listen, Intent::Idle];
        let serial = resolve_connections(&topo, &intents, &mut Rng::new(4));
        assert_eq!(serial.dropped_proposals, 1);
        assert_eq!(
            serial.connections,
            vec![Connection {
                initiator: NodeId(0),
                acceptor: NodeId(1)
            }],
            "dropped proposer must still rebound"
        );
        let sharded = resolve_connections_sharded(&topo, &intents, 4, 1, MATCH_REGIONS, 2);
        assert_eq!(sharded.dropped_proposals, 1);
        assert_eq!(sharded.connections, serial.connections);
    }

    #[test]
    fn incremental_connect_requires_a_free_listener() {
        let topo = Topology::line(3);
        let mut m = IncrementalMatcher::new(3);
        m.propose(NodeId(0));
        // Target idle: the proposal is lost.
        assert!(!m.try_connect(&topo, NodeId(0), NodeId(1)));
        assert_eq!(m.state(NodeId(0)), PeerState::Proposing);
        // Target listening: the connection forms.
        m.listen(NodeId(1));
        assert!(m.try_connect(&topo, NodeId(0), NodeId(1)));
        assert_eq!(m.state(NodeId(0)), PeerState::Connected);
        assert_eq!(m.state(NodeId(1)), PeerState::Connected);
    }

    #[test]
    fn incremental_listener_accepts_at_most_one() {
        // Both ends of a 3-line propose to the middle listener; only the
        // first arriving proposal may connect.
        let topo = Topology::line(3);
        let mut m = IncrementalMatcher::new(3);
        m.listen(NodeId(1));
        m.propose(NodeId(0));
        m.propose(NodeId(2));
        assert!(m.try_connect(&topo, NodeId(0), NodeId(1)));
        assert!(!m.try_connect(&topo, NodeId(2), NodeId(1)));
        // The loser cancels back into its scan cycle.
        m.cancel(NodeId(2));
        assert_eq!(m.state(NodeId(2)), PeerState::Free);
    }

    #[test]
    fn incremental_release_frees_both_endpoints() {
        let topo = Topology::line(2);
        let mut m = IncrementalMatcher::new(2);
        m.listen(NodeId(1));
        m.propose(NodeId(0));
        assert!(m.try_connect(&topo, NodeId(0), NodeId(1)));
        m.release(NodeId(0), NodeId(1));
        assert_eq!(m.state(NodeId(0)), PeerState::Free);
        assert_eq!(m.state(NodeId(1)), PeerState::Free);
        // Both endpoints can immediately engage again.
        m.listen(NodeId(0));
        m.propose(NodeId(1));
        assert!(m.try_connect(&topo, NodeId(1), NodeId(0)));
    }

    #[test]
    fn incremental_proposing_node_cannot_accept() {
        // Two nodes propose to each other: neither is listening, so both
        // arriving proposals fail — exactly the mutual-proposal loss the
        // batch resolver models.
        let topo = Topology::line(2);
        let mut m = IncrementalMatcher::new(2);
        m.propose(NodeId(0));
        m.propose(NodeId(1));
        assert!(!m.try_connect(&topo, NodeId(0), NodeId(1)));
        assert!(!m.try_connect(&topo, NodeId(1), NodeId(0)));
    }
}
