//! Connection proposals and the matching resolver.
//!
//! After scanning advertisements, each node commits to a per-round
//! [`Intent`]: propose a connection to one specific neighbor, listen for
//! incoming proposals (BLE peripheral role), or sit the round out. The
//! resolver turns those intents into the set of pairwise connections that
//! actually form, enforcing the model's defining invariant: **a node is in
//! at most one connection per round**.
//!
//! Resolution has two phases, both deterministic given the RNG:
//!
//! 1. **Proposal phase** — explicit proposals `u → v` (with `v` a listening
//!    neighbor of `u`) are visited in random order; a proposal succeeds when
//!    both endpoints are still free. Proposals aimed at nodes that are busy
//!    or not listening are simply lost, as in the model.
//! 2. **Rebound phase** — a proposer whose attempt failed re-scans and may
//!    connect to any still-free listening neighbor. This mirrors the model's
//!    assumption that connection resolution yields a matching that is
//!    *maximal* over willing pairs: after resolution, no free proposer is
//!    adjacent to a free listener. On a complete graph this means every
//!    round's matching is maximal over the proposer/listener split.
//!
//! [`resolve_connections`] performs this resolution for a whole synchronous
//! round in one batch. Event-driven schedulers instead resolve proposals
//! one at a time as their connection events fire; [`IncrementalMatcher`]
//! is the stateful counterpart that enforces the same
//! one-connection-per-node invariant across those individual events.

use crate::topology::GraphView;
use crate::{NodeId, Rng};

/// A node's committed action for the connection phase of a round.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Intent {
    /// Attempt to open a connection to this neighbor.
    Propose(NodeId),
    /// Accept at most one incoming connection.
    Listen,
    /// Participate in neither side this round.
    #[default]
    Idle,
}

/// A formed pairwise connection. `initiator` proposed; `acceptor` listened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Connection {
    pub initiator: NodeId,
    pub acceptor: NodeId,
}

/// Resolve one round of intents into connections.
///
/// `intents[i]` is node `i`'s intent; `topology` is any [`GraphView`] —
/// static, or the active view of a dynamic graph. Panics in debug builds
/// if a proposal targets a non-neighbor (a protocol bug: within a
/// synchronous round the graph cannot change between scan and resolution);
/// in release such proposals are dropped. The returned connections form a
/// matching: no node appears in more than one, and no free proposer
/// remains adjacent to a free listener.
pub fn resolve_connections<G: GraphView + ?Sized>(
    topology: &G,
    intents: &[Intent],
    rng: &mut Rng,
) -> Vec<Connection> {
    let n = topology.num_nodes();
    assert_eq!(intents.len(), n, "one intent per node required");

    let mut matched = vec![false; n];
    let mut connections = Vec::new();

    // Phase 1: explicit proposals, in random arrival order.
    let mut proposals: Vec<(NodeId, NodeId)> = intents
        .iter()
        .enumerate()
        .filter_map(|(u, intent)| match intent {
            Intent::Propose(v) => Some((NodeId(u as u32), *v)),
            _ => None,
        })
        .collect();
    rng.shuffle(&mut proposals);

    for &(u, v) in &proposals {
        debug_assert!(
            topology.are_neighbors(u, v),
            "protocol proposed {u} -> {v} across a non-edge"
        );
        if !topology.are_neighbors(u, v) {
            continue;
        }
        if intents[v.index()] == Intent::Listen && !matched[u.index()] && !matched[v.index()] {
            matched[u.index()] = true;
            matched[v.index()] = true;
            connections.push(Connection {
                initiator: u,
                acceptor: v,
            });
        }
    }

    // Phase 2: rebound. Failed proposers retry against any free listener in
    // range, making the matching maximal over willing (proposer, listener)
    // pairs.
    let mut free_proposers: Vec<NodeId> = proposals
        .iter()
        .map(|&(u, _)| u)
        .filter(|u| !matched[u.index()])
        .collect();
    rng.shuffle(&mut free_proposers);

    let mut candidates = Vec::new();
    for u in free_proposers {
        candidates.clear();
        candidates.extend(
            topology
                .neighbors(u)
                .iter()
                .copied()
                .filter(|v| intents[v.index()] == Intent::Listen && !matched[v.index()]),
        );
        if candidates.is_empty() {
            continue;
        }
        let v = candidates[rng.gen_range(candidates.len())];
        matched[u.index()] = true;
        matched[v.index()] = true;
        connections.push(Connection {
            initiator: u,
            acceptor: v,
        });
    }

    connections
}

/// A node's availability in an event-driven execution, tracked by
/// [`IncrementalMatcher`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PeerState {
    /// Not engaged on either side of a connection.
    #[default]
    Free,
    /// Accepting at most one incoming proposal.
    Listening,
    /// Has a proposal in flight; cannot accept incoming proposals.
    Proposing,
    /// Engaged in an open connection (setup or transfer in progress).
    Connected,
}

/// Incremental connection resolution for event-driven schedulers.
///
/// Where [`resolve_connections`] settles a synchronous round's intents in
/// one batch, an asynchronous execution sees proposals *arrive* at their
/// targets at different virtual times. `IncrementalMatcher` tracks every
/// node's [`PeerState`] so that each arriving proposal can be resolved on
/// the spot — [`try_connect`](Self::try_connect) succeeds exactly when the
/// target is still listening and free — while the model's defining
/// invariant holds at every instant: **a node is in at most one connection
/// at a time**.
///
/// There is no rebound phase here: a failed proposer returns to its
/// advertise/scan cycle and retries naturally in continuous time.
#[derive(Clone, Debug)]
pub struct IncrementalMatcher {
    states: Vec<PeerState>,
}

impl IncrementalMatcher {
    /// All `n` nodes start [`PeerState::Free`].
    pub fn new(n: usize) -> Self {
        IncrementalMatcher {
            states: vec![PeerState::Free; n],
        }
    }

    /// Current state of `node`.
    pub fn state(&self, node: NodeId) -> PeerState {
        self.states[node.index()]
    }

    /// `Free → Listening`: the node starts accepting proposals.
    pub fn listen(&mut self, node: NodeId) {
        debug_assert_eq!(self.states[node.index()], PeerState::Free);
        self.states[node.index()] = PeerState::Listening;
    }

    /// `Free → Proposing`: the node commits to a proposal in flight.
    pub fn propose(&mut self, node: NodeId) {
        debug_assert_eq!(self.states[node.index()], PeerState::Free);
        self.states[node.index()] = PeerState::Proposing;
    }

    /// `Listening | Proposing → Free`: a listener re-entering its scan
    /// cycle, or a proposer whose attempt failed.
    pub fn cancel(&mut self, node: NodeId) {
        debug_assert!(matches!(
            self.states[node.index()],
            PeerState::Listening | PeerState::Proposing
        ));
        self.states[node.index()] = PeerState::Free;
    }

    /// Resolve `initiator`'s arriving proposal against `acceptor`.
    ///
    /// Succeeds — moving both endpoints to [`PeerState::Connected`] — iff
    /// the acceptor is currently listening and the pair is an edge of
    /// `topology` *at arrival time*. The initiator must be
    /// [`PeerState::Proposing`]; on failure it stays so (callers typically
    /// [`cancel`](Self::cancel) it back into its scan cycle). A proposal
    /// across a non-edge simply fails: under a dynamic topology the edge
    /// may legitimately have vanished — endpoint died, link faded, node
    /// moved — while the proposal was in flight.
    pub fn try_connect<G: GraphView + ?Sized>(
        &mut self,
        topology: &G,
        initiator: NodeId,
        acceptor: NodeId,
    ) -> bool {
        debug_assert_eq!(self.states[initiator.index()], PeerState::Proposing);
        if !topology.are_neighbors(initiator, acceptor)
            || self.states[acceptor.index()] != PeerState::Listening
        {
            return false;
        }
        self.states[initiator.index()] = PeerState::Connected;
        self.states[acceptor.index()] = PeerState::Connected;
        true
    }

    /// `Connected → Free` for both endpoints: the transfer finished and
    /// the connection closed.
    pub fn release(&mut self, a: NodeId, b: NodeId) {
        debug_assert_eq!(self.states[a.index()], PeerState::Connected);
        debug_assert_eq!(self.states[b.index()], PeerState::Connected);
        self.states[a.index()] = PeerState::Free;
        self.states[b.index()] = PeerState::Free;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    #[test]
    fn proposal_to_listener_connects() {
        let topo = Topology::line(2);
        let intents = [Intent::Propose(NodeId(1)), Intent::Listen];
        let conns = resolve_connections(&topo, &intents, &mut Rng::new(1));
        assert_eq!(
            conns,
            vec![Connection {
                initiator: NodeId(0),
                acceptor: NodeId(1)
            }]
        );
    }

    #[test]
    fn proposal_to_non_listener_is_lost() {
        let topo = Topology::line(2);
        let intents = [Intent::Propose(NodeId(1)), Intent::Idle];
        assert!(resolve_connections(&topo, &intents, &mut Rng::new(1)).is_empty());
        let intents = [Intent::Propose(NodeId(1)), Intent::Propose(NodeId(0))];
        assert!(resolve_connections(&topo, &intents, &mut Rng::new(1)).is_empty());
    }

    #[test]
    fn listener_accepts_at_most_one() {
        // Both endpoints of a 3-line propose to the middle listener.
        let topo = Topology::line(3);
        let intents = [
            Intent::Propose(NodeId(1)),
            Intent::Listen,
            Intent::Propose(NodeId(1)),
        ];
        let conns = resolve_connections(&topo, &intents, &mut Rng::new(5));
        assert_eq!(conns.len(), 1);
        assert_eq!(conns[0].acceptor, NodeId(1));
    }

    #[test]
    fn rebound_rescues_failed_proposer() {
        // Nodes 0 and 2 both propose to listener 1; node 3 also listens.
        // Whoever loses node 1 must rebound onto node 3 if adjacent.
        let topo = Topology::complete(4);
        let intents = [
            Intent::Propose(NodeId(1)),
            Intent::Listen,
            Intent::Propose(NodeId(1)),
            Intent::Listen,
        ];
        let conns = resolve_connections(&topo, &intents, &mut Rng::new(8));
        assert_eq!(conns.len(), 2, "rebound phase should pair everyone");
    }

    #[test]
    fn incremental_connect_requires_a_free_listener() {
        let topo = Topology::line(3);
        let mut m = IncrementalMatcher::new(3);
        m.propose(NodeId(0));
        // Target idle: the proposal is lost.
        assert!(!m.try_connect(&topo, NodeId(0), NodeId(1)));
        assert_eq!(m.state(NodeId(0)), PeerState::Proposing);
        // Target listening: the connection forms.
        m.listen(NodeId(1));
        assert!(m.try_connect(&topo, NodeId(0), NodeId(1)));
        assert_eq!(m.state(NodeId(0)), PeerState::Connected);
        assert_eq!(m.state(NodeId(1)), PeerState::Connected);
    }

    #[test]
    fn incremental_listener_accepts_at_most_one() {
        // Both ends of a 3-line propose to the middle listener; only the
        // first arriving proposal may connect.
        let topo = Topology::line(3);
        let mut m = IncrementalMatcher::new(3);
        m.listen(NodeId(1));
        m.propose(NodeId(0));
        m.propose(NodeId(2));
        assert!(m.try_connect(&topo, NodeId(0), NodeId(1)));
        assert!(!m.try_connect(&topo, NodeId(2), NodeId(1)));
        // The loser cancels back into its scan cycle.
        m.cancel(NodeId(2));
        assert_eq!(m.state(NodeId(2)), PeerState::Free);
    }

    #[test]
    fn incremental_release_frees_both_endpoints() {
        let topo = Topology::line(2);
        let mut m = IncrementalMatcher::new(2);
        m.listen(NodeId(1));
        m.propose(NodeId(0));
        assert!(m.try_connect(&topo, NodeId(0), NodeId(1)));
        m.release(NodeId(0), NodeId(1));
        assert_eq!(m.state(NodeId(0)), PeerState::Free);
        assert_eq!(m.state(NodeId(1)), PeerState::Free);
        // Both endpoints can immediately engage again.
        m.listen(NodeId(0));
        m.propose(NodeId(1));
        assert!(m.try_connect(&topo, NodeId(1), NodeId(0)));
    }

    #[test]
    fn incremental_proposing_node_cannot_accept() {
        // Two nodes propose to each other: neither is listening, so both
        // arriving proposals fail — exactly the mutual-proposal loss the
        // batch resolver models.
        let topo = Topology::line(2);
        let mut m = IncrementalMatcher::new(2);
        m.propose(NodeId(0));
        m.propose(NodeId(1));
        assert!(!m.try_connect(&topo, NodeId(0), NodeId(1)));
        assert!(!m.try_connect(&topo, NodeId(1), NodeId(0)));
    }
}
