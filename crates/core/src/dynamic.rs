//! A mutable topology for networks that change under the protocol's feet.
//!
//! Smartphone peer-to-peer networks are unstable: devices power off and
//! return (churn), links flap with interference (fading), and devices move,
//! re-deriving which peers are in radio range (mobility). [`DynamicTopology`]
//! wraps a static [`Topology`] with the mutation operations those processes
//! need, while keeping the read path as cheap as the static graph:
//!
//! - an **alive mask** with `O(1)` [`is_alive`](DynamicTopology::is_alive)
//!   checks and a maintained alive count,
//! - a **faded-edge overlay** so interference can hide a base edge without
//!   forgetting it,
//! - a mutable **base adjacency** so mobility can rewire a node wholesale,
//! - and, the key piece, an **incrementally maintained active adjacency**:
//!   per node, the sorted list of neighbors that are alive and reachable
//!   over a non-faded edge. Reads ([`GraphView`]) are exactly as fast as on
//!   a static [`Topology`]; every mutation pays the incremental cost of
//!   updating the affected lists instead.
//!
//! # Memory layout
//!
//! Like the static [`Topology`], adjacency lives in **flat slabs**, not
//! per-node `Vec`s: each node owns a capacity slot in three parallel
//! arrays — `base` (sorted base neighbors), `faded` (per-base-edge fade
//! flags, replacing the old `HashSet<(u32, u32)>` probe with a binary
//! search in the node's own slot), and `active` (the sorted active
//! sublist). Churn and fading shift entries within a slot; a mobility
//! rewire that outgrows its slot relocates to the slab tail, and the slab
//! compacts itself once relocation waste dominates. Everything is index
//! arithmetic over three contiguous buffers — no hashing, no per-node
//! allocation on the mutation path, and deterministic iteration order
//! everywhere.
//!
//! Dead nodes read as isolated: their active neighbor list is empty and
//! they appear in no other node's list, so protocols — which only ever see
//! neighbor snapshots — naturally ignore them without any scheduler-side
//! special casing.

use crate::topology::GraphView;
use crate::{NodeId, Topology};

/// A [`Topology`] plus an alive-node set, a faded-edge overlay, and
/// incrementally maintained active-neighbor views, all in flat slab
/// storage. See the module docs.
#[derive(Clone, Debug)]
pub struct DynamicTopology {
    name: String,
    /// Slot start of node `u` in the slabs.
    start: Vec<u32>,
    /// Slot capacity of node `u`.
    cap: Vec<u32>,
    /// Base neighbors used in `u`'s slot (sorted prefix).
    base_len: Vec<u32>,
    /// Active neighbors used in `u`'s slot (sorted prefix).
    active_len: Vec<u32>,
    /// Slab of base adjacency, including edges of dead nodes and faded
    /// edges. Mobility rewires mutate this; churn and fading do not.
    base: Vec<NodeId>,
    /// Parallel to `base`: is this base edge currently faded out?
    /// (Maintained symmetrically on both endpoints' slots.)
    faded: Vec<bool>,
    /// Slab of the adjacency actually visible to protocols: both
    /// endpoints alive and the edge not faded.
    active: Vec<NodeId>,
    alive: Vec<bool>,
    alive_count: usize,
    /// Slab capacity stranded by slot relocations, pending compaction.
    waste: usize,
}

impl DynamicTopology {
    /// Start from a static topology: everyone alive, every edge active.
    pub fn new(topology: &Topology) -> Self {
        let n = topology.num_nodes();
        let start: Vec<u32> = topology.offsets[..n].to_vec();
        let degrees: Vec<u32> = (0..n)
            .map(|u| topology.offsets[u + 1] - topology.offsets[u])
            .collect();
        DynamicTopology {
            name: topology.name().to_string(),
            start,
            cap: degrees.clone(),
            base_len: degrees.clone(),
            active_len: degrees,
            base: topology.edges.clone(),
            faded: vec![false; topology.edges.len()],
            active: topology.edges.clone(),
            alive: vec![true; n],
            alive_count: n,
            waste: 0,
        }
    }

    /// Name of the underlying topology builder.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes, alive or not.
    pub fn num_nodes(&self) -> usize {
        self.alive.len()
    }

    /// Is `node` currently alive? `O(1)`.
    #[inline]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// The full alive mask, indexed by node id — what a sharded round
    /// loop hands its workers so they can skip dead nodes without
    /// touching the topology.
    #[inline]
    pub fn alive_mask(&self) -> &[bool] {
        &self.alive
    }

    /// How many nodes are currently alive.
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Sorted neighbors of `node` that are alive and reachable over a
    /// non-faded edge. Empty for a dead node.
    #[inline]
    pub fn active_neighbors(&self, node: NodeId) -> &[NodeId] {
        let u = node.index();
        let s = self.start[u] as usize;
        &self.active[s..s + self.active_len[u] as usize]
    }

    /// Number of currently active undirected edges.
    pub fn active_edge_count(&self) -> usize {
        self.active_len.iter().map(|&l| l as usize).sum::<usize>() / 2
    }

    fn base_slice(&self, u: usize) -> &[NodeId] {
        let s = self.start[u] as usize;
        &self.base[s..s + self.base_len[u] as usize]
    }

    /// Absolute slab index of base edge `u — v`, if present.
    fn base_pos(&self, u: usize, v: NodeId) -> Option<usize> {
        self.base_slice(u)
            .binary_search(&v)
            .ok()
            .map(|i| self.start[u] as usize + i)
    }

    /// Insert `v` into `u`'s sorted active prefix. No-op if present.
    fn active_insert(&mut self, u: usize, v: NodeId) {
        let s = self.start[u] as usize;
        let len = self.active_len[u] as usize;
        if let Err(i) = self.active[s..s + len].binary_search(&v) {
            debug_assert!(len < self.cap[u] as usize, "active exceeds slot");
            self.active.copy_within(s + i..s + len, s + i + 1);
            self.active[s + i] = v;
            self.active_len[u] += 1;
        }
    }

    /// Remove `v` from `u`'s sorted active prefix. No-op if absent.
    fn active_remove(&mut self, u: usize, v: NodeId) {
        let s = self.start[u] as usize;
        let len = self.active_len[u] as usize;
        if let Ok(i) = self.active[s..s + len].binary_search(&v) {
            self.active.copy_within(s + i + 1..s + len, s + i);
            self.active_len[u] -= 1;
        }
    }

    /// Insert `v` (un-faded) into `u`'s sorted base prefix, growing the
    /// slot if full. No-op if present.
    fn base_insert(&mut self, u: usize, v: NodeId) {
        if self.base_len[u] == self.cap[u] {
            self.grow_slot(u, self.base_len[u] as usize + 1);
        }
        let s = self.start[u] as usize;
        let len = self.base_len[u] as usize;
        if let Err(i) = self.base[s..s + len].binary_search(&v) {
            self.base.copy_within(s + i..s + len, s + i + 1);
            self.faded.copy_within(s + i..s + len, s + i + 1);
            self.base[s + i] = v;
            self.faded[s + i] = false;
            self.base_len[u] += 1;
        }
    }

    /// Remove `v` from `u`'s sorted base prefix (and its fade flag).
    /// No-op if absent.
    fn base_remove(&mut self, u: usize, v: NodeId) {
        let s = self.start[u] as usize;
        let len = self.base_len[u] as usize;
        if let Ok(i) = self.base[s..s + len].binary_search(&v) {
            self.base.copy_within(s + i + 1..s + len, s + i);
            self.faded.copy_within(s + i + 1..s + len, s + i);
            self.base_len[u] -= 1;
        }
    }

    /// Relocate `u`'s slot to the slab tail with capacity at least
    /// `need`, stranding the old capacity until the next compaction.
    fn grow_slot(&mut self, u: usize, need: usize) {
        let new_cap = need + need / 2 + 2;
        let old_s = self.start[u] as usize;
        let blen = self.base_len[u] as usize;
        let alen = self.active_len[u] as usize;
        let new_s = self.base.len();
        assert!(
            new_s + new_cap < u32::MAX as usize,
            "dynamic adjacency slab overflows u32 offsets"
        );
        self.base.resize(new_s + new_cap, NodeId(0));
        self.faded.resize(new_s + new_cap, false);
        self.active.resize(new_s + new_cap, NodeId(0));
        self.base.copy_within(old_s..old_s + blen, new_s);
        self.faded.copy_within(old_s..old_s + blen, new_s);
        self.active.copy_within(old_s..old_s + alen, new_s);
        self.waste += self.cap[u] as usize;
        self.start[u] = new_s as u32;
        self.cap[u] = new_cap as u32;
    }

    /// Rebuild the slabs compactly once relocation waste dominates the
    /// live data, leaving a little per-slot slack so the next few inserts
    /// do not immediately relocate again.
    fn maybe_compact(&mut self) {
        // Slot caps already exclude stranded slots (grow_slot swaps the
        // cap out as it adds the old one to waste), so their sum is the
        // live slab footprint.
        let live: usize = self.cap.iter().map(|&c| c as usize).sum();
        if self.waste < 256 || self.waste < live {
            return;
        }
        let n = self.num_nodes();
        let mut new_start = Vec::with_capacity(n);
        let mut new_cap = Vec::with_capacity(n);
        let mut total = 0usize;
        for u in 0..n {
            let blen = self.base_len[u] as usize;
            let cap = blen + blen / 4 + 2;
            new_start.push(total as u32);
            new_cap.push(cap as u32);
            total += cap;
        }
        let mut base = vec![NodeId(0); total];
        let mut faded = vec![false; total];
        let mut active = vec![NodeId(0); total];
        for (u, &ns) in new_start.iter().enumerate() {
            let (os, ns) = (self.start[u] as usize, ns as usize);
            let blen = self.base_len[u] as usize;
            let alen = self.active_len[u] as usize;
            base[ns..ns + blen].copy_from_slice(&self.base[os..os + blen]);
            faded[ns..ns + blen].copy_from_slice(&self.faded[os..os + blen]);
            active[ns..ns + alen].copy_from_slice(&self.active[os..os + alen]);
        }
        self.start = new_start;
        self.cap = new_cap;
        self.base = base;
        self.faded = faded;
        self.active = active;
        self.waste = 0;
    }

    /// Take `node` down. Its active neighbor list empties and it vanishes
    /// from every neighbor's list. Returns false if it was already dead.
    pub fn kill(&mut self, node: NodeId) -> bool {
        let ui = node.index();
        if !self.alive[ui] {
            return false;
        }
        self.alive[ui] = false;
        self.alive_count -= 1;
        // Peers' removals shift only *their* slots, never ours, so an
        // index walk over our (untouched) active prefix is safe.
        for k in 0..self.active_len[ui] as usize {
            let v = self.active[self.start[ui] as usize + k];
            self.active_remove(v.index(), node);
        }
        self.active_len[ui] = 0;
        true
    }

    /// Bring `node` back up. Its active edges are rebuilt from the base
    /// adjacency, filtered by the alive mask and the faded-edge overlay.
    /// Returns false if it was already alive.
    pub fn revive(&mut self, node: NodeId) -> bool {
        let ui = node.index();
        if self.alive[ui] {
            return false;
        }
        self.alive[ui] = true;
        self.alive_count += 1;
        let s = self.start[ui] as usize;
        let mut alen = 0usize;
        for k in 0..self.base_len[ui] as usize {
            let v = self.base[s + k];
            if self.alive[v.index()] && !self.faded[s + k] {
                // base is sorted, so the filtered active prefix is too.
                self.active[s + alen] = v;
                alen += 1;
                self.active_insert(v.index(), node);
            }
        }
        self.active_len[ui] = alen as u32;
        true
    }

    /// Fade the base edge `u — v` out (interference). Returns false if the
    /// edge does not exist in the base graph or is already faded.
    pub fn fade_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let Some(iu) = self.base_pos(u.index(), v) else {
            return false;
        };
        if self.faded[iu] {
            return false;
        }
        let iv = self
            .base_pos(v.index(), u)
            .expect("base adjacency must be symmetric");
        self.faded[iu] = true;
        self.faded[iv] = true;
        if self.alive[u.index()] && self.alive[v.index()] {
            self.active_remove(u.index(), v);
            self.active_remove(v.index(), u);
        }
        true
    }

    /// Restore a previously faded edge. Returns false if it was not faded.
    pub fn restore_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let Some(iu) = self.base_pos(u.index(), v) else {
            return false;
        };
        if !self.faded[iu] {
            return false;
        }
        let iv = self
            .base_pos(v.index(), u)
            .expect("base adjacency must be symmetric");
        self.faded[iu] = false;
        self.faded[iv] = false;
        if self.alive[u.index()] && self.alive[v.index()] {
            self.active_insert(u.index(), v);
            self.active_insert(v.index(), u);
        }
        true
    }

    /// Replace `node`'s base adjacency wholesale (mobility: the node moved
    /// and its radio range now covers a different peer set). Self-loops,
    /// duplicates, and out-of-range ids in `new_neighbors` are dropped.
    /// Fade state of the node's former edges is discarded. Works on dead
    /// nodes too — the new edges activate when the node revives.
    pub fn rewire(&mut self, node: NodeId, new_neighbors: &[NodeId]) {
        let ui = node.index();
        // Detach from the old neighborhood (their slots shift; ours is
        // only read).
        for k in 0..self.base_len[ui] as usize {
            let v = self.base[self.start[ui] as usize + k];
            self.base_remove(v.index(), node);
            self.active_remove(v.index(), node);
        }
        self.base_len[ui] = 0;
        self.active_len[ui] = 0;

        let mut fresh: Vec<NodeId> = new_neighbors
            .iter()
            .copied()
            .filter(|&v| v != node && v.index() < self.alive.len())
            .collect();
        fresh.sort_unstable();
        fresh.dedup();
        if fresh.len() > self.cap[ui] as usize {
            self.grow_slot(ui, fresh.len());
        }
        let s = self.start[ui] as usize;
        for (k, &v) in fresh.iter().enumerate() {
            self.base[s + k] = v;
            self.faded[s + k] = false;
        }
        self.base_len[ui] = fresh.len() as u32;

        let mut alen = 0usize;
        for &v in &fresh {
            self.base_insert(v.index(), node);
            if self.alive[ui] && self.alive[v.index()] {
                // Our slot cannot relocate here (only v's can), and fresh
                // is sorted, so pushing keeps the active prefix ordered.
                let s = self.start[ui] as usize;
                self.active[s + alen] = v;
                alen += 1;
                self.active_insert(v.index(), node);
            }
        }
        self.active_len[ui] = alen as u32;
        self.maybe_compact();
    }
}

impl GraphView for DynamicTopology {
    fn num_nodes(&self) -> usize {
        DynamicTopology::num_nodes(self)
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.active_neighbors(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<NodeId> {
        raw.iter().map(|&v| NodeId(v)).collect()
    }

    #[test]
    fn starts_identical_to_the_static_graph() {
        let topo = Topology::ring(6);
        let dt = DynamicTopology::new(&topo);
        assert_eq!(dt.alive_count(), 6);
        assert_eq!(dt.active_edge_count(), topo.num_edges());
        for u in 0..6u32 {
            assert_eq!(dt.active_neighbors(NodeId(u)), topo.neighbors(NodeId(u)));
        }
    }

    #[test]
    fn kill_isolates_and_revive_restores() {
        let topo = Topology::ring(5);
        let mut dt = DynamicTopology::new(&topo);
        assert!(dt.kill(NodeId(1)));
        assert!(!dt.kill(NodeId(1)), "double kill is a no-op");
        assert!(!dt.is_alive(NodeId(1)));
        assert_eq!(dt.alive_count(), 4);
        assert!(dt.active_neighbors(NodeId(1)).is_empty());
        assert_eq!(dt.active_neighbors(NodeId(0)), ids(&[4]));
        assert_eq!(dt.active_neighbors(NodeId(2)), ids(&[3]));
        assert!(!dt.are_neighbors(NodeId(0), NodeId(1)));

        assert!(dt.revive(NodeId(1)));
        assert!(!dt.revive(NodeId(1)), "double revive is a no-op");
        assert_eq!(dt.alive_count(), 5);
        assert_eq!(dt.active_neighbors(NodeId(1)), ids(&[0, 2]));
        assert_eq!(dt.active_neighbors(NodeId(0)), ids(&[1, 4]));
    }

    #[test]
    fn revive_respects_other_dead_nodes_and_fades() {
        let topo = Topology::complete(4);
        let mut dt = DynamicTopology::new(&topo);
        dt.kill(NodeId(2));
        dt.fade_edge(NodeId(0), NodeId(3));
        dt.kill(NodeId(0));
        dt.revive(NodeId(0));
        // 2 is still dead; 0—3 is still faded.
        assert_eq!(dt.active_neighbors(NodeId(0)), ids(&[1]));
        assert_eq!(dt.active_neighbors(NodeId(3)), ids(&[1]));
    }

    #[test]
    fn fade_hides_and_restore_reveals() {
        let topo = Topology::ring(4);
        let mut dt = DynamicTopology::new(&topo);
        assert!(dt.fade_edge(NodeId(0), NodeId(1)));
        assert!(!dt.fade_edge(NodeId(1), NodeId(0)), "already faded");
        assert!(!dt.fade_edge(NodeId(0), NodeId(2)), "not a base edge");
        assert!(!dt.are_neighbors(NodeId(0), NodeId(1)));
        assert_eq!(dt.active_edge_count(), 3);

        assert!(dt.restore_edge(NodeId(1), NodeId(0)));
        assert!(!dt.restore_edge(NodeId(1), NodeId(0)), "not faded now");
        assert!(dt.are_neighbors(NodeId(0), NodeId(1)));
        assert_eq!(dt.active_edge_count(), 4);
    }

    #[test]
    fn faded_edge_stays_hidden_across_churn() {
        let topo = Topology::ring(4);
        let mut dt = DynamicTopology::new(&topo);
        dt.fade_edge(NodeId(0), NodeId(1));
        dt.kill(NodeId(0));
        dt.revive(NodeId(0));
        assert!(
            !dt.are_neighbors(NodeId(0), NodeId(1)),
            "fade survives churn"
        );
        assert_eq!(dt.active_neighbors(NodeId(0)), ids(&[3]));
    }

    #[test]
    fn rewire_replaces_edges_symmetrically() {
        let topo = Topology::line(5); // 0-1-2-3-4
        let mut dt = DynamicTopology::new(&topo);
        // Node 0 "moves" next to 3 and 4.
        dt.rewire(NodeId(0), &ids(&[3, 4, 4, 0])); // dup + self-loop dropped
        assert_eq!(dt.active_neighbors(NodeId(0)), ids(&[3, 4]));
        assert_eq!(dt.active_neighbors(NodeId(1)), ids(&[2]), "old edge gone");
        assert_eq!(dt.active_neighbors(NodeId(3)), ids(&[0, 2, 4]));
        assert_eq!(dt.active_neighbors(NodeId(4)), ids(&[0, 3]));
    }

    #[test]
    fn rewire_of_dead_node_activates_on_revive() {
        let topo = Topology::line(4);
        let mut dt = DynamicTopology::new(&topo);
        dt.kill(NodeId(0));
        dt.rewire(NodeId(0), &ids(&[2, 3]));
        assert!(dt
            .active_neighbors(NodeId(2))
            .binary_search(&NodeId(0))
            .is_err());
        dt.revive(NodeId(0));
        assert_eq!(dt.active_neighbors(NodeId(0)), ids(&[2, 3]));
        assert_eq!(dt.active_neighbors(NodeId(2)), ids(&[0, 1, 3]));
    }

    #[test]
    fn rewire_discards_stale_fade_state() {
        let topo = Topology::line(3);
        let mut dt = DynamicTopology::new(&topo);
        dt.fade_edge(NodeId(0), NodeId(1));
        // 0 moves away and back: the 0—1 edge returns un-faded.
        dt.rewire(NodeId(0), &[]);
        dt.rewire(NodeId(0), &ids(&[1]));
        assert!(dt.are_neighbors(NodeId(0), NodeId(1)));
    }

    /// Brute-force model check: after an arbitrary deterministic mutation
    /// storm, every active view must equal "base neighbors that are
    /// mutually alive over a non-faded edge", and slot relocations plus
    /// compaction must never corrupt a slab.
    #[test]
    fn slab_survives_a_mutation_storm() {
        use crate::Rng;
        let n = 24usize;
        let topo = Topology::grid(n);
        let mut dt = DynamicTopology::new(&topo);
        // Reference model: simple sets.
        let mut base: Vec<std::collections::BTreeSet<u32>> = (0..n)
            .map(|u| {
                topo.neighbors(NodeId(u as u32))
                    .iter()
                    .map(|v| v.0)
                    .collect()
            })
            .collect();
        let mut faded: std::collections::BTreeSet<(u32, u32)> = Default::default();
        let mut alive = vec![true; n];
        let norm = |a: u32, b: u32| if a < b { (a, b) } else { (b, a) };

        let mut rng = Rng::new(2024);
        for _ in 0..3000 {
            let u = rng.gen_range(n) as u32;
            let v = rng.gen_range(n) as u32;
            match rng.gen_range(5) {
                0 => {
                    dt.kill(NodeId(u));
                    alive[u as usize] = false;
                }
                1 => {
                    dt.revive(NodeId(u));
                    alive[u as usize] = true;
                }
                2 => {
                    if dt.fade_edge(NodeId(u), NodeId(v)) {
                        faded.insert(norm(u, v));
                    }
                }
                3 => {
                    if dt.restore_edge(NodeId(u), NodeId(v)) {
                        faded.remove(&norm(u, v));
                    }
                }
                _ => {
                    let deg = 1 + rng.gen_range(6);
                    let fresh: Vec<NodeId> =
                        (0..deg).map(|_| NodeId(rng.gen_range(n) as u32)).collect();
                    dt.rewire(NodeId(u), &fresh);
                    for &w in &base[u as usize].clone() {
                        base[w as usize].remove(&u);
                        faded.remove(&norm(u, w));
                    }
                    base[u as usize].clear();
                    for f in fresh {
                        if f.0 != u {
                            base[u as usize].insert(f.0);
                            base[f.index()].insert(u);
                        }
                    }
                }
            }
            // Spot-check a few nodes every step, all nodes occasionally.
            for w in 0..n as u32 {
                let expect: Vec<NodeId> = if !alive[w as usize] {
                    Vec::new()
                } else {
                    base[w as usize]
                        .iter()
                        .filter(|&&x| alive[x as usize] && !faded.contains(&norm(w, x)))
                        .map(|&x| NodeId(x))
                        .collect()
                };
                assert_eq!(dt.active_neighbors(NodeId(w)), expect, "node {w}");
            }
        }
    }
}
