//! A mutable topology for networks that change under the protocol's feet.
//!
//! Smartphone peer-to-peer networks are unstable: devices power off and
//! return (churn), links flap with interference (fading), and devices move,
//! re-deriving which peers are in radio range (mobility). [`DynamicTopology`]
//! wraps a static [`Topology`] with the mutation operations those processes
//! need, while keeping the read path as cheap as the static graph:
//!
//! - an **alive mask** with `O(1)` [`is_alive`](DynamicTopology::is_alive)
//!   checks and a maintained alive count,
//! - a **faded-edge overlay** so interference can hide a base edge without
//!   forgetting it,
//! - a mutable **base adjacency** so mobility can rewire a node wholesale,
//! - and, the key piece, an **incrementally maintained active adjacency**:
//!   per node, the sorted list of neighbors that are alive and reachable
//!   over a non-faded edge. Reads ([`GraphView`]) are exactly as fast as on
//!   a static [`Topology`]; every mutation pays the incremental cost of
//!   updating the affected lists instead.
//!
//! Dead nodes read as isolated: their active neighbor list is empty and
//! they appear in no other node's list, so protocols — which only ever see
//! neighbor snapshots — naturally ignore them without any scheduler-side
//! special casing.

use crate::topology::GraphView;
use crate::{NodeId, Topology};

use std::collections::HashSet;

/// A [`Topology`] plus an alive-node set, a faded-edge overlay, and
/// incrementally maintained active-neighbor views. See the module docs.
#[derive(Clone, Debug)]
pub struct DynamicTopology {
    name: String,
    /// The full adjacency, including edges of dead nodes and faded edges.
    /// Mobility rewires mutate this; churn and fading do not.
    base: Vec<Vec<NodeId>>,
    /// The adjacency actually visible to protocols: both endpoints alive
    /// and the edge not faded. Sorted, maintained incrementally.
    active: Vec<Vec<NodeId>>,
    alive: Vec<bool>,
    alive_count: usize,
    /// Currently faded base edges, normalized to `(min, max)`. Never
    /// iterated (ordering would be nondeterministic) — membership only.
    faded: HashSet<(u32, u32)>,
}

fn norm(u: NodeId, v: NodeId) -> (u32, u32) {
    if u.0 <= v.0 {
        (u.0, v.0)
    } else {
        (v.0, u.0)
    }
}

fn insert_sorted(list: &mut Vec<NodeId>, v: NodeId) {
    if let Err(i) = list.binary_search(&v) {
        list.insert(i, v);
    }
}

fn remove_sorted(list: &mut Vec<NodeId>, v: NodeId) {
    if let Ok(i) = list.binary_search(&v) {
        list.remove(i);
    }
}

impl DynamicTopology {
    /// Start from a static topology: everyone alive, every edge active.
    pub fn new(topology: &Topology) -> Self {
        let n = topology.num_nodes();
        let base: Vec<Vec<NodeId>> = (0..n)
            .map(|u| topology.neighbors(NodeId(u as u32)).to_vec())
            .collect();
        DynamicTopology {
            name: topology.name().to_string(),
            active: base.clone(),
            base,
            alive: vec![true; n],
            alive_count: n,
            faded: HashSet::new(),
        }
    }

    /// Name of the underlying topology builder.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes, alive or not.
    pub fn num_nodes(&self) -> usize {
        self.alive.len()
    }

    /// Is `node` currently alive? `O(1)`.
    #[inline]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// How many nodes are currently alive.
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Sorted neighbors of `node` that are alive and reachable over a
    /// non-faded edge. Empty for a dead node.
    pub fn active_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.active[node.index()]
    }

    /// Number of currently active undirected edges.
    pub fn active_edge_count(&self) -> usize {
        self.active.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Take `node` down. Its active neighbor list empties and it vanishes
    /// from every neighbor's list. Returns false if it was already dead.
    pub fn kill(&mut self, node: NodeId) -> bool {
        let ui = node.index();
        if !self.alive[ui] {
            return false;
        }
        self.alive[ui] = false;
        self.alive_count -= 1;
        let mine = std::mem::take(&mut self.active[ui]);
        for v in &mine {
            remove_sorted(&mut self.active[v.index()], node);
        }
        true
    }

    /// Bring `node` back up. Its active edges are rebuilt from the base
    /// adjacency, filtered by the alive mask and the faded-edge overlay.
    /// Returns false if it was already alive.
    pub fn revive(&mut self, node: NodeId) -> bool {
        let ui = node.index();
        if self.alive[ui] {
            return false;
        }
        self.alive[ui] = true;
        self.alive_count += 1;
        let mut mine = Vec::with_capacity(self.base[ui].len());
        for i in 0..self.base[ui].len() {
            let v = self.base[ui][i];
            if self.alive[v.index()] && !self.faded.contains(&norm(node, v)) {
                mine.push(v);
                insert_sorted(&mut self.active[v.index()], node);
            }
        }
        self.active[ui] = mine; // base is sorted, so the filtered list is too
        true
    }

    /// Fade the base edge `u — v` out (interference). Returns false if the
    /// edge does not exist in the base graph or is already faded.
    pub fn fade_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if self.base[u.index()].binary_search(&v).is_err() || !self.faded.insert(norm(u, v)) {
            return false;
        }
        if self.alive[u.index()] && self.alive[v.index()] {
            remove_sorted(&mut self.active[u.index()], v);
            remove_sorted(&mut self.active[v.index()], u);
        }
        true
    }

    /// Restore a previously faded edge. Returns false if it was not faded.
    pub fn restore_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.faded.remove(&norm(u, v)) {
            return false;
        }
        if self.alive[u.index()] && self.alive[v.index()] {
            insert_sorted(&mut self.active[u.index()], v);
            insert_sorted(&mut self.active[v.index()], u);
        }
        true
    }

    /// Replace `node`'s base adjacency wholesale (mobility: the node moved
    /// and its radio range now covers a different peer set). Self-loops,
    /// duplicates, and out-of-range ids in `new_neighbors` are dropped.
    /// Fade state of the node's former edges is discarded. Works on dead
    /// nodes too — the new edges activate when the node revives.
    pub fn rewire(&mut self, node: NodeId, new_neighbors: &[NodeId]) {
        let ui = node.index();
        let old = std::mem::take(&mut self.base[ui]);
        for &v in &old {
            remove_sorted(&mut self.base[v.index()], node);
            remove_sorted(&mut self.active[v.index()], node);
            self.faded.remove(&norm(node, v));
        }
        self.active[ui].clear();

        let mut fresh: Vec<NodeId> = new_neighbors
            .iter()
            .copied()
            .filter(|&v| v != node && v.index() < self.alive.len())
            .collect();
        fresh.sort_unstable();
        fresh.dedup();
        for &v in &fresh {
            insert_sorted(&mut self.base[v.index()], node);
            if self.alive[ui] && self.alive[v.index()] {
                insert_sorted(&mut self.active[v.index()], node);
                self.active[ui].push(v); // fresh is sorted: push keeps order
            }
        }
        self.base[ui] = fresh;
    }
}

impl GraphView for DynamicTopology {
    fn num_nodes(&self) -> usize {
        DynamicTopology::num_nodes(self)
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.active_neighbors(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<NodeId> {
        raw.iter().map(|&v| NodeId(v)).collect()
    }

    #[test]
    fn starts_identical_to_the_static_graph() {
        let topo = Topology::ring(6);
        let dt = DynamicTopology::new(&topo);
        assert_eq!(dt.alive_count(), 6);
        assert_eq!(dt.active_edge_count(), topo.num_edges());
        for u in 0..6u32 {
            assert_eq!(dt.active_neighbors(NodeId(u)), topo.neighbors(NodeId(u)));
        }
    }

    #[test]
    fn kill_isolates_and_revive_restores() {
        let topo = Topology::ring(5);
        let mut dt = DynamicTopology::new(&topo);
        assert!(dt.kill(NodeId(1)));
        assert!(!dt.kill(NodeId(1)), "double kill is a no-op");
        assert!(!dt.is_alive(NodeId(1)));
        assert_eq!(dt.alive_count(), 4);
        assert!(dt.active_neighbors(NodeId(1)).is_empty());
        assert_eq!(dt.active_neighbors(NodeId(0)), ids(&[4]));
        assert_eq!(dt.active_neighbors(NodeId(2)), ids(&[3]));
        assert!(!dt.are_neighbors(NodeId(0), NodeId(1)));

        assert!(dt.revive(NodeId(1)));
        assert!(!dt.revive(NodeId(1)), "double revive is a no-op");
        assert_eq!(dt.alive_count(), 5);
        assert_eq!(dt.active_neighbors(NodeId(1)), ids(&[0, 2]));
        assert_eq!(dt.active_neighbors(NodeId(0)), ids(&[1, 4]));
    }

    #[test]
    fn revive_respects_other_dead_nodes_and_fades() {
        let topo = Topology::complete(4);
        let mut dt = DynamicTopology::new(&topo);
        dt.kill(NodeId(2));
        dt.fade_edge(NodeId(0), NodeId(3));
        dt.kill(NodeId(0));
        dt.revive(NodeId(0));
        // 2 is still dead; 0—3 is still faded.
        assert_eq!(dt.active_neighbors(NodeId(0)), ids(&[1]));
        assert_eq!(dt.active_neighbors(NodeId(3)), ids(&[1]));
    }

    #[test]
    fn fade_hides_and_restore_reveals() {
        let topo = Topology::ring(4);
        let mut dt = DynamicTopology::new(&topo);
        assert!(dt.fade_edge(NodeId(0), NodeId(1)));
        assert!(!dt.fade_edge(NodeId(1), NodeId(0)), "already faded");
        assert!(!dt.fade_edge(NodeId(0), NodeId(2)), "not a base edge");
        assert!(!dt.are_neighbors(NodeId(0), NodeId(1)));
        assert_eq!(dt.active_edge_count(), 3);

        assert!(dt.restore_edge(NodeId(1), NodeId(0)));
        assert!(!dt.restore_edge(NodeId(1), NodeId(0)), "not faded now");
        assert!(dt.are_neighbors(NodeId(0), NodeId(1)));
        assert_eq!(dt.active_edge_count(), 4);
    }

    #[test]
    fn faded_edge_stays_hidden_across_churn() {
        let topo = Topology::ring(4);
        let mut dt = DynamicTopology::new(&topo);
        dt.fade_edge(NodeId(0), NodeId(1));
        dt.kill(NodeId(0));
        dt.revive(NodeId(0));
        assert!(
            !dt.are_neighbors(NodeId(0), NodeId(1)),
            "fade survives churn"
        );
        assert_eq!(dt.active_neighbors(NodeId(0)), ids(&[3]));
    }

    #[test]
    fn rewire_replaces_edges_symmetrically() {
        let topo = Topology::line(5); // 0-1-2-3-4
        let mut dt = DynamicTopology::new(&topo);
        // Node 0 "moves" next to 3 and 4.
        dt.rewire(NodeId(0), &ids(&[3, 4, 4, 0])); // dup + self-loop dropped
        assert_eq!(dt.active_neighbors(NodeId(0)), ids(&[3, 4]));
        assert_eq!(dt.active_neighbors(NodeId(1)), ids(&[2]), "old edge gone");
        assert_eq!(dt.active_neighbors(NodeId(3)), ids(&[0, 2, 4]));
        assert_eq!(dt.active_neighbors(NodeId(4)), ids(&[0, 3]));
    }

    #[test]
    fn rewire_of_dead_node_activates_on_revive() {
        let topo = Topology::line(4);
        let mut dt = DynamicTopology::new(&topo);
        dt.kill(NodeId(0));
        dt.rewire(NodeId(0), &ids(&[2, 3]));
        assert!(dt
            .active_neighbors(NodeId(2))
            .binary_search(&NodeId(0))
            .is_err());
        dt.revive(NodeId(0));
        assert_eq!(dt.active_neighbors(NodeId(0)), ids(&[2, 3]));
        assert_eq!(dt.active_neighbors(NodeId(2)), ids(&[0, 1, 3]));
    }

    #[test]
    fn rewire_discards_stale_fade_state() {
        let topo = Topology::line(3);
        let mut dt = DynamicTopology::new(&topo);
        dt.fade_edge(NodeId(0), NodeId(1));
        // 0 moves away and back: the 0—1 edge returns un-faded.
        dt.rewire(NodeId(0), &[]);
        dt.rewire(NodeId(0), &ids(&[1]));
        assert!(dt.are_neighbors(NodeId(0), NodeId(1)));
    }
}
