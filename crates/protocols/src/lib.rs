//! Pluggable gossip protocols for the mobile telephone model.
//!
//! A protocol decides, each round and for each node, (a) what to put in the
//! node's advertisement tag and (b) whether to propose a connection, listen
//! for one, or idle — using only information the model makes locally
//! visible: the node's own message set and its neighbors' advertisements.
//!
//! Two members of the family analyzed in Newport's PODC 2017 paper (and the
//! follow-up random gossip processes work) are provided:
//!
//! - [`UniformGossip`]: blind uniform random spread — ignore advertisements,
//!   flip a coin for role, propose to a uniformly random neighbor.
//! - [`AdvertGossip`]: productive, advertisement-guided gossip — advertise a
//!   fingerprint of the held message set, and only pursue connections that
//!   can move a new message in at least one direction.

mod advert;
mod uniform;

pub use advert::AdvertGossip;
pub use uniform::UniformGossip;

use gossip_core::{Advertisement, Intent, MsgView, NodeId, Rng};

/// Everything a node is allowed to see when committing a connection
/// intent: its own state plus a snapshot of its neighborhood — the most
/// recent advertisement scanned from each neighbor.
///
/// The context is scheduler-agnostic. Under the synchronous engine the
/// snapshot is exactly "this round's advertisements" and `salt` is the
/// shared round number; under an event-driven scheduler the snapshot holds
/// whatever each neighbor last published (possibly stale) and `salt` is a
/// coarse virtual-time epoch. Protocols observe only the snapshot, so the
/// same implementation runs unmodified under both schedulers.
pub struct NodeCtx<'a> {
    pub id: NodeId,
    /// Tag-salting value shared (at least approximately) across nodes:
    /// the round number under the synchronous scheduler, the virtual-time
    /// epoch under an asynchronous one. Protocols hashing their tags mix
    /// this in so stale hash collisions cannot persist.
    pub salt: u64,
    /// The node's own message set — a borrowed view, so the engine can
    /// back it with a row of its struct-of-arrays state or a standalone
    /// [`gossip_core::MessageSet`] interchangeably.
    pub messages: MsgView<'a>,
    /// Neighbors in the topology, parallel to `neighbor_ads`.
    pub neighbors: &'a [NodeId],
    /// The advertisement most recently scanned from each neighbor.
    pub neighbor_ads: &'a [Advertisement],
}

/// A gossip protocol in the mobile telephone model. Implementations must be
/// deterministic given the RNG: all randomness flows through `rng`.
///
/// `Sync` is a supertrait: the synchronous engine shards its advertise and
/// decide phases across worker threads that share one `&dyn
/// GossipProtocol`, so implementations must be immutable (or internally
/// synchronized) per-call — which stateless protocols trivially are.
pub trait GossipProtocol: Sync {
    /// Stable protocol name, used in CLI selection and reporting.
    fn name(&self) -> &'static str;

    /// The tag this node broadcasts when it (re)advertises. `salt` is the
    /// same value later visible as [`NodeCtx::salt`] to scanners of this
    /// tag's generation.
    fn advertise(&self, messages: MsgView<'_>, salt: u64) -> Advertisement;

    /// The node's connection intent, after scanning neighbor tags.
    fn decide(&self, ctx: &NodeCtx<'_>, rng: &mut Rng) -> Intent;
}

/// Construct a protocol by its CLI name.
pub fn by_name(name: &str) -> Option<Box<dyn GossipProtocol>> {
    match name {
        "uniform" => Some(Box::new(UniformGossip)),
        "advert" => Some(Box::new(AdvertGossip)),
        _ => None,
    }
}

/// Names accepted by [`by_name`].
pub const PROTOCOL_NAMES: &[&str] = &["uniform", "advert"];
