//! Productive, advertisement-guided gossip.

use crate::{GossipProtocol, NodeCtx};
use gossip_core::{Advertisement, Intent, MsgView, Rng};

/// Advertisement-guided gossip from the paper family: each node advertises a
/// fingerprint of its message set, so neighbors can tell *before* spending
/// their one connection whether a transfer would be productive.
///
/// With ≤64 messages the tag is the exact membership mask, and role
/// selection reads set differences straight off the scanned tags:
///
/// - No neighbor's tag differs from ours → **idle**; every possible
///   connection would be wasted.
/// - Some neighbor strictly lacks messages we hold (and no neighbor can
///   teach us anything) → **propose** to a random such neighbor; we are a
///   local frontier source and proposing is guaranteed productive.
/// - Some neighbor strictly exceeds us (and we cannot teach anyone) →
///   **listen**; the frontier will come to us.
/// - Mixed neighborhood → fair coin between proposing to a random
///   productive neighbor and listening, which avoids the livelock of two
///   mutually-productive nodes both insisting on the same role.
///
/// Larger universes hash the set down to a 64-bit tag, salted with the
/// round number. Hashed bits carry no subset structure, so only tag
/// (in)equality is used: differing tags mark a neighbor as (almost surely)
/// productive and roles are chosen by coin flip. The per-round salt is what
/// keeps this live: if two *different* sets happen to collide, they re-hash
/// under a fresh salt next round, so a collision can stall progress for at
/// most a round at a time rather than forever.
pub struct AdvertGossip;

impl AdvertGossip {
    /// Exact-tag path (universe ≤ 64): tags are membership masks.
    fn decide_exact(&self, ctx: &NodeCtx<'_>, rng: &mut Rng) -> Intent {
        let mine = ctx.messages.fingerprint();
        // One pass, no allocation: reservoir-pick a random neighbor from
        // the pool we might propose to (anyone we can teach), and track
        // whether a strict teacher or a mixed neighbor exists.
        let mut pool_count = 0usize;
        let mut pool_pick = 0usize;
        let mut mixed_exists = false;
        let mut teacher_exists = false;
        for (i, ad) in ctx.neighbor_ads.iter().enumerate() {
            let theirs = ad.0;
            if theirs == mine {
                continue;
            }
            let we_offer = mine & !theirs != 0;
            let they_offer = theirs & !mine != 0;
            if we_offer {
                pool_count += 1;
                if rng.gen_range(pool_count) == 0 {
                    pool_pick = i;
                }
                mixed_exists |= they_offer;
            } else if they_offer {
                teacher_exists = true;
            }
        }

        if pool_count == 0 {
            if teacher_exists {
                Intent::Listen
            } else {
                Intent::Idle
            }
        } else if !teacher_exists && !mixed_exists {
            // Pure teacher: proposing is guaranteed productive.
            Intent::Propose(ctx.neighbors[pool_pick])
        } else if rng.gen_bool() {
            Intent::Propose(ctx.neighbors[pool_pick])
        } else {
            Intent::Listen
        }
    }

    /// Hashed-tag path (universe > 64): only tag (in)equality is
    /// meaningful, so any differing neighbor is a candidate and roles are
    /// symmetric coin flips.
    fn decide_hashed(&self, ctx: &NodeCtx<'_>, rng: &mut Rng) -> Intent {
        let mine = ctx.messages.fingerprint_salted(ctx.salt);
        let mut diff_count = 0usize;
        let mut pick = 0usize;
        for (i, ad) in ctx.neighbor_ads.iter().enumerate() {
            if ad.0 != mine {
                diff_count += 1;
                if rng.gen_range(diff_count) == 0 {
                    pick = i;
                }
            }
        }
        if diff_count == 0 {
            Intent::Idle
        } else if rng.gen_bool() {
            Intent::Propose(ctx.neighbors[pick])
        } else {
            Intent::Listen
        }
    }
}

impl GossipProtocol for AdvertGossip {
    fn name(&self) -> &'static str {
        "advert"
    }

    fn advertise(&self, messages: MsgView<'_>, salt: u64) -> Advertisement {
        Advertisement(messages.fingerprint_salted(salt))
    }

    fn decide(&self, ctx: &NodeCtx<'_>, rng: &mut Rng) -> Intent {
        if ctx.messages.universe() <= 64 {
            self.decide_exact(ctx, rng)
        } else {
            self.decide_hashed(ctx, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_core::{MessageSet, NodeId};

    fn set_with(universe: usize, ids: &[usize]) -> MessageSet {
        let mut s = MessageSet::new(universe);
        for &i in ids {
            s.insert(i);
        }
        s
    }

    fn ctx<'a>(
        messages: &'a MessageSet,
        neighbors: &'a [NodeId],
        ads: &'a [Advertisement],
        salt: u64,
    ) -> NodeCtx<'a> {
        NodeCtx {
            id: NodeId(0),
            salt,
            messages: messages.view(),
            neighbors,
            neighbor_ads: ads,
        }
    }

    #[test]
    fn idles_when_no_neighbor_differs() {
        let messages = set_with(4, &[0]);
        let ads = [Advertisement(0b1), Advertisement(0b1)];
        let neighbors = [NodeId(1), NodeId(2)];
        let ctx = ctx(&messages, &neighbors, &ads, 1);
        for seed in 0..20 {
            assert_eq!(AdvertGossip.decide(&ctx, &mut Rng::new(seed)), Intent::Idle);
        }
    }

    #[test]
    fn frontier_source_proposes_to_uninformed() {
        // We hold {0}; neighbor 1 holds nothing, neighbor 2 matches us.
        let messages = set_with(4, &[0]);
        let ads = [Advertisement(0), Advertisement(0b1)];
        let neighbors = [NodeId(1), NodeId(2)];
        let ctx = ctx(&messages, &neighbors, &ads, 1);
        for seed in 0..20 {
            assert_eq!(
                AdvertGossip.decide(&ctx, &mut Rng::new(seed)),
                Intent::Propose(NodeId(1)),
                "pure teacher must deterministically propose to the one \
                 teachable neighbor"
            );
        }
    }

    #[test]
    fn uninformed_node_next_to_source_listens() {
        let messages = MessageSet::new(4);
        let ads = [Advertisement(0b1)];
        let neighbors = [NodeId(1)];
        let ctx = ctx(&messages, &neighbors, &ads, 1);
        for seed in 0..20 {
            assert_eq!(
                AdvertGossip.decide(&ctx, &mut Rng::new(seed)),
                Intent::Listen
            );
        }
    }

    #[test]
    fn mixed_neighborhood_takes_both_roles() {
        // We hold {0}; neighbor holds {1}: both sides offer something.
        let messages = set_with(4, &[0]);
        let ads = [Advertisement(0b10)];
        let neighbors = [NodeId(1)];
        let ctx = ctx(&messages, &neighbors, &ads, 1);
        let mut rng = Rng::new(13);
        let mut proposed = false;
        let mut listened = false;
        for _ in 0..100 {
            match AdvertGossip.decide(&ctx, &mut rng) {
                Intent::Propose(v) => {
                    assert_eq!(v, NodeId(1));
                    proposed = true;
                }
                Intent::Listen => listened = true,
                Intent::Idle => panic!("productive neighborhood must not idle"),
            }
        }
        assert!(proposed && listened);
    }

    #[test]
    fn large_universe_tags_change_every_round() {
        // The anti-livelock property: on >64-message universes the same set
        // advertises a different tag each round, so a tag collision between
        // two different sets cannot persist.
        let messages = set_with(128, &[4]);
        assert_ne!(
            AdvertGossip.advertise(messages.view(), 1),
            AdvertGossip.advertise(messages.view(), 2)
        );
    }

    #[test]
    fn large_universe_differing_tags_are_pursued() {
        let messages = set_with(128, &[4]);
        let other = set_with(128, &[67]);
        let round = 3;
        let ads = [AdvertGossip.advertise(other.view(), round)];
        let neighbors = [NodeId(1)];
        let ctx = ctx(&messages, &neighbors, &ads, round);
        let mut rng = Rng::new(21);
        let mut engaged = false;
        for _ in 0..50 {
            match AdvertGossip.decide(&ctx, &mut rng) {
                Intent::Propose(v) => {
                    assert_eq!(v, NodeId(1));
                    engaged = true;
                }
                Intent::Listen => engaged = true,
                Intent::Idle => {}
            }
        }
        assert!(engaged, "differing hashed tags must trigger engagement");
    }
}
