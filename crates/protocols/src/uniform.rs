//! Blind uniform random spread.

use crate::{GossipProtocol, NodeCtx};
use gossip_core::{Advertisement, Intent, MsgView, Rng};

/// The baseline protocol: advertisements carry nothing, and each round every
/// node flips a fair coin to pick a role — propose to a uniformly random
/// neighbor, or listen. Connections that link two nodes with identical
/// message sets are wasted, which is exactly the inefficiency
/// advertisement-guided protocols eliminate.
pub struct UniformGossip;

impl GossipProtocol for UniformGossip {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn advertise(&self, _messages: MsgView<'_>, _salt: u64) -> Advertisement {
        Advertisement(0)
    }

    fn decide(&self, ctx: &NodeCtx<'_>, rng: &mut Rng) -> Intent {
        if ctx.neighbors.is_empty() {
            return Intent::Idle;
        }
        if rng.gen_bool() {
            Intent::Propose(ctx.neighbors[rng.gen_range(ctx.neighbors.len())])
        } else {
            Intent::Listen
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_core::{MessageSet, NodeId};

    #[test]
    fn isolated_node_idles() {
        let messages = MessageSet::new(1);
        let ctx = NodeCtx {
            id: NodeId(0),
            salt: 1,
            messages: messages.view(),
            neighbors: &[],
            neighbor_ads: &[],
        };
        assert_eq!(UniformGossip.decide(&ctx, &mut Rng::new(1)), Intent::Idle);
    }

    #[test]
    fn proposals_target_actual_neighbors() {
        let messages = MessageSet::new(1);
        let neighbors = [NodeId(3), NodeId(8)];
        let ads = [Advertisement(0), Advertisement(0)];
        let ctx = NodeCtx {
            id: NodeId(0),
            salt: 1,
            messages: messages.view(),
            neighbors: &neighbors,
            neighbor_ads: &ads,
        };
        let mut rng = Rng::new(7);
        let mut proposed = false;
        let mut listened = false;
        for _ in 0..200 {
            match UniformGossip.decide(&ctx, &mut rng) {
                Intent::Propose(v) => {
                    assert!(neighbors.contains(&v));
                    proposed = true;
                }
                Intent::Listen => listened = true,
                Intent::Idle => panic!("connected node should not idle"),
            }
        }
        assert!(proposed && listened, "both roles should occur");
    }
}
