//! Per-round and whole-run metrics recorded by the engine.

use gossip_membership::MembershipStats;

/// Counters for one simulated round.
///
/// Under a dynamics model, `complete_nodes` and `messages_held` count
/// **currently-alive** nodes only — dead nodes neither gossip nor gate
/// completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundStats {
    /// 1-based round number.
    pub round: usize,
    /// Connections formed this round.
    pub connections: usize,
    /// Connections that moved at least one new message in some direction.
    pub productive: usize,
    /// Nodes holding the full message universe at the end of the round.
    pub complete_nodes: usize,
    /// Total messages held across all nodes at the end of the round.
    pub messages_held: usize,
}

/// One sample of the churn-aware coverage curve: how many nodes were
/// alive, and how many of those held the full message universe, at a point
/// in virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoveragePoint {
    /// Virtual time of the sample, in ticks.
    pub time: u64,
    /// Nodes alive at that instant.
    pub alive: usize,
    /// Alive nodes holding the full message universe.
    pub informed_alive: usize,
}

/// Dynamics-side metrics of a run over a mutating network. `None` on
/// [`SimResult`] exactly when the run was static.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynamicsStats {
    /// Dynamics model name ("churn", "fading", "waypoint", or a
    /// `+`-joined composite).
    pub model: String,
    /// Node departures applied.
    pub departures: usize,
    /// Node rejoins applied.
    pub rejoins: usize,
    /// Edge fade-outs applied.
    pub edge_downs: usize,
    /// Edge recoveries applied.
    pub edge_ups: usize,
    /// Mobility rewires applied.
    pub rewires: usize,
    /// Open connections severed because an endpoint departed mid-transfer
    /// (event-driven scheduler only; the synchronous engine completes
    /// transfers within the round that formed them). Severed connections
    /// transfer nothing and are excluded from
    /// [`SimResult::total_connections`](crate::SimResult::total_connections).
    pub severed_connections: usize,
    /// Most nodes simultaneously alive at any instant.
    pub peak_alive: usize,
    /// Fewest nodes simultaneously alive at any instant.
    pub min_alive: usize,
    /// Nodes alive when the run ended.
    pub final_alive: usize,
    /// Samples of the alive/informed curve over the run, recorded whenever
    /// either count changes — thinned to round granularity (coarser for
    /// very long runs) so the timeline stays bounded.
    pub coverage_timeline: Vec<CoveragePoint>,
}

/// Result of a complete simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimResult {
    /// Topology builder name.
    pub topology: String,
    /// Protocol name.
    pub protocol: String,
    /// Name of the scheduler that produced the run ("sync" or "async").
    pub scheduler: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Size of the message universe (`k` of k-gossip).
    pub messages: usize,
    /// Engine seed.
    pub seed: u64,
    /// Whether gossip completed before the round cap: every node held
    /// every message — every **currently-alive** node, under a dynamics
    /// model (a network below full strength still completes; an empty
    /// network never does).
    pub completed: bool,
    /// Round in which gossip completed, if it did.
    pub rounds_to_completion: Option<usize>,
    /// Rounds actually executed (equals the cap when `!completed`). The
    /// asynchronous scheduler reports round *equivalents*: virtual time
    /// divided by [`gossip_core::time::TICKS_PER_ROUND`], rounded up.
    pub rounds_executed: usize,
    /// Virtual time elapsed, in ticks
    /// ([`gossip_core::time::TICKS_PER_ROUND`] per synchronous round), so
    /// asynchronous completion times are comparable with round counts.
    pub virtual_time: u64,
    /// Virtual time at which gossip completed, if it did.
    pub virtual_time_to_completion: Option<u64>,
    /// Connections whose transfer ran to completion. Under the
    /// event-driven scheduler with churn, a connection severed by an
    /// endpoint's departure mid-transfer is *not* counted here (it moved
    /// nothing) — it appears in
    /// [`DynamicsStats::severed_connections`] instead, so
    /// `total == productive + wasted` always holds.
    pub total_connections: usize,
    /// Connections that transferred at least one new message.
    pub productive_connections: usize,
    /// Connections that transferred nothing (both endpoints already equal).
    pub wasted_connections: usize,
    /// Nodes holding the full universe at the end — alive ones only,
    /// under a dynamics model.
    pub complete_nodes: usize,
    /// Proposals that reached the matcher but did not become a
    /// connection. On the synchronous engine these are resolver drops for
    /// targeting a non-neighbor — always 0 for a correct protocol (the
    /// graph is frozen within a round); nonzero values make protocol bugs
    /// observable in release builds, where the resolver's debug panic is
    /// compiled out. On the sliced event-driven engine these are failed
    /// handshakes: the acceptor was busy or no longer listening when the
    /// connection attempt landed, or the edge vanished in flight — a
    /// legitimate race under asynchronous timing, not a bug, and the
    /// paper's motivation for acknowledgment-style protocols.
    pub dropped_proposals: u64,
    /// Churn-aware metrics; `Some` exactly when the run used a dynamics
    /// model, so static results serialize byte-identically to pre-dynamics
    /// builds.
    pub dynamics: Option<DynamicsStats>,
    /// Membership-layer metrics; `Some` exactly when the run gossiped
    /// over a discovered overlay ([`Scheduler::run_membership_probed`]
    /// and friends), so full-view results serialize byte-identically to
    /// pre-membership builds.
    ///
    /// [`Scheduler::run_membership_probed`]: crate::Scheduler::run_membership_probed
    pub membership: Option<MembershipStats>,
    /// Per-round history; `Some` exactly when requested in `SimConfig`, so
    /// consumers can rely on its presence as a function of the flag (it is
    /// `Some(vec![])` for a run that was already complete at round 0).
    pub rounds: Option<Vec<RoundStats>>,
}
