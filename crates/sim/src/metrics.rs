//! Per-round and whole-run metrics recorded by the engine.

/// Counters for one simulated round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundStats {
    /// 1-based round number.
    pub round: usize,
    /// Connections formed this round.
    pub connections: usize,
    /// Connections that moved at least one new message in some direction.
    pub productive: usize,
    /// Nodes holding the full message universe at the end of the round.
    pub complete_nodes: usize,
    /// Total messages held across all nodes at the end of the round.
    pub messages_held: usize,
}

/// Result of a complete simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Topology builder name.
    pub topology: String,
    /// Protocol name.
    pub protocol: String,
    /// Name of the scheduler that produced the run ("sync" or "async").
    pub scheduler: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Size of the message universe (`k` of k-gossip).
    pub messages: usize,
    /// Engine seed.
    pub seed: u64,
    /// Whether every node held every message before the round cap.
    pub completed: bool,
    /// Round in which gossip completed, if it did.
    pub rounds_to_completion: Option<usize>,
    /// Rounds actually executed (equals the cap when `!completed`). The
    /// asynchronous scheduler reports round *equivalents*: virtual time
    /// divided by [`gossip_core::time::TICKS_PER_ROUND`], rounded up.
    pub rounds_executed: usize,
    /// Virtual time elapsed, in ticks
    /// ([`gossip_core::time::TICKS_PER_ROUND`] per synchronous round), so
    /// asynchronous completion times are comparable with round counts.
    pub virtual_time: u64,
    /// Virtual time at which gossip completed, if it did.
    pub virtual_time_to_completion: Option<u64>,
    /// Total connections formed.
    pub total_connections: usize,
    /// Connections that transferred at least one new message.
    pub productive_connections: usize,
    /// Connections that transferred nothing (both endpoints already equal).
    pub wasted_connections: usize,
    /// Nodes holding the full universe at the end.
    pub complete_nodes: usize,
    /// Per-round history; `Some` exactly when requested in `SimConfig`, so
    /// consumers can rely on its presence as a function of the flag (it is
    /// `Some(vec![])` for a run that was already complete at round 0).
    pub rounds: Option<Vec<RoundStats>>,
}
