//! The time-sliced parallel event engine behind [`AsyncScheduler`].
//!
//! The serial event loop in [`crate::event_driven`] executes every event
//! in exact global `(time, seq)` order — inherently sequential. This
//! module trades that total order for a *deterministic partial order*
//! that parallelizes, mirroring the design of the sharded matching
//! resolver (`resolve_connections_sharded`):
//!
//! - **Fixed partition.** Nodes are split into [`EVENT_REGIONS`]
//!   contiguous blocks of `block = ceil(n / EVENT_REGIONS)` nodes, and
//!   virtual time into slices of [`SLICE_TICKS`] ticks. Both are
//!   constants — deliberately *not* functions of the thread count — so
//!   every RNG draw below is partition-stable and the executed event
//!   sequence is byte-identical at any `threads`.
//! - **Per-region heaps.** Each region owns a binary heap of the events
//!   it is responsible for: `Act(u)` belongs to `region(u)`,
//!   `Attempt { from, .. }` to `region(from)`, `Finish { initiator, .. }`
//!   to `region(initiator)`. Every event a region *pushes* lands in its
//!   own heap, so region heaps never race.
//! - **Slice passes.** Each pass picks a monotonically increasing slice
//!   index, then workers drain their regions' events below the slice end
//!   in local `(time, seq)` order, drawing from the per-pass stream
//!   `Rng::stream(seed, pass, REGION_STREAM_BASE + region)`. Events
//!   whose *effects* would cross a region boundary — an `Attempt` whose
//!   acceptor lives in another region, a `Finish` whose endpoints
//!   straddle regions — are **deferred** untouched (no RNG consumed) to
//!   a serial **boundary sweep** at the slice edge, which executes them
//!   in `(time, region)` order against the full matcher/matrix with its
//!   own stream `Rng::stream(seed, pass, SWEEP_STREAM)`.
//! - **Serial replay.** Workers record what each transfer moved; after
//!   the scope joins, the logs merge in `(time, region)` order and the
//!   accounting (connection counters, completion detection, per-epoch
//!   history rows) replays serially, so `SimResult` assembly is one
//!   deterministic sequence regardless of which worker did what.
//!
//! Dynamics keep slice granularity: all mutations due inside a slice are
//! applied serially at the *start* of the pass (stream
//! `Rng::stream(seed, pass, MUTATE_STREAM)`), before any of the slice's
//! events execute — the event-loop analogue of the synchronous
//! scheduler's round-boundary mutation semantics. Deaths therefore
//! precede every union of the slice, and generation stamps lazily
//! discard the dead node's queued events exactly as in the serial
//! engine.
//!
//! Relaxations vs. the serial loop (all deterministic, argued in
//! ARCHITECTURE.md): events in different regions within a slice
//! interleave by region rather than globally by time; cross-region scans
//! read a start-of-slice advertisement snapshot; an event a sweep
//! schedules *inside* the current slice executes in the next pass.

use crate::dynamic::{mutate_event, DynRun};
use crate::event_driven::{AsyncScheduler, EpochAccounting, Scheduled};
use crate::scheduler::init_run;
use crate::{SimConfig, SimResult};

use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use gossip_core::time::{SimTime, TimingConfig, TICKS_PER_ROUND};
use gossip_core::{
    Advertisement, GraphView, IncrementalMatcher, Intent, MatcherChunk, MatrixChunk, MessageMatrix,
    NodeId, PeerState, Rng, Topology,
};
use gossip_dynamics::{DynamicsModel, MutationKind};
use gossip_membership::{Membership, MembershipConfig};
use gossip_protocols::{GossipProtocol, NodeCtx};
use gossip_telemetry::metrics::RegionLoad;
use gossip_telemetry::{BoundaryScope, Probe, TraceEvent};

/// Width of one virtual-time slice. One nominal act period: long enough
/// that most act→attempt→finish chains stay inside a slice, short enough
/// that the advertisement snapshot cross-region scans read stays fresh.
pub const SLICE_TICKS: u64 = TICKS_PER_ROUND;

/// Number of fixed node regions. A constant (not a function of the
/// thread count) so the event partition — and therefore every RNG draw —
/// is identical no matter how many workers execute it.
pub const EVENT_REGIONS: usize = 64;

// The per-region load counters in `SliceTimings` are indexed by event
// region; keep the fixed partition and the telemetry array in lockstep.
const _: () = assert!(EVENT_REGIONS == gossip_telemetry::metrics::REGIONS);

/// Per-pass region streams are `stream(seed, pass, REGION_STREAM_BASE + r)`.
/// Offset by `2^33` to stay disjoint from the matching resolver's region
/// streams (based at `2^32`) and the protocol's per-node streams.
const REGION_STREAM_BASE: u64 = 2 << 32;
/// Stream for the serial boundary sweep of a pass (`u64::MAX - 1` is the
/// matching resolver's boundary stream).
const SWEEP_STREAM: u64 = u64::MAX - 2;
/// Stream for the serial start-of-slice mutation drain of a pass.
/// (`u64::MAX - 4` is the membership layer's tick stream,
/// [`gossip_membership::MEMBERSHIP_STREAM`] — keep them disjoint.)
const MUTATE_STREAM: u64 = u64::MAX - 3;

/// Wall-time breakdown of a sliced run, for `bench`. `execute` is the
/// parallel region phase; `merge` the serial log merge + accounting
/// replay; `sweep` the serial boundary sweep (plus, on dynamic runs, the
/// start-of-slice mutation drain).
#[derive(Clone, Copy, Debug, Default)]
pub struct SliceTimings {
    /// Parallel region execution.
    pub execute: Duration,
    /// Log merge + serial accounting replay.
    pub merge: Duration,
    /// Serial boundary sweep (and mutation drain).
    pub sweep: Duration,
    /// Events executed (region pops + sweep executions; deferred events
    /// count once, where they execute).
    pub events: u64,
    /// Slice passes taken.
    pub slices: u64,
    /// Events popped per fixed region during the parallel phase (sweep
    /// executions are serial and excluded) — the load-balance signal for
    /// `bench`.
    pub events_by_region: RegionLoad,
}

/// The one event vocabulary of the sliced engine; static runs carry
/// all-zero generation stamps (no node ever dies, so the checks are
/// vacuously true) and share every code path with dynamic runs.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// A node's act cycle, valid for one incarnation of the node.
    Act(NodeId, u64),
    /// `from`'s proposal arrives at `to` after connection-setup latency.
    Attempt { from: NodeId, to: NodeId, gen: u64 },
    /// The transfer over a formed connection completes.
    Finish {
        initiator: NodeId,
        acceptor: NodeId,
        gen_i: u64,
        gen_a: u64,
    },
}

/// What a worker logs for the serial replay to account. The first two
/// variants carry the run's accounting and are always logged; the rest
/// exist purely for tracing and are logged only when a probe is enabled,
/// so the replay can emit the region phase's trace events in one
/// deterministic global order without the workers ever touching the
/// probe.
#[derive(Clone, Copy, Debug)]
enum EntryKind {
    /// A transfer completed: how many messages moved, and how many
    /// endpoints newly hold the full universe.
    Finish { moved: usize, newly_full: usize },
    /// An attempt was rejected (busy acceptor, or a vanished edge on
    /// dynamic runs).
    Drop { from: u32, to: u32 },
    /// Trace-only: a node committed to proposing.
    Propose { from: u32, to: u32 },
    /// Trace-only: an in-region attempt was accepted.
    Connect { initiator: u32, acceptor: u32 },
    /// Trace-only: one message crossed a completed connection. Logged
    /// *before* the connection's `Finish` entry so transfers replay
    /// ahead of the completion check they might trigger.
    Moved { from: u32, to: u32, msg: u32 },
}

/// One replay-log record, ordered by `(time, region)` at merge.
#[derive(Clone, Copy, Debug)]
struct Entry {
    time: u64,
    kind: EntryKind,
}

/// Per-region state that persists across slices: the event heap, its
/// region-local sequence counter, and reusable deferred/log/scratch
/// buffers (allocated once, drained every pass).
struct RegionScratch {
    heap: BinaryHeap<Scheduled<Ev>>,
    seq: u64,
    deferred: Vec<Scheduled<Ev>>,
    log: Vec<Entry>,
    ad_scratch: Vec<Advertisement>,
    moved_scratch: Vec<(u32, bool)>,
    events: u64,
    last_time: u64,
}

impl RegionScratch {
    /// Pre-size for `block` nodes: one pending act chain plus one
    /// in-flight attempt/finish per node.
    fn with_node_capacity(block: usize) -> Self {
        RegionScratch {
            heap: BinaryHeap::with_capacity(2 * block),
            seq: 0,
            deferred: Vec::new(),
            log: Vec::new(),
            ad_scratch: Vec::new(),
            moved_scratch: Vec::new(),
            events: 0,
            last_time: 0,
        }
    }

    /// Schedule `event` at `time` in this region's heap. `seq` is
    /// region-local, so region pop order is deterministic without any
    /// global coordination.
    fn push(&mut self, time: SimTime, event: Ev) {
        self.seq += 1;
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
    }

    /// Record that an event executed (or was discarded as stale) here.
    fn note(&mut self, now: SimTime) {
        self.events += 1;
        self.last_time = self.last_time.max(now.ticks());
    }
}

/// Read-only context shared by every worker of one slice pass.
struct SliceCtx<'a, G: GraphView + Sync + ?Sized> {
    graph: &'a G,
    protocol: &'a dyn GossipProtocol,
    timing: &'a TimingConfig,
    drift: &'a [f64],
    /// Start-of-slice advertisement snapshot, read for *cross-region*
    /// neighbors (in-region neighbors read the live array).
    ads_snap: &'a [Advertisement],
    gens: &'a [u64],
    seed: u64,
    pass: u64,
    /// Exclusive pop bound: `min(slice end, max_time + 1)`.
    end: u64,
    block: usize,
    /// Dynamic runs skip the static-graph neighbor assertion — there an
    /// edge may legitimately vanish while a proposal is in flight.
    dynamic: bool,
    /// Hoisted `probe.enabled()`: workers log the trace-only entry kinds
    /// (and itemize transfers) only when a probe will consume them.
    tracing: bool,
}

/// The disjoint mutable state a worker owns for one region: its scratch,
/// plus region-sized chunks of the matcher, message matrix,
/// advertisement array, and partner table.
struct RegionTask<'a> {
    scratch: &'a mut RegionScratch,
    matcher: MatcherChunk<'a>,
    states: MatrixChunk<'a>,
    ads: &'a mut [Advertisement],
    partner: &'a mut [Option<(NodeId, bool)>],
}

/// Drain one region's events below the slice end. Everything a region
/// event *touches* is in-region (acts touch only their node; attempts
/// and finishes with a cross-region peer are deferred before consuming
/// any randomness), so workers on different regions never observe each
/// other.
fn run_region<G: GraphView + Sync + ?Sized>(ctx: &SliceCtx<'_, G>, task: &mut RegionTask<'_>) {
    let base = task.matcher.base();
    let r = base / ctx.block;
    let mut rng = Rng::stream(ctx.seed, ctx.pass, REGION_STREAM_BASE + r as u64);
    loop {
        match task.scratch.heap.peek() {
            Some(top) if top.time.ticks() < ctx.end => {}
            _ => break,
        }
        let ev = task.scratch.heap.pop().expect("peeked event must pop");
        let now = ev.time;
        match ev.event {
            Ev::Act(u, gen) => {
                task.scratch.note(now);
                if gen != ctx.gens[u.index()] {
                    continue; // the node died since this was scheduled
                }
                let ui = u.index();
                match task.matcher.state(u) {
                    PeerState::Connected => {
                        // Captured as a listener mid-connection: keep the
                        // act chain alive and re-decide later.
                        let delay = ctx.timing.refresh_interval(ctx.drift[ui], &mut rng);
                        task.scratch.push(now.after(delay), Ev::Act(u, gen));
                    }
                    PeerState::Proposing => {
                        // See the serial engine: a proposing node's chain
                        // is owned by its Attempt event.
                        debug_assert!(false, "act event fired for a proposing node");
                    }
                    state => {
                        if state == PeerState::Listening {
                            task.matcher.cancel(u);
                        }
                        let epoch = now.epoch();
                        task.ads[ui - base] = ctx.protocol.advertise(task.states.view(ui), epoch);
                        let neighbors = ctx.graph.neighbors(u);
                        {
                            let ads_live: &[Advertisement] = task.ads;
                            let scr = &mut task.scratch.ad_scratch;
                            scr.clear();
                            scr.extend(neighbors.iter().map(|v| {
                                let vi = v.index();
                                if vi / ctx.block == r {
                                    ads_live[vi - base]
                                } else {
                                    ctx.ads_snap[vi]
                                }
                            }));
                        }
                        let node_ctx = NodeCtx {
                            id: u,
                            salt: epoch,
                            messages: task.states.view(ui),
                            neighbors,
                            neighbor_ads: &task.scratch.ad_scratch,
                        };
                        match ctx.protocol.decide(&node_ctx, &mut rng) {
                            Intent::Idle => {
                                let delay = ctx.timing.refresh_interval(ctx.drift[ui], &mut rng);
                                task.scratch.push(now.after(delay), Ev::Act(u, gen));
                            }
                            Intent::Listen => {
                                task.matcher.listen(u);
                                let delay = ctx.timing.refresh_interval(ctx.drift[ui], &mut rng);
                                task.scratch.push(now.after(delay), Ev::Act(u, gen));
                            }
                            Intent::Propose(v) => {
                                task.matcher.propose(u);
                                if ctx.tracing {
                                    task.scratch.log.push(Entry {
                                        time: now.ticks(),
                                        kind: EntryKind::Propose { from: u.0, to: v.0 },
                                    });
                                }
                                let delay = ctx.timing.latency(&mut rng);
                                task.scratch.push(
                                    now.after(delay),
                                    Ev::Attempt {
                                        from: u,
                                        to: v,
                                        gen,
                                    },
                                );
                            }
                        }
                    }
                }
            }
            Ev::Attempt { from, to, gen } => {
                if gen != ctx.gens[from.index()] {
                    task.scratch.note(now);
                    continue; // the proposer died mid-flight
                }
                if to.index() / ctx.block != r {
                    // Cross-region acceptor: defer to the boundary sweep
                    // before consuming any randomness.
                    task.scratch.deferred.push(ev);
                    continue;
                }
                task.scratch.note(now);
                if !ctx.dynamic {
                    debug_assert!(
                        ctx.graph.are_neighbors(from, to),
                        "protocol proposed {from} -> {to} across a non-edge"
                    );
                }
                if task.matcher.try_connect(ctx.graph, from, to) {
                    if ctx.tracing {
                        task.scratch.log.push(Entry {
                            time: now.ticks(),
                            kind: EntryKind::Connect {
                                initiator: from.0,
                                acceptor: to.0,
                            },
                        });
                    }
                    task.partner[from.index() - base] = Some((to, true));
                    task.partner[to.index() - base] = Some((from, false));
                    let delay = ctx.timing.latency(&mut rng);
                    task.scratch.push(
                        now.after(delay),
                        Ev::Finish {
                            initiator: from,
                            acceptor: to,
                            gen_i: gen,
                            gen_a: ctx.gens[to.index()],
                        },
                    );
                } else {
                    task.matcher.cancel(from);
                    task.scratch.log.push(Entry {
                        time: now.ticks(),
                        kind: EntryKind::Drop {
                            from: from.0,
                            to: to.0,
                        },
                    });
                    let delay = ctx
                        .timing
                        .refresh_interval(ctx.drift[from.index()], &mut rng);
                    task.scratch.push(now.after(delay), Ev::Act(from, gen));
                }
            }
            Ev::Finish {
                initiator,
                acceptor,
                gen_i,
                gen_a,
            } => {
                if gen_i != ctx.gens[initiator.index()] || gen_a != ctx.gens[acceptor.index()] {
                    task.scratch.note(now);
                    continue; // the connection was severed by a death
                }
                if acceptor.index() / ctx.block != r {
                    task.scratch.deferred.push(ev);
                    continue;
                }
                task.scratch.note(now);
                let (i, j) = (initiator.index(), acceptor.index());
                let stats = if ctx.tracing {
                    // Itemize the moved messages (same union, same
                    // totals) so the replay can emit per-message
                    // `Transfer` events ahead of this `Finish`.
                    let scratch = &mut *task.scratch;
                    scratch.moved_scratch.clear();
                    let stats =
                        task.states
                            .union_pair_stats_traced(i, j, &mut scratch.moved_scratch);
                    for &(msg, forward) in scratch.moved_scratch.iter() {
                        let (from, to) = if forward {
                            (initiator.0, acceptor.0)
                        } else {
                            (acceptor.0, initiator.0)
                        };
                        scratch.log.push(Entry {
                            time: now.ticks(),
                            kind: EntryKind::Moved { from, to, msg },
                        });
                    }
                    stats
                } else {
                    task.states.union_pair_stats(i, j)
                };
                task.scratch.log.push(Entry {
                    time: now.ticks(),
                    kind: EntryKind::Finish {
                        moved: stats.moved,
                        newly_full: stats.newly_full,
                    },
                });
                task.matcher.release(initiator, acceptor);
                task.partner[i - base] = None;
                task.partner[j - base] = None;
                let delay = ctx.timing.refresh_interval(ctx.drift[i], &mut rng);
                task.scratch
                    .push(now.after(delay), Ev::Act(initiator, gen_i));
            }
        }
    }
}

/// Run one slice's region phase: carve the shared state into per-region
/// tasks and execute them on `threads` scoped workers (inline when 1).
/// Which worker runs which region never affects the result — regions
/// are data-disjoint and their RNG streams are keyed by region index.
fn execute_slice<G: GraphView + Sync + ?Sized>(
    ctx: &SliceCtx<'_, G>,
    scratches: &mut [RegionScratch],
    matcher: &mut IncrementalMatcher,
    states: &mut MessageMatrix,
    ads: &mut [Advertisement],
    partner: &mut [Option<(NodeId, bool)>],
    threads: usize,
) {
    let block = ctx.block;
    let mut tasks: Vec<RegionTask<'_>> = scratches
        .iter_mut()
        .zip(matcher.region_chunks(block))
        .zip(states.region_chunks(block))
        .zip(ads.chunks_mut(block))
        .zip(partner.chunks_mut(block))
        .map(
            |((((scratch, matcher), states), ads), partner)| RegionTask {
                scratch,
                matcher,
                states,
                ads,
                partner,
            },
        )
        .collect();
    if threads <= 1 {
        for task in tasks.iter_mut() {
            run_region(ctx, task);
        }
        return;
    }
    let per_worker = tasks.len().div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = tasks.as_mut_slice();
        while !rest.is_empty() {
            let take = per_worker.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            s.spawn(move || {
                for task in head.iter_mut() {
                    run_region(ctx, task);
                }
            });
        }
    });
}

/// The sliced engine for a frozen topology. Byte-identical to itself at
/// any `threads`; see the module docs for the determinism argument.
///
/// Tracing rides the replay: workers log trace-only entries into their
/// region logs (never touching the probe or any RNG), and the serial
/// phases — the `(time, region)` merge replay and the boundary sweep —
/// are the only places `probe.record` is called, so the emitted stream
/// is one deterministic global order at any thread count.
// Mirrors the `Scheduler` entry points — the argument list is the
// determinism contract. `membership: Some(cfg)` swaps the gossip graph
// for a discovered overlay, ticked serially at slice starts.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sliced(
    sched: &AsyncScheduler,
    topology: &Topology,
    membership: Option<&MembershipConfig>,
    protocol: &dyn GossipProtocol,
    sources: &[NodeId],
    seed: u64,
    config: &SimConfig,
    probe: &mut dyn Probe,
) -> (SimResult, SliceTimings) {
    sched
        .timing
        .validate()
        .unwrap_or_else(|e| panic!("invalid timing config: {e}"));
    let n = topology.num_nodes();
    let mut rng = Rng::new(seed);
    let (mut states, mut result) = init_run(topology, protocol, "async", sources, seed, config);
    let mut mem = membership.map(|cfg| Membership::new(n, *cfg));
    let mut timings = SliceTimings::default();
    if result.completed {
        result.membership = mem.as_ref().map(|m| m.finish(None));
        return (result, timings);
    }
    let mut complete_nodes = result.complete_nodes;
    let mut messages_held: usize = states.total_messages();

    let max_time = (config.max_rounds as u64).saturating_mul(TICKS_PER_ROUND);
    let drift: Vec<f64> = (0..n)
        .map(|_| sched.timing.drift_factor(&mut rng))
        .collect();
    // Every node publishes an initial epoch-0 tag before anyone scans.
    let mut ads: Vec<Advertisement> = (0..n)
        .map(|u| protocol.advertise(states.view(u), 0))
        .collect();
    let mut ads_snap = ads.clone();
    let mut matcher = IncrementalMatcher::new(n);
    let mut partner: Vec<Option<(NodeId, bool)>> = vec![None; n];
    // Static runs never bump a generation; the stamps exist so both run
    // flavors share the worker code.
    let gens: Vec<u64> = vec![0; n];

    let block = n.div_ceil(EVENT_REGIONS);
    let regions = n.div_ceil(block);
    let threads = sched.threads.clamp(1, regions);
    let mut scratches: Vec<RegionScratch> = (0..regions)
        .map(|_| RegionScratch::with_node_capacity(block))
        .collect();

    // Stagger initial act cycles uniformly over the first nominal period,
    // so the network does not start phase-locked. Serial draws, exactly
    // like the serial engine's setup.
    for u in 0..n {
        let offset = rng.gen_range(TICKS_PER_ROUND as usize) as u64;
        scratches[u / block].push(SimTime(offset), Ev::Act(NodeId(u as u32), 0));
    }

    let mut epochs = EpochAccounting::default();
    let mut merged: Vec<Entry> = Vec::new();
    let mut sweep_q: Vec<Scheduled<Ev>> = Vec::new();
    let mut sweep_events: u64 = 0;
    let mut last_time: u64 = 0;
    let mut prev_pass: Option<u64> = None;
    let tracing = probe.enabled();
    let mut sweep_moved: Vec<(u32, bool)> = Vec::new();
    let now_ticks: u64;

    'run: loop {
        let next = scratches
            .iter()
            .filter_map(|s| s.heap.peek().map(|top| top.time.ticks()))
            .min();
        let Some(next_t) = next else {
            now_ticks = last_time;
            break 'run;
        };
        if next_t > max_time {
            now_ticks = max_time;
            break 'run;
        }
        // Monotonic pass index: each (pass, region) stream is used at
        // most once even when a sweep schedules events back inside an
        // already-executed slice window (they run in the next pass).
        let pass = prev_pass.map_or(next_t / SLICE_TICKS, |p| (p + 1).max(next_t / SLICE_TICKS));
        prev_pass = Some(pass);
        timings.slices += 1;
        let slice_end = (pass + 1).saturating_mul(SLICE_TICKS);
        let end = slice_end.min(max_time.saturating_add(1));
        if tracing {
            probe.record(&TraceEvent::Boundary {
                t: pass.saturating_mul(SLICE_TICKS),
                round: pass,
                scope: BoundaryScope::Slice,
            });
        }

        // Membership ticks serially at the slice start — the async
        // analogue of the sync scheduler's round-boundary tick — so the
        // whole slice executes against frozen views.
        if let Some(m) = mem.as_mut() {
            m.tick(topology, None, seed, pass, probe);
        }

        // Phase A: parallel region execution against a start-of-slice
        // advertisement snapshot. With membership, attempts may outlive
        // the view edge they were proposed over (ticks run between
        // passes), so the region workers treat the graph as mutable
        // (`dynamic`) and fail such attempts instead of asserting.
        let t0 = Instant::now();
        ads_snap.copy_from_slice(&ads);
        {
            let graph: &(dyn GraphView + Sync) = match mem.as_ref() {
                Some(m) => m,
                None => topology,
            };
            let ctx = SliceCtx {
                graph,
                protocol,
                timing: &sched.timing,
                drift: &drift,
                ads_snap: &ads_snap,
                gens: &gens,
                seed,
                pass,
                end,
                block,
                dynamic: mem.is_some(),
                tracing,
            };
            execute_slice(
                &ctx,
                &mut scratches,
                &mut matcher,
                &mut states,
                &mut ads,
                &mut partner,
                threads,
            );
        }
        timings.execute += t0.elapsed();

        // Phase B: merge region logs in (time, region) order and replay
        // the accounting serially.
        let t1 = Instant::now();
        merged.clear();
        for s in scratches.iter_mut() {
            last_time = last_time.max(s.last_time);
            merged.append(&mut s.log);
        }
        // Region logs are individually time-sorted; a stable sort keyed
        // on time alone keeps region order as the tie-break.
        merged.sort_by_key(|e| e.time);
        for e in merged.iter() {
            let round = SimTime(e.time).round_equivalent() as u64;
            match e.kind {
                EntryKind::Propose { from, to } => probe.record(&TraceEvent::Propose {
                    t: e.time,
                    round,
                    from,
                    to,
                }),
                EntryKind::Connect {
                    initiator,
                    acceptor,
                } => probe.record(&TraceEvent::Connect {
                    t: e.time,
                    round,
                    initiator,
                    acceptor,
                }),
                EntryKind::Moved { from, to, msg } => probe.record(&TraceEvent::Transfer {
                    t: e.time,
                    round,
                    from,
                    to,
                    msg,
                }),
                EntryKind::Drop { from, to } => {
                    if let Some(history) = &mut result.rounds {
                        let row = SimTime(e.time).round_equivalent().max(1);
                        epochs.flush_rows_below(history, row, complete_nodes, messages_held);
                    }
                    result.dropped_proposals += 1;
                    if tracing {
                        probe.record(&TraceEvent::Reject {
                            t: e.time,
                            round,
                            from,
                            to,
                        });
                    }
                }
                EntryKind::Finish { moved, newly_full } => {
                    if let Some(history) = &mut result.rounds {
                        let row = SimTime(e.time).round_equivalent().max(1);
                        epochs.flush_rows_below(history, row, complete_nodes, messages_held);
                    }
                    complete_nodes += newly_full;
                    messages_held += moved;
                    result.total_connections += 1;
                    if moved > 0 {
                        result.productive_connections += 1;
                        epochs.productive += 1;
                    } else {
                        result.wasted_connections += 1;
                    }
                    epochs.connections += 1;
                    if complete_nodes == n {
                        result.completed = true;
                        result.virtual_time_to_completion = Some(e.time);
                        result.rounds_to_completion = Some(SimTime(e.time).round_equivalent());
                        timings.merge += t1.elapsed();
                        now_ticks = e.time;
                        break 'run;
                    }
                }
            }
        }
        timings.merge += t1.elapsed();

        // Phase C: serial boundary sweep over the deferred cross-region
        // events, in (time, region) order, against the full state.
        let t2 = Instant::now();
        sweep_q.clear();
        for s in scratches.iter_mut() {
            sweep_q.append(&mut s.deferred);
        }
        sweep_q.sort_by_key(|ev| ev.time);
        let mut rng_sweep = Rng::stream(seed, pass, SWEEP_STREAM);
        for ev in sweep_q.iter().copied() {
            let now = ev.time;
            last_time = last_time.max(now.ticks());
            sweep_events += 1;
            if let Some(history) = &mut result.rounds {
                let row = now.round_equivalent().max(1);
                epochs.flush_rows_below(history, row, complete_nodes, messages_held);
            }
            match ev.event {
                Ev::Attempt { from, to, gen } => {
                    // Membership views on a static underlay are always a
                    // subgraph of it, so the non-edge assert stays valid;
                    // the *connect* check runs against the overlay, where
                    // an evicted view edge fails the attempt naturally.
                    debug_assert!(
                        topology.are_neighbors(from, to),
                        "protocol proposed {from} -> {to} across a non-edge"
                    );
                    let connected = match mem.as_ref() {
                        Some(m) => matcher.try_connect(m, from, to),
                        None => matcher.try_connect(topology, from, to),
                    };
                    if connected {
                        if tracing {
                            probe.record(&TraceEvent::Connect {
                                t: now.ticks(),
                                round: now.round_equivalent() as u64,
                                initiator: from.0,
                                acceptor: to.0,
                            });
                        }
                        partner[from.index()] = Some((to, true));
                        partner[to.index()] = Some((from, false));
                        let delay = sched.timing.latency(&mut rng_sweep);
                        scratches[from.index() / block].push(
                            now.after(delay),
                            Ev::Finish {
                                initiator: from,
                                acceptor: to,
                                gen_i: gen,
                                gen_a: gens[to.index()],
                            },
                        );
                    } else {
                        matcher.cancel(from);
                        result.dropped_proposals += 1;
                        if tracing {
                            probe.record(&TraceEvent::Reject {
                                t: now.ticks(),
                                round: now.round_equivalent() as u64,
                                from: from.0,
                                to: to.0,
                            });
                        }
                        let delay = sched
                            .timing
                            .refresh_interval(drift[from.index()], &mut rng_sweep);
                        scratches[from.index() / block].push(now.after(delay), Ev::Act(from, gen));
                    }
                }
                Ev::Finish {
                    initiator,
                    acceptor,
                    gen_i,
                    ..
                } => {
                    let (i, j) = (initiator.index(), acceptor.index());
                    let stats = if tracing {
                        sweep_moved.clear();
                        let stats = states.union_pair_stats_traced(i, j, &mut sweep_moved);
                        let round = now.round_equivalent() as u64;
                        for &(msg, forward) in sweep_moved.iter() {
                            let (from, to) = if forward {
                                (initiator.0, acceptor.0)
                            } else {
                                (acceptor.0, initiator.0)
                            };
                            probe.record(&TraceEvent::Transfer {
                                t: now.ticks(),
                                round,
                                from,
                                to,
                                msg,
                            });
                        }
                        stats
                    } else {
                        states.union_pair_stats(i, j)
                    };
                    complete_nodes += stats.newly_full;
                    messages_held += stats.moved;
                    result.total_connections += 1;
                    if stats.moved > 0 {
                        result.productive_connections += 1;
                        epochs.productive += 1;
                    } else {
                        result.wasted_connections += 1;
                    }
                    epochs.connections += 1;
                    matcher.release(initiator, acceptor);
                    partner[i] = None;
                    partner[j] = None;
                    let delay = sched.timing.refresh_interval(drift[i], &mut rng_sweep);
                    scratches[i / block].push(now.after(delay), Ev::Act(initiator, gen_i));
                    if complete_nodes == n {
                        result.completed = true;
                        result.virtual_time_to_completion = Some(now.ticks());
                        result.rounds_to_completion = Some(now.round_equivalent());
                        timings.sweep += t2.elapsed();
                        now_ticks = now.ticks();
                        break 'run;
                    }
                }
                Ev::Act(..) => unreachable!("act events are never deferred"),
            }
        }
        timings.sweep += t2.elapsed();
    }

    result.complete_nodes = complete_nodes;
    result.virtual_time = now_ticks.min(max_time);
    result.rounds_executed = SimTime(result.virtual_time)
        .round_equivalent()
        .min(config.max_rounds);
    if let Some(history) = &mut result.rounds {
        epochs.flush_rows_below(
            history,
            result.rounds_executed + 1,
            complete_nodes,
            messages_held,
        );
    }
    result.membership = mem.as_ref().map(|m| m.finish(None));
    timings.events = scratches.iter().map(|s| s.events).sum::<u64>() + sweep_events;
    for (r, s) in scratches.iter().enumerate() {
        timings.events_by_region.add(r, s.events);
    }
    (result, timings)
}

/// The sliced engine over a dynamic topology. Mutations apply serially
/// at slice starts (the analogue of the sync scheduler's round-boundary
/// semantics); the event phases are identical to [`run_sliced`] with the
/// active graph and generation-stamp checks in play.
// Mirrors `Scheduler::run_dynamic_probed` — the argument list is the
// determinism contract.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_dynamic_sliced(
    sched: &AsyncScheduler,
    topology: &Topology,
    dynamics: &dyn DynamicsModel,
    membership: Option<&MembershipConfig>,
    protocol: &dyn GossipProtocol,
    sources: &[NodeId],
    seed: u64,
    config: &SimConfig,
    probe: &mut dyn Probe,
) -> (SimResult, SliceTimings) {
    sched
        .timing
        .validate()
        .unwrap_or_else(|e| panic!("invalid timing config: {e}"));
    let n = topology.num_nodes();
    let mut rng = Rng::new(seed);
    let (mut states, mut result) = init_run(topology, protocol, "async", sources, seed, config);
    let mut dynr = DynRun::new(topology, dynamics, seed, &states);
    let mut mem = membership.map(|cfg| Membership::new(n, *cfg));
    let mut timings = SliceTimings::default();
    if result.completed {
        result.membership = mem.as_ref().map(|m| m.finish(Some(dynr.topo.alive_mask())));
        result.dynamics = Some(dynr.finish(SimTime::ZERO));
        return (result, timings);
    }

    let max_time = (config.max_rounds as u64).saturating_mul(TICKS_PER_ROUND);
    let drift: Vec<f64> = (0..n)
        .map(|_| sched.timing.drift_factor(&mut rng))
        .collect();
    let mut ads: Vec<Advertisement> = (0..n)
        .map(|u| protocol.advertise(states.view(u), 0))
        .collect();
    let mut ads_snap = ads.clone();
    let mut matcher = IncrementalMatcher::new(n);
    let mut partner: Vec<Option<(NodeId, bool)>> = vec![None; n];
    // A node's incarnation number; death bumps it, orphaning every event
    // queued against the old incarnation.
    let mut gens: Vec<u64> = vec![0; n];

    let block = n.div_ceil(EVENT_REGIONS);
    let regions = n.div_ceil(block);
    let threads = sched.threads.clamp(1, regions);
    let mut scratches: Vec<RegionScratch> = (0..regions)
        .map(|_| RegionScratch::with_node_capacity(block))
        .collect();

    for u in 0..n {
        let offset = rng.gen_range(TICKS_PER_ROUND as usize) as u64;
        scratches[u / block].push(SimTime(offset), Ev::Act(NodeId(u as u32), 0));
    }

    let mut epochs = EpochAccounting::default();
    let mut merged: Vec<Entry> = Vec::new();
    let mut sweep_q: Vec<Scheduled<Ev>> = Vec::new();
    let mut sweep_events: u64 = 0;
    let mut last_time: u64 = 0;
    let mut prev_pass: Option<u64> = None;
    let tracing = probe.enabled();
    let mut sweep_moved: Vec<(u32, bool)> = Vec::new();
    let now_ticks: u64;

    'run: loop {
        let mut next = scratches
            .iter()
            .filter_map(|s| s.heap.peek().map(|top| top.time.ticks()))
            .min();
        if let Some(t) = dynr.peek_time() {
            next = Some(next.map_or(t.ticks(), |x| x.min(t.ticks())));
        }
        let Some(next_t) = next else {
            now_ticks = last_time;
            break 'run;
        };
        if next_t > max_time {
            now_ticks = max_time;
            break 'run;
        }
        let pass = prev_pass.map_or(next_t / SLICE_TICKS, |p| (p + 1).max(next_t / SLICE_TICKS));
        prev_pass = Some(pass);
        timings.slices += 1;
        let slice_end = (pass + 1).saturating_mul(SLICE_TICKS);
        let end = slice_end.min(max_time.saturating_add(1));
        if tracing {
            probe.record(&TraceEvent::Boundary {
                t: pass.saturating_mul(SLICE_TICKS),
                round: pass,
                scope: BoundaryScope::Slice,
            });
        }

        // Phase 0 (serial): apply every mutation due inside this slice
        // before any of its events execute, so deaths precede the
        // slice's unions both physically and in the accounting.
        let t2 = Instant::now();
        let mut rng_mut = Rng::stream(seed, pass, MUTATE_STREAM);
        let mut mutated = false;
        let mut last_mut: u64 = 0;
        while dynr.peek_time().is_some_and(|t| t.ticks() < end) {
            let mutation = dynr.pop().expect("peeked mutation must pop");
            let mtime = mutation.time;
            if let MutationKind::Depart(u) = mutation.kind {
                if dynr.topo.is_alive(u) {
                    // Disentangle the node before it goes down.
                    match matcher.state(u) {
                        PeerState::Free => {}
                        PeerState::Listening | PeerState::Proposing => matcher.cancel(u),
                        PeerState::Connected => {
                            let (v, u_initiated) =
                                partner[u.index()].expect("connected node has a partner");
                            matcher.release(u, v);
                            partner[u.index()] = None;
                            partner[v.index()] = None;
                            dynr.stats.severed_connections += 1;
                            if tracing {
                                probe.record(&TraceEvent::Sever {
                                    t: mtime.ticks(),
                                    round: mtime.round_equivalent() as u64,
                                    a: u.0,
                                    b: v.0,
                                });
                            }
                            if !u_initiated {
                                // The survivor initiated: its act chain
                                // was parked on the Finish event dying
                                // with this connection — restart it.
                                let delay = sched
                                    .timing
                                    .refresh_interval(drift[v.index()], &mut rng_mut);
                                scratches[v.index() / block]
                                    .push(mtime.after(delay), Ev::Act(v, gens[v.index()]));
                            }
                        }
                    }
                    gens[u.index()] += 1;
                }
            }
            let applied = dynr.apply(&mutation, &mut states, sources);
            if applied && tracing {
                probe.record(&mutate_event(&mutation, mtime.round_equivalent() as u64));
            }
            if applied {
                if let MutationKind::Rejoin { node, .. } = mutation.kind {
                    // The revived node starts a fresh act chain.
                    let delay = sched
                        .timing
                        .refresh_interval(drift[node.index()], &mut rng_mut);
                    scratches[node.index() / block]
                        .push(mtime.after(delay), Ev::Act(node, gens[node.index()]));
                }
            }
            mutated = true;
            last_mut = mtime.ticks();
        }
        if mutated && dynr.complete() {
            result.completed = true;
            result.virtual_time_to_completion = Some(last_mut);
            result.rounds_to_completion = Some(SimTime(last_mut).round_equivalent());
            timings.sweep += t2.elapsed();
            now_ticks = last_mut;
            break 'run;
        }
        timings.sweep += t2.elapsed();

        // Membership ticks serially after the slice's mutations landed,
        // so the failure detector sees a departure the very slice it
        // happens and a rejoiner can re-join immediately.
        if let Some(m) = mem.as_mut() {
            m.tick(&dynr.topo, Some(dynr.topo.alive_mask()), seed, pass, probe);
        }

        // Phase A: parallel region execution over the active graph (the
        // discovered overlay when membership is on).
        let t0 = Instant::now();
        ads_snap.copy_from_slice(&ads);
        {
            let graph: &(dyn GraphView + Sync) = match mem.as_ref() {
                Some(m) => m,
                None => &dynr.topo,
            };
            let ctx = SliceCtx {
                graph,
                protocol,
                timing: &sched.timing,
                drift: &drift,
                ads_snap: &ads_snap,
                gens: &gens,
                seed,
                pass,
                end,
                block,
                dynamic: true,
                tracing,
            };
            execute_slice(
                &ctx,
                &mut scratches,
                &mut matcher,
                &mut states,
                &mut ads,
                &mut partner,
                threads,
            );
        }
        timings.execute += t0.elapsed();

        // Phase B: merge and replay, with alive-only accounting. Both
        // endpoints of every logged transfer were alive for the whole
        // slice (deaths applied in phase 0 bumped generations, so their
        // events discarded).
        let t1 = Instant::now();
        merged.clear();
        for s in scratches.iter_mut() {
            last_time = last_time.max(s.last_time);
            merged.append(&mut s.log);
        }
        merged.sort_by_key(|e| e.time);
        for e in merged.iter() {
            let round = SimTime(e.time).round_equivalent() as u64;
            match e.kind {
                EntryKind::Propose { from, to } => probe.record(&TraceEvent::Propose {
                    t: e.time,
                    round,
                    from,
                    to,
                }),
                EntryKind::Connect {
                    initiator,
                    acceptor,
                } => probe.record(&TraceEvent::Connect {
                    t: e.time,
                    round,
                    initiator,
                    acceptor,
                }),
                EntryKind::Moved { from, to, msg } => probe.record(&TraceEvent::Transfer {
                    t: e.time,
                    round,
                    from,
                    to,
                    msg,
                }),
                EntryKind::Drop { from, to } => {
                    if let Some(history) = &mut result.rounds {
                        let row = SimTime(e.time).round_equivalent().max(1);
                        epochs.flush_rows_below(
                            history,
                            row,
                            dynr.alive_informed,
                            dynr.alive_messages,
                        );
                    }
                    result.dropped_proposals += 1;
                    if tracing {
                        probe.record(&TraceEvent::Reject {
                            t: e.time,
                            round,
                            from,
                            to,
                        });
                    }
                }
                EntryKind::Finish { moved, newly_full } => {
                    if let Some(history) = &mut result.rounds {
                        let row = SimTime(e.time).round_equivalent().max(1);
                        epochs.flush_rows_below(
                            history,
                            row,
                            dynr.alive_informed,
                            dynr.alive_messages,
                        );
                    }
                    dynr.alive_informed += newly_full;
                    dynr.alive_messages += moved;
                    result.total_connections += 1;
                    if moved > 0 {
                        result.productive_connections += 1;
                        epochs.productive += 1;
                    } else {
                        result.wasted_connections += 1;
                    }
                    epochs.connections += 1;
                    dynr.record(SimTime(e.time));
                    if dynr.complete() {
                        result.completed = true;
                        result.virtual_time_to_completion = Some(e.time);
                        result.rounds_to_completion = Some(SimTime(e.time).round_equivalent());
                        timings.merge += t1.elapsed();
                        now_ticks = e.time;
                        break 'run;
                    }
                }
            }
        }
        timings.merge += t1.elapsed();

        // Phase C: serial boundary sweep. `try_connect` consults the
        // *current* active graph, so a target that died, an edge that
        // faded, or a peer that moved away fails the attempt naturally.
        let t2 = Instant::now();
        sweep_q.clear();
        for s in scratches.iter_mut() {
            sweep_q.append(&mut s.deferred);
        }
        sweep_q.sort_by_key(|ev| ev.time);
        let mut rng_sweep = Rng::stream(seed, pass, SWEEP_STREAM);
        for ev in sweep_q.iter().copied() {
            let now = ev.time;
            last_time = last_time.max(now.ticks());
            sweep_events += 1;
            if let Some(history) = &mut result.rounds {
                let row = now.round_equivalent().max(1);
                epochs.flush_rows_below(history, row, dynr.alive_informed, dynr.alive_messages);
            }
            match ev.event {
                Ev::Attempt { from, to, gen } => {
                    let connected = match mem.as_ref() {
                        Some(m) => matcher.try_connect(m, from, to),
                        None => matcher.try_connect(&dynr.topo, from, to),
                    };
                    if connected {
                        if tracing {
                            probe.record(&TraceEvent::Connect {
                                t: now.ticks(),
                                round: now.round_equivalent() as u64,
                                initiator: from.0,
                                acceptor: to.0,
                            });
                        }
                        partner[from.index()] = Some((to, true));
                        partner[to.index()] = Some((from, false));
                        let delay = sched.timing.latency(&mut rng_sweep);
                        scratches[from.index() / block].push(
                            now.after(delay),
                            Ev::Finish {
                                initiator: from,
                                acceptor: to,
                                gen_i: gen,
                                gen_a: gens[to.index()],
                            },
                        );
                    } else {
                        matcher.cancel(from);
                        result.dropped_proposals += 1;
                        if tracing {
                            probe.record(&TraceEvent::Reject {
                                t: now.ticks(),
                                round: now.round_equivalent() as u64,
                                from: from.0,
                                to: to.0,
                            });
                        }
                        let delay = sched
                            .timing
                            .refresh_interval(drift[from.index()], &mut rng_sweep);
                        scratches[from.index() / block].push(now.after(delay), Ev::Act(from, gen));
                    }
                }
                Ev::Finish {
                    initiator,
                    acceptor,
                    gen_i,
                    ..
                } => {
                    let (i, j) = (initiator.index(), acceptor.index());
                    let stats = if tracing {
                        sweep_moved.clear();
                        let stats = states.union_pair_stats_traced(i, j, &mut sweep_moved);
                        let round = now.round_equivalent() as u64;
                        for &(msg, forward) in sweep_moved.iter() {
                            let (from, to) = if forward {
                                (initiator.0, acceptor.0)
                            } else {
                                (acceptor.0, initiator.0)
                            };
                            probe.record(&TraceEvent::Transfer {
                                t: now.ticks(),
                                round,
                                from,
                                to,
                                msg,
                            });
                        }
                        stats
                    } else {
                        states.union_pair_stats(i, j)
                    };
                    dynr.alive_informed += stats.newly_full;
                    dynr.alive_messages += stats.moved;
                    result.total_connections += 1;
                    if stats.moved > 0 {
                        result.productive_connections += 1;
                        epochs.productive += 1;
                    } else {
                        result.wasted_connections += 1;
                    }
                    epochs.connections += 1;
                    matcher.release(initiator, acceptor);
                    partner[i] = None;
                    partner[j] = None;
                    let delay = sched.timing.refresh_interval(drift[i], &mut rng_sweep);
                    scratches[i / block].push(now.after(delay), Ev::Act(initiator, gen_i));
                    dynr.record(now);
                    if dynr.complete() {
                        result.completed = true;
                        result.virtual_time_to_completion = Some(now.ticks());
                        result.rounds_to_completion = Some(now.round_equivalent());
                        timings.sweep += t2.elapsed();
                        now_ticks = now.ticks();
                        break 'run;
                    }
                }
                Ev::Act(..) => unreachable!("act events are never deferred"),
            }
        }
        timings.sweep += t2.elapsed();
    }

    result.complete_nodes = dynr.alive_informed;
    result.virtual_time = now_ticks.min(max_time);
    result.rounds_executed = SimTime(result.virtual_time)
        .round_equivalent()
        .min(config.max_rounds);
    if let Some(history) = &mut result.rounds {
        epochs.flush_rows_below(
            history,
            result.rounds_executed + 1,
            dynr.alive_informed,
            dynr.alive_messages,
        );
    }
    result.membership = mem.as_ref().map(|m| m.finish(Some(dynr.topo.alive_mask())));
    result.dynamics = Some(dynr.finish(SimTime(result.virtual_time)));
    timings.events = scratches.iter().map(|s| s.events).sum::<u64>() + sweep_events;
    for (r, s) in scratches.iter().enumerate() {
        timings.events_by_region.add(r, s.events);
    }
    (result, timings)
}
