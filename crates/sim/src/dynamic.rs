//! Shared machinery for runs over a mutating network: mutation
//! application, churn-aware completion tracking, and the coverage
//! timeline. Both schedulers route their dynamics bookkeeping through
//! [`DynRun`] so the semantics — what a departure does to the completion
//! condition, what a rejoining source remembers — cannot diverge between
//! execution models.

use crate::metrics::{CoveragePoint, DynamicsStats};

use gossip_core::time::TICKS_PER_ROUND;
use gossip_core::{DynamicTopology, MessageMatrix, NodeId, SimTime, Topology};
use gossip_dynamics::{dynamics_seed, DynamicsModel, Mutation, MutationKind, MutationStream};
use gossip_telemetry::{MutateKind, Probe, TraceEvent};

/// The [`TraceEvent::Mutate`] record for an applied mutation, stamped with
/// the round (or slice pass) whose window it lands in.
pub(crate) fn mutate_event(mutation: &Mutation, round: u64) -> TraceEvent {
    let (kind, node, peer) = match &mutation.kind {
        MutationKind::Depart(u) => (MutateKind::Depart, u.0, None),
        MutationKind::Rejoin { node, .. } => (MutateKind::Rejoin, node.0, None),
        MutationKind::EdgeDown(a, b) => (MutateKind::EdgeDown, a.0, Some(b.0)),
        MutationKind::EdgeUp(a, b) => (MutateKind::EdgeUp, a.0, Some(b.0)),
        MutationKind::Rewire { node, .. } => (MutateKind::Rewire, node.0, None),
    };
    TraceEvent::Mutate {
        t: mutation.time.ticks(),
        round,
        kind,
        node,
        peer,
    }
}

/// Timeline points before thinning kicks in: beyond this, every other
/// point is dropped and the sampling stride doubles, so the timeline stays
/// bounded no matter how long the run or how hot the churn.
const TIMELINE_CAP: usize = 2048;

/// The dynamics-side state of one run: the mutating topology, the
/// mutation stream driving it, churn-aware counters, and accumulated
/// [`DynamicsStats`].
pub(crate) struct DynRun {
    pub topo: DynamicTopology,
    stream: Box<dyn MutationStream>,
    pub stats: DynamicsStats,
    /// Alive nodes currently holding the full message universe. The
    /// completion condition is `alive_informed == alive_count > 0`.
    pub alive_informed: usize,
    /// Messages held across currently-alive nodes.
    pub alive_messages: usize,
    /// Rounds per coverage-timeline sample window (doubles on thinning).
    timeline_stride: u64,
    /// High-water mark over all `record` times. The sliced engine replays
    /// worker logs and boundary sweeps after applying slice-start
    /// mutations, so its record calls are not globally time-ordered;
    /// clamping here keeps the coverage timeline monotone. The serial
    /// engine records in time order, so the clamp is a no-op there.
    record_hwm: u64,
}

impl DynRun {
    /// Instantiate `dynamics` for a run: both schedulers derive the
    /// stream seed identically from the engine seed, so sync and async
    /// runs of one experiment face the same mutation sequence.
    pub fn new(
        topology: &Topology,
        dynamics: &dyn DynamicsModel,
        seed: u64,
        states: &MessageMatrix,
    ) -> Self {
        dynamics
            .validate()
            .unwrap_or_else(|e| panic!("invalid dynamics config: {e}"));
        let n = topology.num_nodes();
        let alive_informed = states.full_count();
        let alive_messages = states.total_messages();
        let mut run = DynRun {
            topo: DynamicTopology::new(topology),
            stream: dynamics.stream(topology, dynamics_seed(seed)),
            stats: DynamicsStats {
                model: dynamics.name(),
                departures: 0,
                rejoins: 0,
                edge_downs: 0,
                edge_ups: 0,
                rewires: 0,
                severed_connections: 0,
                peak_alive: n,
                min_alive: n,
                final_alive: n,
                coverage_timeline: Vec::new(),
            },
            alive_informed,
            alive_messages,
            timeline_stride: 1,
            record_hwm: 0,
        };
        run.record(SimTime::ZERO);
        run
    }

    /// Virtual time of the next pending mutation, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.stream.peek_time()
    }

    /// Pop the next mutation without applying it (the event-driven
    /// scheduler intercepts departures to sever open connections first).
    pub fn pop(&mut self) -> Option<Mutation> {
        self.stream.next()
    }

    /// Is gossip complete right now? Every alive node holds the full
    /// universe, and the network is not empty.
    pub fn complete(&self) -> bool {
        self.topo.alive_count() > 0 && self.alive_informed == self.topo.alive_count()
    }

    /// Apply one mutation: the topology-side effect (one source of truth:
    /// [`MutationKind::apply`]) plus the gossip-side bookkeeping — message
    /// resets, alive/informed counters, stats, coverage timeline. Returns
    /// whether anything changed.
    pub fn apply(
        &mut self,
        mutation: &Mutation,
        states: &mut MessageMatrix,
        sources: &[NodeId],
    ) -> bool {
        if !mutation.kind.apply(&mut self.topo) {
            return false;
        }
        match &mutation.kind {
            MutationKind::Depart(u) => {
                self.stats.departures += 1;
                self.alive_informed -= states.is_full(u.index()) as usize;
                self.alive_messages -= states.count(u.index());
                self.stats.min_alive = self.stats.min_alive.min(self.topo.alive_count());
            }
            MutationKind::Rejoin {
                node,
                reset_messages,
            } => {
                self.stats.rejoins += 1;
                if *reset_messages {
                    states.reset(node.index());
                    // A source re-learns the rumors it originated: the
                    // rumor is its own data, so it cannot go permanently
                    // extinct while its source churns.
                    for (m, src) in sources.iter().enumerate() {
                        if src == node {
                            states.insert(node.index(), m);
                        }
                    }
                }
                self.alive_informed += states.is_full(node.index()) as usize;
                self.alive_messages += states.count(node.index());
                self.stats.peak_alive = self.stats.peak_alive.max(self.topo.alive_count());
            }
            MutationKind::EdgeDown(..) => self.stats.edge_downs += 1,
            MutationKind::EdgeUp(..) => self.stats.edge_ups += 1,
            MutationKind::Rewire { .. } => self.stats.rewires += 1,
        }
        self.record(mutation.time);
        true
    }

    /// Apply every pending mutation with time strictly before `horizon`.
    /// The synchronous scheduler calls this at each round boundary with
    /// the round's end time, so a mutation takes effect at the start of
    /// the round whose window contains it. Returns whether anything
    /// changed.
    pub fn drain_until(
        &mut self,
        horizon: SimTime,
        states: &mut MessageMatrix,
        sources: &[NodeId],
    ) -> bool {
        let mut changed = false;
        while self.stream.peek_time().is_some_and(|t| t < horizon) {
            let mutation = self.stream.next().expect("peeked mutation must pop");
            changed |= self.apply(&mutation, states, sources);
        }
        changed
    }

    /// [`drain_until`](Self::drain_until) with a `Mutate` trace record for
    /// every mutation that changed anything — the identical pop/apply
    /// sequence, so enabling tracing cannot alter the run.
    pub fn drain_until_probed(
        &mut self,
        horizon: SimTime,
        states: &mut MessageMatrix,
        sources: &[NodeId],
        probe: &mut dyn Probe,
        round: u64,
    ) -> bool {
        let mut changed = false;
        while self.stream.peek_time().is_some_and(|t| t < horizon) {
            let mutation = self.stream.next().expect("peeked mutation must pop");
            if self.apply(&mutation, states, sources) {
                changed = true;
                probe.record(&mutate_event(&mutation, round));
            }
        }
        changed
    }

    /// Sample the coverage timeline at `time` if the alive/informed pair
    /// changed since the last sample. Within one stride window the latest
    /// sample wins, and when the timeline outgrows its cap it is thinned
    /// to every other point with a doubled stride — bounded memory at
    /// full fidelity for short runs, coarse fidelity for long ones.
    pub fn record(&mut self, time: SimTime) {
        let alive = self.topo.alive_count();
        let informed_alive = self.alive_informed;
        self.record_hwm = self.record_hwm.max(time.ticks());
        let point = CoveragePoint {
            time: self.record_hwm,
            alive,
            informed_alive,
        };
        let timeline = &mut self.stats.coverage_timeline;
        if let Some(last) = timeline.last() {
            if last.alive == alive && last.informed_alive == informed_alive {
                return;
            }
        }
        let window = self.timeline_stride * TICKS_PER_ROUND;
        if timeline.len() > 1 {
            let last = timeline.last_mut().expect("len > 1");
            if last.time / window == point.time / window {
                *last = point;
                return;
            }
        }
        timeline.push(point);
        if timeline.len() >= TIMELINE_CAP {
            let mut i = 0usize;
            timeline.retain(|_| {
                let keep = i.is_multiple_of(2);
                i += 1;
                keep
            });
            self.timeline_stride *= 2;
        }
    }

    /// Finalize and hand over the stats.
    pub fn finish(mut self, end: SimTime) -> DynamicsStats {
        self.record(end);
        self.stats.final_alive = self.topo.alive_count();
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NoDynamics;

    impl DynamicsModel for NoDynamics {
        fn name(&self) -> String {
            "none".to_string()
        }
        fn validate(&self) -> Result<(), String> {
            Ok(())
        }
        fn stream(&self, _topology: &Topology, _seed: u64) -> Box<dyn MutationStream> {
            struct Empty;
            impl MutationStream for Empty {
                fn peek_time(&self) -> Option<SimTime> {
                    None
                }
                fn next(&mut self) -> Option<Mutation> {
                    None
                }
            }
            Box::new(Empty)
        }
    }

    fn setup(k: usize, sources: &[NodeId]) -> (DynRun, MessageMatrix) {
        let topo = Topology::ring(4);
        let mut states = MessageMatrix::new(4, k);
        for (m, s) in sources.iter().enumerate() {
            states.insert(s.index(), m);
        }
        let run = DynRun::new(&topo, &NoDynamics, 1, &states);
        (run, states)
    }

    fn at(time: u64, kind: MutationKind) -> Mutation {
        Mutation {
            time: SimTime(time),
            kind,
        }
    }

    #[test]
    fn departure_updates_completion_counters() {
        let sources = [NodeId(0)];
        let (mut run, mut states) = setup(1, &sources);
        assert_eq!(run.alive_informed, 1);
        assert!(!run.complete(), "3 uninformed nodes remain");

        // Killing the informed source leaves 3 alive, none informed.
        assert!(run.apply(
            &at(10, MutationKind::Depart(NodeId(0))),
            &mut states,
            &sources
        ));
        assert_eq!(run.alive_informed, 0);
        assert_eq!(run.alive_messages, 0);
        assert_eq!(run.stats.departures, 1);
        assert_eq!(run.stats.min_alive, 3);

        // Killing the remaining uninformed nodes can never complete the
        // run: an empty network is not a covered one.
        for u in 1..4 {
            run.apply(
                &at(20, MutationKind::Depart(NodeId(u))),
                &mut states,
                &sources,
            );
        }
        assert_eq!(run.topo.alive_count(), 0);
        assert!(!run.complete(), "empty networks never complete");
        assert_eq!(run.stats.min_alive, 0);
    }

    #[test]
    fn killing_the_uninformed_tail_completes() {
        let sources = [NodeId(0)];
        let (mut run, mut states) = setup(1, &sources);
        for u in 1..4 {
            run.apply(
                &at(5, MutationKind::Depart(NodeId(u))),
                &mut states,
                &sources,
            );
        }
        assert!(run.complete(), "the lone survivor holds everything");
    }

    #[test]
    fn rejoin_with_reset_relearns_only_owned_rumors() {
        let sources = [NodeId(0), NodeId(2)];
        let (mut run, mut states) = setup(2, &sources);
        // Node 2 learns rumor 0 as well, then churns with the Lose policy.
        states.insert(2, 0);
        run.alive_messages += 1;
        run.alive_informed += 1;

        run.apply(
            &at(5, MutationKind::Depart(NodeId(2))),
            &mut states,
            &sources,
        );
        assert_eq!(run.alive_informed, 0);
        assert!(run.apply(
            &at(
                9,
                MutationKind::Rejoin {
                    node: NodeId(2),
                    reset_messages: true
                }
            ),
            &mut states,
            &sources,
        ));
        // The learned rumor 0 is gone; its own rumor 1 is re-learned.
        assert!(!states.contains(2, 0));
        assert!(states.contains(2, 1));
        assert_eq!(run.stats.rejoins, 1);
        assert_eq!(run.alive_informed, 0);
        assert_eq!(run.stats.peak_alive, 4);
    }

    #[test]
    fn rejoin_with_keep_preserves_the_set() {
        let sources = [NodeId(0)];
        let (mut run, mut states) = setup(1, &sources);
        run.apply(
            &at(5, MutationKind::Depart(NodeId(0))),
            &mut states,
            &sources,
        );
        run.apply(
            &at(
                9,
                MutationKind::Rejoin {
                    node: NodeId(0),
                    reset_messages: false,
                },
            ),
            &mut states,
            &sources,
        );
        assert!(states.contains(0, 0));
        assert_eq!(run.alive_informed, 1);
    }

    #[test]
    fn duplicate_mutations_are_no_ops() {
        let sources = [NodeId(0)];
        let (mut run, mut states) = setup(1, &sources);
        assert!(run.apply(
            &at(1, MutationKind::Depart(NodeId(1))),
            &mut states,
            &sources
        ));
        assert!(!run.apply(
            &at(2, MutationKind::Depart(NodeId(1))),
            &mut states,
            &sources
        ));
        assert_eq!(run.stats.departures, 1);
        assert!(!run.apply(
            &at(3, MutationKind::EdgeDown(NodeId(0), NodeId(2))),
            &mut states,
            &sources,
        ));
        assert_eq!(run.stats.edge_downs, 0, "non-edges cannot fade");
    }

    #[test]
    fn timeline_records_changes_and_stays_bounded() {
        let sources = [NodeId(0)];
        let (mut run, mut states) = setup(1, &sources);
        assert_eq!(
            run.stats.coverage_timeline,
            vec![CoveragePoint {
                time: 0,
                alive: 4,
                informed_alive: 1
            }],
            "the t=0 anchor is always present"
        );
        // Flapping a node across many rounds grows the timeline, but the
        // cap thins it instead of letting it grow without bound.
        for i in 0..200_000u64 {
            let kind = if i % 2 == 0 {
                MutationKind::Depart(NodeId(1))
            } else {
                MutationKind::Rejoin {
                    node: NodeId(1),
                    reset_messages: false,
                }
            };
            run.apply(&at(i * TICKS_PER_ROUND * 2, kind), &mut states, &sources);
        }
        let timeline = &run.stats.coverage_timeline;
        assert!(timeline.len() < 4096, "timeline must stay bounded");
        assert!(timeline.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(timeline
            .iter()
            .all(|p| p.informed_alive <= p.alive && p.alive <= 4));
    }
}
