//! The scheduler abstraction and the synchronous round-based scheduler.
//!
//! A [`Scheduler`] owns the *execution model*: how virtual time advances,
//! when nodes advertise and scan, and when proposed connections resolve.
//! Protocols are scheduler-agnostic — they only ever see a
//! [`NodeCtx`] neighborhood snapshot — so the same protocol runs under
//! every scheduler.
//!
//! [`SyncScheduler`] is the engine of the PODC 2017 paper: globally
//! synchronized advertise → scan → connect → transfer rounds, with batch
//! connection resolution. Its behavior is the original `run()` loop,
//! bit-for-bit; existing round-count regression tests pin this down.

use crate::dynamic::DynRun;
use crate::metrics::RoundStats;
use crate::{SimConfig, SimResult};

use gossip_core::time::{SimTime, TICKS_PER_ROUND};
use gossip_core::{resolve_connections, Advertisement, Intent, MessageSet, NodeId, Rng, Topology};
use gossip_dynamics::DynamicsModel;
use gossip_protocols::{GossipProtocol, NodeCtx};

/// An execution model for gossip in the mobile telephone model: drives a
/// protocol over a topology and reports [`SimResult`] metrics. Identical
/// `(topology, protocol, sources, seed, config)` inputs must reproduce
/// identical results.
pub trait Scheduler {
    /// Stable scheduler name, used in CLI selection and reporting.
    fn name(&self) -> &'static str;

    /// Run one simulation: message `m` starts at `sources[m]`, and the run
    /// ends when every node holds every message or the `config` cap
    /// (rounds, or the equivalent virtual time) is hit.
    fn run(
        &self,
        topology: &Topology,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
    ) -> SimResult;

    /// [`run`](Self::run) over a network mutating under `dynamics`: the
    /// topology starts as `topology` and changes as the model's mutation
    /// stream fires. Completion is measured over currently-alive nodes,
    /// and [`SimResult::dynamics`] reports the churn-aware metrics. Both
    /// schedulers consume the identical stream for a given seed, so
    /// sync-vs-async comparisons stay apples-to-apples.
    fn run_dynamic(
        &self,
        topology: &Topology,
        dynamics: &dyn DynamicsModel,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
    ) -> SimResult;
}

/// Shared run setup: seed the per-node message sets from `sources` and
/// build a result skeleton (handles the already-complete-at-time-zero
/// case, e.g. a single-node topology).
pub(crate) fn init_run(
    topology: &Topology,
    protocol: &dyn GossipProtocol,
    scheduler: &str,
    sources: &[NodeId],
    seed: u64,
    config: &SimConfig,
) -> (Vec<MessageSet>, SimResult) {
    let n = topology.num_nodes();
    let k = sources.len();
    assert!(n > 0, "cannot simulate an empty topology");
    assert!(k > 0, "gossip needs at least one message");

    let mut states: Vec<MessageSet> = (0..n).map(|_| MessageSet::new(k)).collect();
    for (m, &node) in sources.iter().enumerate() {
        states[node.index()].insert(m);
    }

    let complete_nodes = states.iter().filter(|s| s.is_full()).count();
    let result = SimResult {
        topology: topology.name().to_string(),
        protocol: protocol.name().to_string(),
        scheduler: scheduler.to_string(),
        nodes: n,
        messages: k,
        seed,
        completed: complete_nodes == n,
        rounds_to_completion: if complete_nodes == n { Some(0) } else { None },
        rounds_executed: 0,
        virtual_time: 0,
        virtual_time_to_completion: if complete_nodes == n { Some(0) } else { None },
        total_connections: 0,
        productive_connections: 0,
        wasted_connections: 0,
        complete_nodes,
        dynamics: None,
        rounds: config.record_rounds.then(|| config.history_vec()),
    };
    (states, result)
}

/// The synchronous round-based scheduler from the PODC 2017 paper: every
/// round, all nodes advertise, scan, commit an intent, the batch matching
/// resolver forms connections, and matched pairs transfer — all against a
/// single global clock. Virtual time advances by
/// [`TICKS_PER_ROUND`] per round.
#[derive(Clone, Copy, Debug, Default)]
pub struct SyncScheduler;

impl Scheduler for SyncScheduler {
    fn name(&self) -> &'static str {
        "sync"
    }

    fn run(
        &self,
        topology: &Topology,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
    ) -> SimResult {
        let n = topology.num_nodes();
        let mut rng = Rng::new(seed);
        let (mut states, mut result) = init_run(topology, protocol, "sync", sources, seed, config);
        if result.completed {
            return result;
        }
        let mut complete_nodes = result.complete_nodes;

        let mut ads: Vec<Advertisement> = vec![Advertisement::default(); n];
        let mut intents: Vec<Intent> = vec![Intent::Idle; n];
        let mut ad_scratch: Vec<Advertisement> = Vec::new();

        for round in 1..=config.max_rounds {
            // Phase 1+2: advertise, then every node scans and commits an
            // intent.
            for (ad, state) in ads.iter_mut().zip(&states) {
                *ad = protocol.advertise(state, round as u64);
            }
            for u in 0..n {
                let id = NodeId(u as u32);
                let neighbors = topology.neighbors(id);
                ad_scratch.clear();
                ad_scratch.extend(neighbors.iter().map(|v| ads[v.index()]));
                let ctx = NodeCtx {
                    id,
                    salt: round as u64,
                    messages: &states[u],
                    neighbors,
                    neighbor_ads: &ad_scratch,
                };
                intents[u] = protocol.decide(&ctx, &mut rng);
            }

            // Phase 3: connection resolution (the matching).
            let connections = resolve_connections(topology, &intents, &mut rng);

            // Phase 4: push-pull transfer over each connection.
            let mut productive = 0;
            for c in &connections {
                let (a, b) = ordered_pair(&mut states, c.initiator.index(), c.acceptor.index());
                let before_a = a.is_full();
                let before_b = b.is_full();
                let moved = a.union_with(b) + b.union_with(a);
                if moved > 0 {
                    productive += 1;
                }
                complete_nodes += (a.is_full() && !before_a) as usize;
                complete_nodes += (b.is_full() && !before_b) as usize;
            }

            result.rounds_executed = round;
            result.total_connections += connections.len();
            result.productive_connections += productive;
            result.wasted_connections += connections.len() - productive;
            if let Some(history) = &mut result.rounds {
                history.push(RoundStats {
                    round,
                    connections: connections.len(),
                    productive,
                    complete_nodes,
                    messages_held: states.iter().map(MessageSet::count).sum(),
                });
            }

            if complete_nodes == n {
                result.completed = true;
                result.rounds_to_completion = Some(round);
                break;
            }
        }

        result.complete_nodes = complete_nodes;
        result.virtual_time = result.rounds_executed as u64 * TICKS_PER_ROUND;
        result.virtual_time_to_completion = result
            .rounds_to_completion
            .map(|r| r as u64 * TICKS_PER_ROUND);
        result
    }

    /// The dynamic-topology variant of the round loop. Mutations apply at
    /// round boundaries: before round `r` runs, every pending mutation
    /// with time in round `r`'s window `[(r-1)·TPR, r·TPR)` takes effect,
    /// so a departure "during" a round is visible for the whole round —
    /// the natural discretization of the continuous-time stream the
    /// asynchronous scheduler interleaves exactly. Within a round the
    /// graph is frozen, so scan, intent, and matching stay coherent.
    fn run_dynamic(
        &self,
        topology: &Topology,
        dynamics: &dyn DynamicsModel,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
    ) -> SimResult {
        let n = topology.num_nodes();
        let mut rng = Rng::new(seed);
        let (mut states, mut result) = init_run(topology, protocol, "sync", sources, seed, config);
        let mut dynr = DynRun::new(topology, dynamics, seed, &states);
        if result.completed {
            result.dynamics = Some(dynr.finish(SimTime::ZERO));
            return result;
        }

        let mut ads: Vec<Advertisement> = vec![Advertisement::default(); n];
        let mut intents: Vec<Intent> = vec![Intent::Idle; n];
        let mut ad_scratch: Vec<Advertisement> = Vec::new();

        for round in 1..=config.max_rounds {
            let horizon = SimTime(round as u64 * TICKS_PER_ROUND);
            let mutated = dynr.drain_until(horizon, &mut states, sources);
            if mutated && dynr.complete() {
                // Mutations alone completed gossip (the last uninformed
                // node departed, or an informed one rejoined an already-
                // covered network) — at the boundary closing round r-1.
                result.completed = true;
                result.rounds_to_completion = Some(round - 1);
                break;
            }

            // Phase 1+2 over alive nodes only: dead nodes neither
            // advertise nor scan, and active neighbor views exclude them.
            for u in 0..n {
                let id = NodeId(u as u32);
                if dynr.topo.is_alive(id) {
                    ads[u] = protocol.advertise(&states[u], round as u64);
                }
            }
            for u in 0..n {
                let id = NodeId(u as u32);
                if !dynr.topo.is_alive(id) {
                    intents[u] = Intent::Idle;
                    continue;
                }
                let neighbors = dynr.topo.active_neighbors(id);
                ad_scratch.clear();
                ad_scratch.extend(neighbors.iter().map(|v| ads[v.index()]));
                let ctx = NodeCtx {
                    id,
                    salt: round as u64,
                    messages: &states[u],
                    neighbors,
                    neighbor_ads: &ad_scratch,
                };
                intents[u] = protocol.decide(&ctx, &mut rng);
            }

            // Phases 3+4 against the active graph view.
            let connections = resolve_connections(&dynr.topo, &intents, &mut rng);
            let mut productive = 0;
            for c in &connections {
                let (a, b) = ordered_pair(&mut states, c.initiator.index(), c.acceptor.index());
                let before_a = a.is_full();
                let before_b = b.is_full();
                let moved = a.union_with(b) + b.union_with(a);
                if moved > 0 {
                    productive += 1;
                }
                // Both endpoints are alive: dead nodes cannot match.
                dynr.alive_informed += (a.is_full() && !before_a) as usize;
                dynr.alive_informed += (b.is_full() && !before_b) as usize;
                dynr.alive_messages += moved;
            }

            result.rounds_executed = round;
            result.total_connections += connections.len();
            result.productive_connections += productive;
            result.wasted_connections += connections.len() - productive;
            dynr.record(horizon);
            if let Some(history) = &mut result.rounds {
                history.push(RoundStats {
                    round,
                    connections: connections.len(),
                    productive,
                    complete_nodes: dynr.alive_informed,
                    messages_held: dynr.alive_messages,
                });
            }

            if dynr.complete() {
                result.completed = true;
                result.rounds_to_completion = Some(round);
                break;
            }
        }

        result.complete_nodes = dynr.alive_informed;
        result.virtual_time = result.rounds_executed as u64 * TICKS_PER_ROUND;
        result.virtual_time_to_completion = result
            .rounds_to_completion
            .map(|r| r as u64 * TICKS_PER_ROUND);
        result.dynamics = Some(dynr.finish(SimTime(result.virtual_time)));
        result
    }
}

/// Two distinct mutable references into `states`.
pub(crate) fn ordered_pair(
    states: &mut [MessageSet],
    i: usize,
    j: usize,
) -> (&mut MessageSet, &mut MessageSet) {
    assert_ne!(i, j, "a connection cannot join a node to itself");
    if i < j {
        let (lo, hi) = states.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = states.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}
