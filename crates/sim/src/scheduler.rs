//! The scheduler abstraction and the synchronous round-based scheduler.
//!
//! A [`Scheduler`] owns the *execution model*: how virtual time advances,
//! when nodes advertise and scan, and when proposed connections resolve.
//! Protocols are scheduler-agnostic — they only ever see a
//! [`NodeCtx`] neighborhood snapshot — so the same protocol runs under
//! every scheduler.
//!
//! [`SyncScheduler`] is the engine of the PODC 2017 paper: globally
//! synchronized advertise → scan → connect → transfer rounds, with batch
//! connection resolution. Its hot path is built for scale:
//!
//! - per-node gossip state lives in a [`MessageMatrix`]
//!   (struct-of-arrays), advertisements and intents in flat arrays;
//! - **all four phases** shard across `std::thread::scope` workers:
//!   advertise and scan/decide over contiguous node ranges, matching via
//!   the partitioned resolver
//!   ([`resolve_connections_sharded`](gossip_core::resolve_connections_sharded)),
//!   and transfer over the round's node-disjoint matched pairs
//!   ([`MessageMatrix::union_pairs_parallel`]);
//! - **determinism is independent of the thread count**: each node's
//!   protocol randomness comes from its own stream
//!   `Rng::stream(seed, round, node)` and each matching region from its
//!   own `(seed, round, region)` stream over a *fixed* partition
//!   ([`gossip_core::MATCH_REGIONS`] blocks, regardless of workers), and
//!   every merge happens in node order — so `threads = 1` and
//!   `threads = 64` produce byte-identical [`SimResult`]s. Round-count
//!   regressions pin this down.

use crate::dynamic::DynRun;
use crate::metrics::RoundStats;
use crate::{SimConfig, SimResult};

use std::time::{Duration, Instant};

use gossip_core::time::{SimTime, TICKS_PER_ROUND};
use gossip_core::topology::GraphView;
use gossip_core::{
    resolve_connections_sharded, Advertisement, Connection, Intent, MessageMatrix, NodeId,
    Resolution, Rng, Topology, TransferStats, MATCH_REGIONS,
};
use gossip_dynamics::DynamicsModel;
use gossip_membership::{Membership, MembershipConfig};
use gossip_protocols::{GossipProtocol, NodeCtx};
use gossip_telemetry::metrics::RegionLoad;
use gossip_telemetry::{BoundaryScope, NoopProbe, Probe, TraceEvent};

// The telemetry crate's fixed region width must mirror the engines' — the
// per-region load counters index one with the other's partition.
const _: () = assert!(MATCH_REGIONS == gossip_telemetry::metrics::REGIONS);

/// An execution model for gossip in the mobile telephone model: drives a
/// protocol over a topology and reports [`SimResult`] metrics. Identical
/// `(topology, protocol, sources, seed, config)` inputs must reproduce
/// identical results.
pub trait Scheduler {
    /// Stable scheduler name, used in CLI selection and reporting.
    fn name(&self) -> &'static str;

    /// Run one simulation under observation: message `m` starts at
    /// `sources[m]`, the run ends when every node holds every message or
    /// the `config` cap (rounds, or the equivalent virtual time) is hit,
    /// and `probe` observes every semantic event along the way. The
    /// determinism contract extends to observation: the `SimResult` is
    /// byte-identical whether the probe is enabled or not, and an enabled
    /// probe sees the identical event sequence at any thread count.
    fn run_probed(
        &self,
        topology: &Topology,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
        probe: &mut dyn Probe,
    ) -> SimResult;

    /// [`run_probed`](Self::run_probed) over a network mutating under
    /// `dynamics`: the topology starts as `topology` and changes as the
    /// model's mutation stream fires. Completion is measured over
    /// currently-alive nodes, and [`SimResult::dynamics`] reports the
    /// churn-aware metrics. Both schedulers consume the identical stream
    /// for a given seed, so sync-vs-async comparisons stay
    /// apples-to-apples.
    // The argument list *is* the determinism contract — every input that
    // shapes the run, plus the observer. Bundling them into a struct
    // would just rename the problem.
    #[allow(clippy::too_many_arguments)]
    fn run_dynamic_probed(
        &self,
        topology: &Topology,
        dynamics: &dyn DynamicsModel,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
        probe: &mut dyn Probe,
    ) -> SimResult;

    /// [`run_probed`](Self::run_probed) over *discovered* neighborhoods:
    /// a [`Membership`] overlay (bounded HyParView-style views with
    /// SWIM-style failure detection) sits between the underlay `topology`
    /// and the protocol, ticking at round (sync) or slice (async)
    /// boundaries, and the protocol gossips over its active views instead
    /// of the full topology. Deterministic at any thread count: the
    /// overlay only ever advances in serial engine sections.
    #[allow(clippy::too_many_arguments)]
    fn run_membership_probed(
        &self,
        topology: &Topology,
        membership: &MembershipConfig,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
        probe: &mut dyn Probe,
    ) -> SimResult;

    /// [`run_membership_probed`](Self::run_membership_probed) over a
    /// network mutating under `dynamics`: churned-out nodes linger in
    /// their peers' views until the failure detector suspects and evicts
    /// them, and rejoiners re-enter through the join step.
    #[allow(clippy::too_many_arguments)]
    fn run_dynamic_membership_probed(
        &self,
        topology: &Topology,
        dynamics: &dyn DynamicsModel,
        membership: &MembershipConfig,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
        probe: &mut dyn Probe,
    ) -> SimResult;

    /// [`run_probed`](Self::run_probed) without observation — the
    /// disabled probe costs one branch per round.
    fn run(
        &self,
        topology: &Topology,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
    ) -> SimResult {
        self.run_probed(topology, protocol, sources, seed, config, &mut NoopProbe)
    }

    /// [`run_dynamic_probed`](Self::run_dynamic_probed) without
    /// observation.
    fn run_dynamic(
        &self,
        topology: &Topology,
        dynamics: &dyn DynamicsModel,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
    ) -> SimResult {
        self.run_dynamic_probed(
            topology,
            dynamics,
            protocol,
            sources,
            seed,
            config,
            &mut NoopProbe,
        )
    }

    /// [`run_membership_probed`](Self::run_membership_probed) without
    /// observation.
    fn run_membership(
        &self,
        topology: &Topology,
        membership: &MembershipConfig,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
    ) -> SimResult {
        self.run_membership_probed(
            topology,
            membership,
            protocol,
            sources,
            seed,
            config,
            &mut NoopProbe,
        )
    }

    /// [`run_dynamic_membership_probed`](Self::run_dynamic_membership_probed)
    /// without observation.
    #[allow(clippy::too_many_arguments)]
    fn run_dynamic_membership(
        &self,
        topology: &Topology,
        dynamics: &dyn DynamicsModel,
        membership: &MembershipConfig,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
    ) -> SimResult {
        self.run_dynamic_membership_probed(
            topology,
            dynamics,
            membership,
            protocol,
            sources,
            seed,
            config,
            &mut NoopProbe,
        )
    }
}

/// Shared run setup: seed the per-node message matrix from `sources` and
/// build a result skeleton (handles the already-complete-at-time-zero
/// case, e.g. a single-node topology).
pub(crate) fn init_run(
    topology: &Topology,
    protocol: &dyn GossipProtocol,
    scheduler: &str,
    sources: &[NodeId],
    seed: u64,
    config: &SimConfig,
) -> (MessageMatrix, SimResult) {
    let n = topology.num_nodes();
    let k = sources.len();
    assert!(n > 0, "cannot simulate an empty topology");
    assert!(k > 0, "gossip needs at least one message");

    let mut states = MessageMatrix::new(n, k);
    for (m, &node) in sources.iter().enumerate() {
        states.insert(node.index(), m);
    }

    let complete_nodes = states.full_count();
    let result = SimResult {
        topology: topology.name().to_string(),
        protocol: protocol.name().to_string(),
        scheduler: scheduler.to_string(),
        nodes: n,
        messages: k,
        seed,
        completed: complete_nodes == n,
        rounds_to_completion: if complete_nodes == n { Some(0) } else { None },
        rounds_executed: 0,
        virtual_time: 0,
        virtual_time_to_completion: if complete_nodes == n { Some(0) } else { None },
        total_connections: 0,
        productive_connections: 0,
        wasted_connections: 0,
        complete_nodes,
        dropped_proposals: 0,
        dynamics: None,
        membership: None,
        rounds: config.record_rounds.then(|| config.history_vec()),
    };
    (states, result)
}

/// Wall-clock time spent in each phase of the synchronous round loop,
/// summed across rounds. Reported alongside (never inside) [`SimResult`]
/// — results must be a pure function of the inputs, and wall clocks are
/// anything but — so the bench harness can show *which* phase a thread
/// count is buying down.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Phase 1: refreshing every node's advertisement tag.
    pub advertise: Duration,
    /// Phase 2: every node scans neighbor tags and commits an intent.
    pub decide: Duration,
    /// Phase 3: the partitioned matching resolver.
    pub matching: Duration,
    /// Phase 4: push-pull transfer over the matched pairs.
    pub transfer: Duration,
    /// Connections formed per matching region (by initiator), summed over
    /// rounds — the resolver's load-balance instrument. Deterministic:
    /// the partition is fixed, never a function of the thread count.
    pub connections_by_region: RegionLoad,
    /// Proposals resolved inside their own region, summed over rounds.
    pub confined_proposals: u64,
    /// Proposals deferred to the serial boundary sweep, summed over
    /// rounds. A high boundary share means the fixed partition is
    /// fighting the topology.
    pub boundary_proposals: u64,
}

/// The synchronous round-based scheduler from the PODC 2017 paper: every
/// round, all nodes advertise, scan, commit an intent, the batch matching
/// resolver forms connections, and matched pairs transfer — all against a
/// single global clock. Virtual time advances by
/// [`TICKS_PER_ROUND`] per round.
///
/// `threads` shards the advertise and scan/decide phases over that many
/// workers. The engine is deterministic *at any thread count* (see the
/// module docs); `threads = 1` (the default) runs the identical
/// computation serially without spawning.
#[derive(Clone, Copy, Debug)]
pub struct SyncScheduler {
    /// Worker threads for the per-round node sweep; clamped to at least 1.
    pub threads: usize,
}

impl Default for SyncScheduler {
    fn default() -> Self {
        SyncScheduler { threads: 1 }
    }
}

impl SyncScheduler {
    /// A scheduler sharding its round loop over `threads` workers
    /// (0 is treated as 1).
    pub fn with_threads(threads: usize) -> Self {
        SyncScheduler {
            threads: threads.max(1),
        }
    }

    /// [`run`](Scheduler::run), additionally reporting how long each
    /// phase took ([`PhaseTimings`], summed over rounds). The `SimResult`
    /// is identical to `run`'s — the timings ride alongside so benches
    /// can break the wall time down per phase without perturbing
    /// deterministic output.
    pub fn run_with_timings(
        &self,
        topology: &Topology,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
    ) -> (SimResult, PhaseTimings) {
        self.run_with_timings_probed(topology, protocol, sources, seed, config, &mut NoopProbe)
    }

    /// [`run_with_timings`](Self::run_with_timings) under observation —
    /// the full-fidelity entry point the trait methods and the bench
    /// harness both funnel through.
    pub fn run_with_timings_probed(
        &self,
        topology: &Topology,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
        probe: &mut dyn Probe,
    ) -> (SimResult, PhaseTimings) {
        let n = topology.num_nodes();
        let mut timings = PhaseTimings::default();
        let (mut states, mut result) = init_run(topology, protocol, "sync", sources, seed, config);
        if result.completed {
            return (result, timings);
        }
        let mut complete_nodes = result.complete_nodes;
        let region_block = n.div_ceil(MATCH_REGIONS.clamp(1, n));

        let mut ads: Vec<Advertisement> = vec![Advertisement::default(); n];
        let mut intents: Vec<Intent> = vec![Intent::Idle; n];

        for round in 1..=config.max_rounds {
            // Phase 1: advertise — all tags published before anyone scans.
            let t0 = Instant::now();
            advertise_phase(
                None,
                protocol,
                &states,
                &mut ads,
                round as u64,
                self.threads,
            );

            // Phase 2: every node scans and commits an intent.
            let t1 = Instant::now();
            scan_phase(
                topology,
                None,
                protocol,
                &states,
                &ads,
                &mut intents,
                seed,
                round as u64,
                self.threads,
            );

            // Phase 3: connection resolution — the partitioned parallel
            // matching over a fixed region grid.
            let t2 = Instant::now();
            let resolution = resolve_connections_sharded(
                topology,
                &intents,
                seed,
                round as u64,
                MATCH_REGIONS,
                self.threads,
            );

            // Phase 4: push-pull transfer over the (node-disjoint)
            // matched pairs. The traced path runs the identical per-pair
            // unions serially so moved messages emit in deterministic
            // order — the pairs are node-disjoint, so the totals (and the
            // matrix) cannot differ from the parallel path.
            let t3 = Instant::now();
            let transfer = if probe.enabled() {
                emit_round_events(probe, topology, &intents, &resolution, round as u64);
                traced_transfer(probe, &mut states, &resolution.connections, round as u64)
            } else {
                states.union_pairs_parallel(&resolution.connections, self.threads)
            };
            let t4 = Instant::now();

            timings.advertise += t1 - t0;
            timings.decide += t2 - t1;
            timings.matching += t3 - t2;
            timings.transfer += t4 - t3;
            for c in &resolution.connections {
                timings
                    .connections_by_region
                    .add(c.initiator.index() / region_block, 1);
            }
            timings.confined_proposals += resolution.confined_proposals;
            timings.boundary_proposals += resolution.boundary_proposals;

            complete_nodes += transfer.newly_full;
            let formed = resolution.connections.len();
            result.rounds_executed = round;
            result.total_connections += formed;
            result.productive_connections += transfer.productive;
            result.wasted_connections += formed - transfer.productive;
            result.dropped_proposals += resolution.dropped_proposals;
            if let Some(history) = &mut result.rounds {
                history.push(RoundStats {
                    round,
                    connections: formed,
                    productive: transfer.productive,
                    complete_nodes,
                    messages_held: states.total_messages(),
                });
            }

            if probe.enabled() {
                probe.record(&TraceEvent::Boundary {
                    t: round as u64 * TICKS_PER_ROUND,
                    round: round as u64,
                    scope: BoundaryScope::Round,
                });
            }

            if complete_nodes == n {
                result.completed = true;
                result.rounds_to_completion = Some(round);
                break;
            }
        }

        result.complete_nodes = complete_nodes;
        result.virtual_time = result.rounds_executed as u64 * TICKS_PER_ROUND;
        result.virtual_time_to_completion = result
            .rounds_to_completion
            .map(|r| r as u64 * TICKS_PER_ROUND);
        (result, timings)
    }
}

/// Emit one synchronous round's connection-lifecycle events: every
/// proposal in node order (each immediately followed by its `Drop` if it
/// crossed a non-edge), every formed connection in resolution order, then
/// a `Reject` for each proposer that ended the round unmatched (rebound
/// included — a proposer that connected to *any* listener succeeded).
/// Pure reads of already-resolved state: tracing cannot perturb the run.
fn emit_round_events<G: GraphView + ?Sized>(
    probe: &mut dyn Probe,
    graph: &G,
    intents: &[Intent],
    resolution: &Resolution,
    round: u64,
) {
    let t = round * TICKS_PER_ROUND;
    for (u, intent) in intents.iter().enumerate() {
        let Intent::Propose(v) = intent else { continue };
        probe.record(&TraceEvent::Propose {
            t,
            round,
            from: u as u32,
            to: v.0,
        });
        if !graph.are_neighbors(NodeId(u as u32), *v) {
            probe.record(&TraceEvent::Drop {
                t,
                round,
                from: u as u32,
                to: v.0,
            });
        }
    }
    let mut initiated = vec![false; intents.len()];
    for c in &resolution.connections {
        initiated[c.initiator.index()] = true;
        probe.record(&TraceEvent::Connect {
            t,
            round,
            initiator: c.initiator.0,
            acceptor: c.acceptor.0,
        });
    }
    for (u, intent) in intents.iter().enumerate() {
        let Intent::Propose(v) = intent else { continue };
        if !initiated[u] {
            probe.record(&TraceEvent::Reject {
                t,
                round,
                from: u as u32,
                to: v.0,
            });
        }
    }
}

/// The transfer phase under observation: the same per-pair unions as
/// [`MessageMatrix::union_pairs_parallel`], run serially so each moved
/// message emits in connection-then-ascending-message order. Identical
/// totals — the pairs are node-disjoint, so processing order is
/// irrelevant to the outcome.
fn traced_transfer(
    probe: &mut dyn Probe,
    states: &mut MessageMatrix,
    connections: &[Connection],
    round: u64,
) -> TransferStats {
    let t = round * TICKS_PER_ROUND;
    let mut total = TransferStats::default();
    let mut moved: Vec<(u32, bool)> = Vec::new();
    for c in connections {
        moved.clear();
        total +=
            states.union_pair_stats_traced(c.initiator.index(), c.acceptor.index(), &mut moved);
        for &(msg, forward) in &moved {
            let (from, to) = if forward {
                (c.initiator.0, c.acceptor.0)
            } else {
                (c.acceptor.0, c.initiator.0)
            };
            probe.record(&TraceEvent::Transfer {
                t,
                round,
                from,
                to,
                msg,
            });
        }
    }
    total
}

/// One worker's advertise pass over its node range: refresh the tag of
/// every (alive) node in `base..base + out.len()`.
fn advertise_range(
    base: usize,
    out: &mut [Advertisement],
    alive: Option<&[bool]>,
    protocol: &dyn GossipProtocol,
    states: &MessageMatrix,
    round: u64,
) {
    for (i, ad) in out.iter_mut().enumerate() {
        let u = base + i;
        if alive.is_none_or(|mask| mask[u]) {
            *ad = protocol.advertise(states.view(u), round);
        }
    }
}

/// One worker's scan/decide pass over its node range. Every node draws
/// from its own `(seed, round, node)` stream, so the result is a pure
/// function of the inputs — independent of which worker runs it, in what
/// order, or how many workers exist.
#[allow(clippy::too_many_arguments)] // one flat hot-path call, not an API
fn decide_range<G: GraphView + ?Sized>(
    base: usize,
    out: &mut [Intent],
    graph: &G,
    alive: Option<&[bool]>,
    protocol: &dyn GossipProtocol,
    states: &MessageMatrix,
    ads: &[Advertisement],
    seed: u64,
    round: u64,
) {
    let mut ad_scratch: Vec<Advertisement> = Vec::new();
    for (i, slot) in out.iter_mut().enumerate() {
        let u = base + i;
        if !alive.is_none_or(|mask| mask[u]) {
            *slot = Intent::Idle;
            continue;
        }
        let id = NodeId(u as u32);
        let neighbors = graph.neighbors(id);
        ad_scratch.clear();
        ad_scratch.extend(neighbors.iter().map(|v| ads[v.index()]));
        let ctx = NodeCtx {
            id,
            salt: round,
            messages: states.view(u),
            neighbors,
            neighbor_ads: &ad_scratch,
        };
        let mut rng = Rng::stream(seed, round, u as u64);
        *slot = protocol.decide(&ctx, &mut rng);
    }
}

/// Phase 1 of a round — refresh every tag — sharded over `threads`
/// workers in contiguous node ranges. Must complete before anyone scans:
/// all tags of round `r` are published before any node reads one.
fn advertise_phase(
    alive: Option<&[bool]>,
    protocol: &dyn GossipProtocol,
    states: &MessageMatrix,
    ads: &mut [Advertisement],
    round: u64,
    threads: usize,
) {
    let n = ads.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        advertise_range(0, ads, alive, protocol, states, round);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (w, ads_chunk) in ads.chunks_mut(chunk).enumerate() {
            s.spawn(move || advertise_range(w * chunk, ads_chunk, alive, protocol, states, round));
        }
    });
}

/// Phase 2 of a round — every node scans the published tags and commits
/// an intent — sharded over `threads` workers in contiguous node ranges.
/// Intents land in node-indexed slots, which *is* the deterministic
/// node-order merge.
#[allow(clippy::too_many_arguments)]
fn scan_phase<G: GraphView + Sync + ?Sized>(
    graph: &G,
    alive: Option<&[bool]>,
    protocol: &dyn GossipProtocol,
    states: &MessageMatrix,
    ads: &[Advertisement],
    intents: &mut [Intent],
    seed: u64,
    round: u64,
    threads: usize,
) {
    let n = intents.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        decide_range(0, intents, graph, alive, protocol, states, ads, seed, round);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (w, intents_chunk) in intents.chunks_mut(chunk).enumerate() {
            s.spawn(move || {
                decide_range(
                    w * chunk,
                    intents_chunk,
                    graph,
                    alive,
                    protocol,
                    states,
                    ads,
                    seed,
                    round,
                )
            });
        }
    });
}

impl Scheduler for SyncScheduler {
    fn name(&self) -> &'static str {
        "sync"
    }

    fn run_probed(
        &self,
        topology: &Topology,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
        probe: &mut dyn Probe,
    ) -> SimResult {
        self.run_with_timings_probed(topology, protocol, sources, seed, config, probe)
            .0
    }

    /// The dynamic-topology variant of the round loop. Mutations apply at
    /// round boundaries: before round `r` runs, every pending mutation
    /// with time in round `r`'s window `[(r-1)·TPR, r·TPR)` takes effect,
    /// so a departure "during" a round is visible for the whole round —
    /// the natural discretization of the continuous-time stream the
    /// asynchronous scheduler interleaves exactly. Within a round the
    /// graph is frozen, so scan, intent, and matching stay coherent — and
    /// the sharded decide phase reads it concurrently exactly like the
    /// static engine, skipping dead nodes via the alive mask.
    fn run_dynamic_probed(
        &self,
        topology: &Topology,
        dynamics: &dyn DynamicsModel,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
        probe: &mut dyn Probe,
    ) -> SimResult {
        let n = topology.num_nodes();
        let (mut states, mut result) = init_run(topology, protocol, "sync", sources, seed, config);
        let mut dynr = DynRun::new(topology, dynamics, seed, &states);
        if result.completed {
            result.dynamics = Some(dynr.finish(SimTime::ZERO));
            return result;
        }
        let mut ads: Vec<Advertisement> = vec![Advertisement::default(); n];
        let mut intents: Vec<Intent> = vec![Intent::Idle; n];

        for round in 1..=config.max_rounds {
            let horizon = SimTime(round as u64 * TICKS_PER_ROUND);
            let mutated = if probe.enabled() {
                dynr.drain_until_probed(horizon, &mut states, sources, probe, round as u64)
            } else {
                dynr.drain_until(horizon, &mut states, sources)
            };
            if mutated && dynr.complete() {
                // Mutations alone completed gossip (the last uninformed
                // node departed, or an informed one rejoined an already-
                // covered network) — at the boundary closing round r-1.
                result.completed = true;
                result.rounds_to_completion = Some(round - 1);
                break;
            }

            // Phases 1+2 over alive nodes only: dead nodes neither
            // advertise nor scan, and active neighbor views exclude them.
            let alive = Some(dynr.topo.alive_mask());
            advertise_phase(
                alive,
                protocol,
                &states,
                &mut ads,
                round as u64,
                self.threads,
            );
            scan_phase(
                &dynr.topo,
                alive,
                protocol,
                &states,
                &ads,
                &mut intents,
                seed,
                round as u64,
                self.threads,
            );

            // Phases 3+4 against the active graph view — the identical
            // sharded resolver and transfer as the static loop. Both
            // endpoints of every pair are alive: dead nodes cannot match.
            let resolution = resolve_connections_sharded(
                &dynr.topo,
                &intents,
                seed,
                round as u64,
                MATCH_REGIONS,
                self.threads,
            );
            let transfer = if probe.enabled() {
                emit_round_events(probe, &dynr.topo, &intents, &resolution, round as u64);
                traced_transfer(probe, &mut states, &resolution.connections, round as u64)
            } else {
                states.union_pairs_parallel(&resolution.connections, self.threads)
            };
            dynr.alive_informed += transfer.newly_full;
            dynr.alive_messages += transfer.moved;

            let formed = resolution.connections.len();
            result.rounds_executed = round;
            result.total_connections += formed;
            result.productive_connections += transfer.productive;
            result.wasted_connections += formed - transfer.productive;
            result.dropped_proposals += resolution.dropped_proposals;
            dynr.record(horizon);
            if let Some(history) = &mut result.rounds {
                history.push(RoundStats {
                    round,
                    connections: formed,
                    productive: transfer.productive,
                    complete_nodes: dynr.alive_informed,
                    messages_held: dynr.alive_messages,
                });
            }

            if probe.enabled() {
                probe.record(&TraceEvent::Boundary {
                    t: round as u64 * TICKS_PER_ROUND,
                    round: round as u64,
                    scope: BoundaryScope::Round,
                });
            }

            if dynr.complete() {
                result.completed = true;
                result.rounds_to_completion = Some(round);
                break;
            }
        }

        result.complete_nodes = dynr.alive_informed;
        result.virtual_time = result.rounds_executed as u64 * TICKS_PER_ROUND;
        result.virtual_time_to_completion = result
            .rounds_to_completion
            .map(|r| r as u64 * TICKS_PER_ROUND);
        result.dynamics = Some(dynr.finish(SimTime(result.virtual_time)));
        result
    }

    /// The membership variant of the static round loop: the overlay ticks
    /// serially at the top of every round (join → shuffle/promote → probe
    /// → evict, one `(seed, round, MEMBERSHIP_STREAM)` stream walked in
    /// node order), then the identical sharded phases run with the
    /// overlay's active views as the graph. Scan, matching, and event
    /// emission all read the same frozen views, so the round is coherent
    /// and deterministic at any thread count.
    fn run_membership_probed(
        &self,
        topology: &Topology,
        membership: &MembershipConfig,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
        probe: &mut dyn Probe,
    ) -> SimResult {
        let n = topology.num_nodes();
        let (mut states, mut result) = init_run(topology, protocol, "sync", sources, seed, config);
        let mut mem = Membership::new(n, *membership);
        if result.completed {
            result.membership = Some(mem.finish(None));
            return result;
        }
        let mut complete_nodes = result.complete_nodes;
        let mut ads: Vec<Advertisement> = vec![Advertisement::default(); n];
        let mut intents: Vec<Intent> = vec![Intent::Idle; n];

        for round in 1..=config.max_rounds {
            mem.tick(topology, None, seed, round as u64, probe);

            advertise_phase(
                None,
                protocol,
                &states,
                &mut ads,
                round as u64,
                self.threads,
            );
            scan_phase(
                &mem,
                None,
                protocol,
                &states,
                &ads,
                &mut intents,
                seed,
                round as u64,
                self.threads,
            );
            let resolution = resolve_connections_sharded(
                &mem,
                &intents,
                seed,
                round as u64,
                MATCH_REGIONS,
                self.threads,
            );
            let transfer = if probe.enabled() {
                emit_round_events(probe, &mem, &intents, &resolution, round as u64);
                traced_transfer(probe, &mut states, &resolution.connections, round as u64)
            } else {
                states.union_pairs_parallel(&resolution.connections, self.threads)
            };

            complete_nodes += transfer.newly_full;
            let formed = resolution.connections.len();
            result.rounds_executed = round;
            result.total_connections += formed;
            result.productive_connections += transfer.productive;
            result.wasted_connections += formed - transfer.productive;
            result.dropped_proposals += resolution.dropped_proposals;
            if let Some(history) = &mut result.rounds {
                history.push(RoundStats {
                    round,
                    connections: formed,
                    productive: transfer.productive,
                    complete_nodes,
                    messages_held: states.total_messages(),
                });
            }

            if probe.enabled() {
                probe.record(&TraceEvent::Boundary {
                    t: round as u64 * TICKS_PER_ROUND,
                    round: round as u64,
                    scope: BoundaryScope::Round,
                });
            }

            if complete_nodes == n {
                result.completed = true;
                result.rounds_to_completion = Some(round);
                break;
            }
        }

        result.complete_nodes = complete_nodes;
        result.virtual_time = result.rounds_executed as u64 * TICKS_PER_ROUND;
        result.virtual_time_to_completion = result
            .rounds_to_completion
            .map(|r| r as u64 * TICKS_PER_ROUND);
        result.membership = Some(mem.finish(None));
        result
    }

    /// Membership over a mutating network: mutations drain at the round
    /// boundary first (fixing the alive set and underlay for the round),
    /// then the overlay ticks against them — so a departure is visible to
    /// the failure detector the round it happens, and a rejoiner can
    /// re-join the same round it returns.
    fn run_dynamic_membership_probed(
        &self,
        topology: &Topology,
        dynamics: &dyn DynamicsModel,
        membership: &MembershipConfig,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
        probe: &mut dyn Probe,
    ) -> SimResult {
        let n = topology.num_nodes();
        let (mut states, mut result) = init_run(topology, protocol, "sync", sources, seed, config);
        let mut dynr = DynRun::new(topology, dynamics, seed, &states);
        let mut mem = Membership::new(n, *membership);
        if result.completed {
            result.membership = Some(mem.finish(Some(dynr.topo.alive_mask())));
            result.dynamics = Some(dynr.finish(SimTime::ZERO));
            return result;
        }
        let mut ads: Vec<Advertisement> = vec![Advertisement::default(); n];
        let mut intents: Vec<Intent> = vec![Intent::Idle; n];

        for round in 1..=config.max_rounds {
            let horizon = SimTime(round as u64 * TICKS_PER_ROUND);
            let mutated = if probe.enabled() {
                dynr.drain_until_probed(horizon, &mut states, sources, probe, round as u64)
            } else {
                dynr.drain_until(horizon, &mut states, sources)
            };
            if mutated && dynr.complete() {
                result.completed = true;
                result.rounds_to_completion = Some(round - 1);
                break;
            }

            let alive = Some(dynr.topo.alive_mask());
            mem.tick(&dynr.topo, alive, seed, round as u64, probe);

            advertise_phase(
                alive,
                protocol,
                &states,
                &mut ads,
                round as u64,
                self.threads,
            );
            scan_phase(
                &mem,
                alive,
                protocol,
                &states,
                &ads,
                &mut intents,
                seed,
                round as u64,
                self.threads,
            );
            let resolution = resolve_connections_sharded(
                &mem,
                &intents,
                seed,
                round as u64,
                MATCH_REGIONS,
                self.threads,
            );
            let transfer = if probe.enabled() {
                emit_round_events(probe, &mem, &intents, &resolution, round as u64);
                traced_transfer(probe, &mut states, &resolution.connections, round as u64)
            } else {
                states.union_pairs_parallel(&resolution.connections, self.threads)
            };
            dynr.alive_informed += transfer.newly_full;
            dynr.alive_messages += transfer.moved;

            let formed = resolution.connections.len();
            result.rounds_executed = round;
            result.total_connections += formed;
            result.productive_connections += transfer.productive;
            result.wasted_connections += formed - transfer.productive;
            result.dropped_proposals += resolution.dropped_proposals;
            dynr.record(horizon);
            if let Some(history) = &mut result.rounds {
                history.push(RoundStats {
                    round,
                    connections: formed,
                    productive: transfer.productive,
                    complete_nodes: dynr.alive_informed,
                    messages_held: dynr.alive_messages,
                });
            }

            if probe.enabled() {
                probe.record(&TraceEvent::Boundary {
                    t: round as u64 * TICKS_PER_ROUND,
                    round: round as u64,
                    scope: BoundaryScope::Round,
                });
            }

            if dynr.complete() {
                result.completed = true;
                result.rounds_to_completion = Some(round);
                break;
            }
        }

        result.complete_nodes = dynr.alive_informed;
        result.virtual_time = result.rounds_executed as u64 * TICKS_PER_ROUND;
        result.virtual_time_to_completion = result
            .rounds_to_completion
            .map(|r| r as u64 * TICKS_PER_ROUND);
        result.membership = Some(mem.finish(Some(dynr.topo.alive_mask())));
        result.dynamics = Some(dynr.finish(SimTime(result.virtual_time)));
        result
    }
}
