//! Deterministic round-based simulation engine for gossip in the mobile
//! telephone model.
//!
//! The engine drives any [`GossipProtocol`] over any [`Topology`] through
//! the model's round structure — advertise → scan → connect → transfer —
//! and records the metrics the paper analyzes: rounds to completion,
//! connections formed, and how many of those connections were wasted.
//!
//! Everything is deterministic given the seed: the same `(topology,
//! protocol, sources, seed)` quadruple always reproduces the same run,
//! which is what makes regression tests on round counts possible.

mod metrics;

pub use metrics::{RoundStats, SimResult};

use gossip_core::{resolve_connections, Advertisement, Intent, MessageSet, NodeId, Rng, Topology};
use gossip_protocols::{GossipProtocol, NodeCtx};

/// Engine knobs independent of topology and protocol.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Hard cap on rounds; the run stops uncompleted when it is reached.
    pub max_rounds: usize,
    /// Record a [`RoundStats`] entry per round (costs memory on long runs).
    pub record_rounds: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_rounds: 100_000,
            record_rounds: false,
        }
    }
}

/// Place `k` message sources uniformly at random on distinct nodes
/// (wrapping onto shared nodes only when `k > n`). Deterministic in `rng`.
pub fn random_sources(n: usize, k: usize, rng: &mut Rng) -> Vec<NodeId> {
    assert!(n > 0, "cannot place sources on an empty topology");
    let mut ids: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut ids);
    (0..k).map(|m| NodeId(ids[m % n])).collect()
}

/// Run one simulation: message `m` starts at `sources[m]`, and the run ends
/// when every node holds every message or `config.max_rounds` is hit.
pub fn run(
    topology: &Topology,
    protocol: &dyn GossipProtocol,
    sources: &[NodeId],
    seed: u64,
    config: &SimConfig,
) -> SimResult {
    let n = topology.num_nodes();
    let k = sources.len();
    assert!(n > 0, "cannot simulate an empty topology");
    assert!(k > 0, "gossip needs at least one message");

    let mut rng = Rng::new(seed);
    let mut states: Vec<MessageSet> = (0..n).map(|_| MessageSet::new(k)).collect();
    for (m, &node) in sources.iter().enumerate() {
        states[node.index()].insert(m);
    }

    let mut complete_nodes = states.iter().filter(|s| s.is_full()).count();
    let mut result = SimResult {
        topology: topology.name().to_string(),
        protocol: protocol.name().to_string(),
        nodes: n,
        messages: k,
        seed,
        completed: complete_nodes == n,
        rounds_to_completion: if complete_nodes == n { Some(0) } else { None },
        rounds_executed: 0,
        total_connections: 0,
        productive_connections: 0,
        wasted_connections: 0,
        complete_nodes,
        rounds: config.record_rounds.then(Vec::new),
    };
    if result.completed {
        return result;
    }

    let mut ads: Vec<Advertisement> = vec![Advertisement::default(); n];
    let mut intents: Vec<Intent> = vec![Intent::Idle; n];
    let mut ad_scratch: Vec<Advertisement> = Vec::new();

    for round in 1..=config.max_rounds {
        // Phase 1+2: advertise, then every node scans and commits an intent.
        for (ad, state) in ads.iter_mut().zip(&states) {
            *ad = protocol.advertise(state, round);
        }
        for u in 0..n {
            let id = NodeId(u as u32);
            let neighbors = topology.neighbors(id);
            ad_scratch.clear();
            ad_scratch.extend(neighbors.iter().map(|v| ads[v.index()]));
            let ctx = NodeCtx {
                id,
                round,
                messages: &states[u],
                neighbors,
                neighbor_ads: &ad_scratch,
            };
            intents[u] = protocol.decide(&ctx, &mut rng);
        }

        // Phase 3: connection resolution (the matching).
        let connections = resolve_connections(topology, &intents, &mut rng);

        // Phase 4: push-pull transfer over each connection.
        let mut productive = 0;
        for c in &connections {
            let (a, b) = ordered_pair(&mut states, c.initiator.index(), c.acceptor.index());
            let before_a = a.is_full();
            let before_b = b.is_full();
            let moved = a.union_with(b) + b.union_with(a);
            if moved > 0 {
                productive += 1;
            }
            complete_nodes += (a.is_full() && !before_a) as usize;
            complete_nodes += (b.is_full() && !before_b) as usize;
        }

        result.rounds_executed = round;
        result.total_connections += connections.len();
        result.productive_connections += productive;
        result.wasted_connections += connections.len() - productive;
        if let Some(history) = &mut result.rounds {
            history.push(RoundStats {
                round,
                connections: connections.len(),
                productive,
                complete_nodes,
                messages_held: states.iter().map(MessageSet::count).sum(),
            });
        }

        if complete_nodes == n {
            result.completed = true;
            result.rounds_to_completion = Some(round);
            break;
        }
    }

    result.complete_nodes = complete_nodes;
    result
}

/// Two distinct mutable references into `states`.
fn ordered_pair(
    states: &mut [MessageSet],
    i: usize,
    j: usize,
) -> (&mut MessageSet, &mut MessageSet) {
    assert_ne!(i, j, "a connection cannot join a node to itself");
    if i < j {
        let (lo, hi) = states.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = states.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_protocols::UniformGossip;

    #[test]
    fn single_node_completes_instantly() {
        let topo = Topology::complete(1);
        let result = run(
            &topo,
            &UniformGossip,
            &[NodeId(0)],
            1,
            &SimConfig::default(),
        );
        assert!(result.completed);
        assert_eq!(result.rounds_to_completion, Some(0));
        assert_eq!(result.total_connections, 0);
    }

    #[test]
    fn same_seed_reproduces_run_exactly() {
        let topo = Topology::grid(30);
        let cfg = SimConfig {
            record_rounds: true,
            ..SimConfig::default()
        };
        let mut rng = Rng::new(5);
        let sources = random_sources(30, 3, &mut rng);
        let a = run(&topo, &UniformGossip, &sources, 77, &cfg);
        let b = run(&topo, &UniformGossip, &sources, 77, &cfg);
        assert_eq!(a.rounds_to_completion, b.rounds_to_completion);
        assert_eq!(a.total_connections, b.total_connections);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn round_cap_stops_uncompleted_runs() {
        // Two isolated components can never finish 1-gossip.
        let topo = Topology::from_edges("split", 4, &[(0, 1), (2, 3)]);
        let cfg = SimConfig {
            max_rounds: 25,
            ..SimConfig::default()
        };
        let result = run(&topo, &UniformGossip, &[NodeId(0)], 3, &cfg);
        assert!(!result.completed);
        assert_eq!(result.rounds_executed, 25);
        assert_eq!(result.rounds_to_completion, None);
        assert!(result.complete_nodes < 4);
    }

    #[test]
    fn connection_accounting_is_consistent() {
        let topo = Topology::ring(16);
        let result = run(
            &topo,
            &UniformGossip,
            &[NodeId(0)],
            9,
            &SimConfig::default(),
        );
        assert!(result.completed);
        assert_eq!(
            result.total_connections,
            result.productive_connections + result.wasted_connections
        );
        // With a 1-message universe a productive connection informs exactly
        // one new node, so reaching 15 more nodes takes >= 15 of them; and
        // coverage at most doubles per round, so 1 -> 16 takes >= 4 rounds.
        assert!(result.productive_connections >= 15);
        assert!(result.rounds_to_completion.unwrap() >= 4);
    }
}
