//! Deterministic simulation engines for gossip in the mobile telephone
//! model, behind a pluggable [`Scheduler`] abstraction.
//!
//! Two execution models drive any [`gossip_protocols::GossipProtocol`]
//! over any [`Topology`]:
//!
//! - [`SyncScheduler`] — the PODC 2017 round structure: globally
//!   synchronized advertise → scan → connect → transfer rounds with batch
//!   connection resolution. [`run`] is a convenience wrapper for it.
//! - [`AsyncScheduler`] — the asynchronous variant (Newport, Weaver &
//!   Zheng 2021): per-node clock drift, randomized advertisement refresh
//!   intervals, and variable connection/transfer latency, resolving
//!   proposals incrementally as their events fire. Its event loop is
//!   time-sliced and sharded over `threads` workers (fixed node-region
//!   event partition, per-`(seed, slice, region)` RNG streams, serial
//!   boundary sweep — see the `sliced` module), deterministic at any
//!   thread count; the original single-heap loop survives as
//!   [`AsyncScheduler::run_serial`], the test oracle.
//!
//! Both record the metrics the papers analyze — rounds (or virtual time)
//! to completion, connections formed, and how many of those connections
//! were wasted — and both are deterministic given the seed: the same
//! `(topology, protocol, sources, seed, config)` tuple always reproduces
//! the same run, which is what makes regression tests on round counts and
//! completion times possible.
//!
//! Both schedulers also run over **changing networks**: pass a
//! [`gossip_dynamics::DynamicsModel`] (churn, edge fading, waypoint
//! mobility) to [`Scheduler::run_dynamic`] and the engine consumes its
//! deterministic mutation stream — at round boundaries under the
//! synchronous scheduler, at slice boundaries (serially, before the
//! slice's events run) under the asynchronous one. Completion is then
//! measured over currently-alive
//! nodes, and [`SimResult::dynamics`] carries the churn-aware metrics
//! ([`DynamicsStats`]): departures, rejoins, severed connections,
//! peak/min alive counts, and a [`CoveragePoint`] timeline.
//!
//! Both schedulers can also gossip over **discovered** rather than given
//! neighborhoods: [`Scheduler::run_membership`] (and the dynamic
//! variant) threads a [`Membership`] overlay — bounded HyParView-style
//! active/passive views with SWIM-style failure detection, from the
//! `gossip-membership` crate — between the underlay and the protocol,
//! ticking it serially at round (sync) or slice (async) boundaries so
//! determinism at any thread count is preserved.
//! [`SimResult::membership`] then carries the overlay's metrics
//! ([`MembershipStats`]).

mod dynamic;
mod event_driven;
mod metrics;
mod scheduler;
mod sliced;

pub use event_driven::AsyncScheduler;
pub use gossip_membership::{Membership, MembershipConfig, MembershipStats};
pub use metrics::{CoveragePoint, DynamicsStats, RoundStats, SimResult};
pub use scheduler::{PhaseTimings, Scheduler, SyncScheduler};
pub use sliced::{SliceTimings, EVENT_REGIONS, SLICE_TICKS};

use gossip_core::{NodeId, Rng, Topology};
use gossip_protocols::GossipProtocol;

/// Engine knobs independent of topology, protocol, and scheduler.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Hard cap on rounds; the run stops uncompleted when it is reached.
    /// The asynchronous scheduler interprets this as the equivalent
    /// virtual-time cap of `max_rounds ×`
    /// [`gossip_core::time::TICKS_PER_ROUND`] ticks.
    pub max_rounds: usize,
    /// Record a [`RoundStats`] entry per round (per round-sized epoch
    /// under the asynchronous scheduler).
    ///
    /// **Cost:** the history buffer is pre-allocated up front to its
    /// worst case of `max_rounds` entries (capped at
    /// [`HISTORY_PREALLOC_CAP`], ~40 bytes per entry) so long runs never
    /// pay repeated reallocation-and-copy of a growing `Vec`; a run with
    /// the default 100 000-round cap reserves ~4 MB. Leave this off for
    /// bulk parameter sweeps.
    pub record_rounds: bool,
}

/// Upper bound on the number of [`RoundStats`] entries pre-allocated for
/// `record_rounds`; pathological `max_rounds` values beyond this grow the
/// history vector on demand instead of reserving absurd memory up front.
pub const HISTORY_PREALLOC_CAP: usize = 1 << 20;

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_rounds: 100_000,
            record_rounds: false,
        }
    }
}

impl SimConfig {
    /// The pre-sized history buffer described on
    /// [`record_rounds`](Self::record_rounds).
    pub(crate) fn history_vec(&self) -> Vec<RoundStats> {
        Vec::with_capacity(self.max_rounds.min(HISTORY_PREALLOC_CAP))
    }
}

/// The default round cap for an `n`-node experiment when the caller does
/// not set one: generous enough that every connected standard topology
/// completes (a line needs `O(n)` rounds even under advertisement-guided
/// gossip; the constant absorbs small-topology overhead), while still
/// terminating disconnected or drained runs. Experiment front-ends share
/// this one policy so `run`, sweeps, and grids cannot drift.
pub fn default_round_cap(nodes: usize) -> usize {
    100 + 60 * nodes
}

/// Place `k` message sources uniformly at random on distinct nodes
/// (wrapping onto shared nodes only when `k > n`). Deterministic in `rng`.
pub fn random_sources(n: usize, k: usize, rng: &mut Rng) -> Vec<NodeId> {
    assert!(n > 0, "cannot place sources on an empty topology");
    let mut ids: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut ids);
    (0..k).map(|m| NodeId(ids[m % n])).collect()
}

/// Run one simulation under the synchronous round-based scheduler:
/// message `m` starts at `sources[m]`, and the run ends when every node
/// holds every message or `config.max_rounds` is hit. Equivalent to
/// [`SyncScheduler`]`.run(...)`; use a [`Scheduler`] trait object to pick
/// the execution model at runtime.
pub fn run(
    topology: &Topology,
    protocol: &dyn GossipProtocol,
    sources: &[NodeId],
    seed: u64,
    config: &SimConfig,
) -> SimResult {
    SyncScheduler::default().run(topology, protocol, sources, seed, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_protocols::UniformGossip;

    #[test]
    fn single_node_completes_instantly() {
        let topo = Topology::complete(1);
        let result = run(
            &topo,
            &UniformGossip,
            &[NodeId(0)],
            1,
            &SimConfig::default(),
        );
        assert!(result.completed);
        assert_eq!(result.rounds_to_completion, Some(0));
        assert_eq!(result.total_connections, 0);
    }

    #[test]
    fn same_seed_reproduces_run_exactly() {
        let topo = Topology::grid(30);
        let cfg = SimConfig {
            record_rounds: true,
            ..SimConfig::default()
        };
        let mut rng = Rng::new(5);
        let sources = random_sources(30, 3, &mut rng);
        let a = run(&topo, &UniformGossip, &sources, 77, &cfg);
        let b = run(&topo, &UniformGossip, &sources, 77, &cfg);
        assert_eq!(a.rounds_to_completion, b.rounds_to_completion);
        assert_eq!(a.total_connections, b.total_connections);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn round_cap_stops_uncompleted_runs() {
        // Two isolated components can never finish 1-gossip.
        let topo = Topology::from_edges("split", 4, &[(0, 1), (2, 3)]);
        let cfg = SimConfig {
            max_rounds: 25,
            ..SimConfig::default()
        };
        let result = run(&topo, &UniformGossip, &[NodeId(0)], 3, &cfg);
        assert!(!result.completed);
        assert_eq!(result.rounds_executed, 25);
        assert_eq!(result.rounds_to_completion, None);
        assert!(result.complete_nodes < 4);
    }

    #[test]
    fn connection_accounting_is_consistent() {
        let topo = Topology::ring(16);
        let result = run(
            &topo,
            &UniformGossip,
            &[NodeId(0)],
            9,
            &SimConfig::default(),
        );
        assert!(result.completed);
        assert_eq!(
            result.total_connections,
            result.productive_connections + result.wasted_connections
        );
        // With a 1-message universe a productive connection informs exactly
        // one new node, so reaching 15 more nodes takes >= 15 of them; and
        // coverage at most doubles per round, so 1 -> 16 takes >= 4 rounds.
        assert!(result.productive_connections >= 15);
        assert!(result.rounds_to_completion.unwrap() >= 4);
    }

    #[test]
    fn history_is_preallocated_to_the_round_cap() {
        let cfg = SimConfig {
            max_rounds: 500,
            record_rounds: true,
        };
        assert_eq!(cfg.history_vec().capacity(), 500);
        // Pathological caps do not reserve absurd memory up front.
        let cfg = SimConfig {
            max_rounds: usize::MAX,
            record_rounds: true,
        };
        assert_eq!(cfg.history_vec().capacity(), HISTORY_PREALLOC_CAP);
    }

    #[test]
    fn sync_virtual_time_mirrors_rounds() {
        use gossip_core::time::TICKS_PER_ROUND;
        let topo = Topology::ring(16);
        let result = run(
            &topo,
            &UniformGossip,
            &[NodeId(0)],
            9,
            &SimConfig::default(),
        );
        assert_eq!(result.scheduler, "sync");
        assert_eq!(
            result.virtual_time,
            result.rounds_executed as u64 * TICKS_PER_ROUND
        );
        assert_eq!(
            result.virtual_time_to_completion,
            result
                .rounds_to_completion
                .map(|r| r as u64 * TICKS_PER_ROUND)
        );
    }
}
