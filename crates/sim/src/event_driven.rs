//! The asynchronous event-driven scheduler.
//!
//! The follow-up to the PODC 2017 paper ("Asynchronous Gossip in
//! Smartphone Peer-to-Peer Networks", Newport, Weaver & Zheng 2021)
//! drops the synchronized-round assumption: real smartphone meshes have
//! per-device clock drift, advertisement refreshes on OS-controlled
//! timers, and connections whose setup and transfer take variable time.
//! [`AsyncScheduler`] models that world with a binary-heap event queue
//! over integer virtual time ([`SimTime`]):
//!
//! - every node runs an **act cycle** on its own drifted clock: refresh
//!   the advertisement, scan the *current* (possibly stale) tags of its
//!   neighbors, and commit an [`Intent`] through the unchanged
//!   [`GossipProtocol`] trait;
//! - a `Propose(v)` intent schedules a connection **attempt** that
//!   arrives at `v` after a sampled latency; the attempt resolves
//!   *incrementally* against `v`'s state at arrival time via
//!   [`IncrementalMatcher`] — there is no global matching batch;
//! - a formed connection holds both endpoints busy for a sampled
//!   transfer latency, then the push-pull union fires and both return to
//!   their act cycles.
//!
//! Everything — drift factors, refresh jitter, latencies, protocol coin
//! flips — is drawn from the single seeded [`Rng`], and events are
//! ordered by `(time, sequence-number)`, so runs are exactly reproducible
//! from the seed.
//!
//! Since the time-sliced parallel engine landed (see [`crate::sliced`]),
//! [`Scheduler::run`]/[`Scheduler::run_dynamic`] execute the sliced event
//! loop at every thread count (byte-identical results for any `threads`),
//! while the original single-heap loop lives on as
//! [`AsyncScheduler::run_serial`] / [`AsyncScheduler::run_dynamic_serial`]
//! — the globally time-ordered oracle the sliced engine's tests compare
//! against.

use crate::dynamic::DynRun;
use crate::metrics::RoundStats;
use crate::scheduler::{init_run, Scheduler};
use crate::sliced::SliceTimings;
use crate::{SimConfig, SimResult};

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gossip_core::time::{SimTime, TimingConfig, TICKS_PER_ROUND};
use gossip_core::{Advertisement, IncrementalMatcher, Intent, NodeId, PeerState, Rng, Topology};
use gossip_dynamics::{DynamicsModel, MutationKind};
use gossip_membership::MembershipConfig;
use gossip_protocols::{GossipProtocol, NodeCtx};
use gossip_telemetry::{NoopProbe, Probe};

/// Event-driven scheduler for the asynchronous mobile telephone model.
///
/// `config.max_rounds` is interpreted as a virtual-time cap of
/// `max_rounds ×` [`TICKS_PER_ROUND`] ticks, so the same [`SimConfig`]
/// bounds both schedulers comparably. Reported `rounds_executed` /
/// `rounds_to_completion` are round *equivalents* of the virtual time
/// (see [`SimTime::round_equivalent`]); with `record_rounds` set, one
/// [`RoundStats`] entry is recorded per elapsed round-sized epoch, and a
/// connection is counted in the epoch in which its transfer completes.
#[derive(Clone, Copy, Debug)]
pub struct AsyncScheduler {
    /// Drift, refresh-jitter, and latency distributions for the run.
    pub timing: TimingConfig,
    /// Worker threads for the time-sliced event loop. The slice/region
    /// partition is a fixed constant, so results are byte-identical at
    /// any value; `0` is normalized to 1.
    pub threads: usize,
}

impl Default for AsyncScheduler {
    fn default() -> Self {
        AsyncScheduler {
            timing: TimingConfig::default(),
            threads: 1,
        }
    }
}

impl AsyncScheduler {
    /// An async scheduler with default timing and `threads` workers
    /// (`0` is treated as 1).
    pub fn with_threads(threads: usize) -> Self {
        AsyncScheduler {
            timing: TimingConfig::default(),
            threads: threads.max(1),
        }
    }
}

/// What happens when a scheduled event fires.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// A node's act cycle: refresh advertisement, scan, decide.
    Act(NodeId),
    /// `from`'s proposal arrives at `to` after connection-setup latency.
    Attempt { from: NodeId, to: NodeId },
    /// The transfer over a formed connection completes.
    Finish { initiator: NodeId, acceptor: NodeId },
}

/// What happens when a scheduled event fires in a *dynamic* run. The
/// extra ingredients over [`Event`]: a `Mutate` marker that drains the
/// dynamics stream when it fires, and per-node generation stamps — a
/// node's generation bumps when it dies, so events queued against an
/// earlier incarnation (its act chain, an in-flight proposal, a pending
/// transfer) are lazily discarded when popped instead of surgically
/// removed from the heap.
#[derive(Clone, Copy, Debug)]
enum DynEvent {
    /// A node's act cycle, valid for one incarnation of the node.
    Act(NodeId, u64),
    /// `from`'s proposal arrives at `to`; `gen` stamps `from`'s
    /// incarnation (a dead proposer's attempt dissolves).
    Attempt { from: NodeId, to: NodeId, gen: u64 },
    /// The transfer over a formed connection completes — unless either
    /// endpoint died (and was severed) in the meantime.
    Finish {
        initiator: NodeId,
        acceptor: NodeId,
        gen_i: u64,
        gen_a: u64,
    },
    /// Apply every dynamics mutation due at this instant, then re-arm the
    /// marker at the stream's next event time.
    Mutate,
}

/// Heap entry: events fire in `(time, seq)` order. `seq` is a unique,
/// monotonically increasing tie-breaker, so simultaneous events fire in
/// scheduling order and the execution is deterministic.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Scheduled<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    // Reversed: BinaryHeap is a max-heap, and we want the earliest event.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Scheduler for AsyncScheduler {
    fn name(&self) -> &'static str {
        "async"
    }

    fn run_probed(
        &self,
        topology: &Topology,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
        probe: &mut dyn Probe,
    ) -> SimResult {
        crate::sliced::run_sliced(self, topology, None, protocol, sources, seed, config, probe).0
    }

    fn run_dynamic_probed(
        &self,
        topology: &Topology,
        dynamics: &dyn DynamicsModel,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
        probe: &mut dyn Probe,
    ) -> SimResult {
        crate::sliced::run_dynamic_sliced(
            self, topology, dynamics, None, protocol, sources, seed, config, probe,
        )
        .0
    }

    fn run_membership_probed(
        &self,
        topology: &Topology,
        membership: &MembershipConfig,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
        probe: &mut dyn Probe,
    ) -> SimResult {
        crate::sliced::run_sliced(
            self,
            topology,
            Some(membership),
            protocol,
            sources,
            seed,
            config,
            probe,
        )
        .0
    }

    fn run_dynamic_membership_probed(
        &self,
        topology: &Topology,
        dynamics: &dyn DynamicsModel,
        membership: &MembershipConfig,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
        probe: &mut dyn Probe,
    ) -> SimResult {
        crate::sliced::run_dynamic_sliced(
            self,
            topology,
            dynamics,
            Some(membership),
            protocol,
            sources,
            seed,
            config,
            probe,
        )
        .0
    }
}

impl AsyncScheduler {
    /// Run the time-sliced engine and also return its per-phase wall-time
    /// breakdown (consumed by `bench`).
    pub fn run_with_slice_timings(
        &self,
        topology: &Topology,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
    ) -> (SimResult, SliceTimings) {
        crate::sliced::run_sliced(
            self,
            topology,
            None,
            protocol,
            sources,
            seed,
            config,
            &mut NoopProbe,
        )
    }

    /// The original single-heap, globally time-ordered event loop, kept
    /// as the serial oracle the sliced engine's tests compare against
    /// (it executes every event in exact `(time, seq)` order). Ignores
    /// `threads`.
    pub fn run_serial(
        &self,
        topology: &Topology,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
    ) -> SimResult {
        self.timing
            .validate()
            .unwrap_or_else(|e| panic!("invalid timing config: {e}"));
        let n = topology.num_nodes();
        let mut rng = Rng::new(seed);
        let (mut states, mut result) = init_run(topology, protocol, "async", sources, seed, config);
        if result.completed {
            return result;
        }
        let mut complete_nodes = result.complete_nodes;
        let mut messages_held: usize = states.total_messages();

        let max_time = (config.max_rounds as u64).saturating_mul(TICKS_PER_ROUND);
        let drift_factors: Vec<f64> = (0..n).map(|_| self.timing.drift_factor(&mut rng)).collect();
        // Every node publishes an initial epoch-0 tag before anyone scans.
        let mut ads: Vec<Advertisement> = (0..n)
            .map(|u| protocol.advertise(states.view(u), 0))
            .collect();
        let mut matcher = IncrementalMatcher::new(n);
        let mut ad_scratch: Vec<Advertisement> = Vec::new();

        let mut heap: BinaryHeap<Scheduled<Event>> = BinaryHeap::with_capacity(2 * n);
        let mut seq: u64 = 0;
        let mut push = |heap: &mut BinaryHeap<Scheduled<Event>>, time: SimTime, event: Event| {
            heap.push(Scheduled {
                time,
                seq: {
                    seq += 1;
                    seq
                },
                event,
            });
        };

        // Stagger initial act cycles uniformly over the first nominal
        // period, so the network does not start phase-locked.
        for u in 0..n {
            let offset = rng.gen_range(TICKS_PER_ROUND as usize) as u64;
            push(&mut heap, SimTime(offset), Event::Act(NodeId(u as u32)));
        }

        // Per-epoch accounting for optional history recording. An event at
        // time `t` belongs to row `ceil(t / TICKS_PER_ROUND)` — round `r`
        // covers `((r-1)·TPR, r·TPR]`, matching
        // [`SimTime::round_equivalent`] — so a transfer landing exactly on
        // a round boundary counts toward the round that ends there, never
        // a dropped `rounds_executed + 1`.
        let mut epochs = EpochAccounting::default();

        let mut now = SimTime::ZERO;
        while let Some(ev) = heap.pop() {
            if ev.time.ticks() > max_time {
                now = SimTime(max_time);
                break;
            }
            now = ev.time;

            if let Some(history) = &mut result.rounds {
                // Flush rows strictly before this event's row, so its
                // counters accumulate into the right (still-open) row.
                let event_row = now.round_equivalent().max(1);
                epochs.flush_rows_below(history, event_row, complete_nodes, messages_held);
            }

            match ev.event {
                Event::Act(u) => {
                    let ui = u.index();
                    match matcher.state(u) {
                        PeerState::Connected => {
                            // Captured as a listener mid-connection: keep
                            // the act chain alive and re-decide later.
                            let delay = self.timing.refresh_interval(drift_factors[ui], &mut rng);
                            push(&mut heap, now.after(delay), Event::Act(u));
                        }
                        PeerState::Proposing => {
                            // A proposing node's chain is owned by its
                            // Attempt event, so rescheduling here would
                            // fork the chain; dropping the stale Act is
                            // the safe release-mode recovery (the Attempt
                            // always restarts the cycle), while debug
                            // builds flag the broken invariant loudly.
                            debug_assert!(false, "act event fired for a proposing node");
                        }
                        state => {
                            if state == PeerState::Listening {
                                matcher.cancel(u);
                            }
                            let epoch = now.epoch();
                            ads[ui] = protocol.advertise(states.view(ui), epoch);
                            let neighbors = topology.neighbors(u);
                            ad_scratch.clear();
                            ad_scratch.extend(neighbors.iter().map(|v| ads[v.index()]));
                            let ctx = NodeCtx {
                                id: u,
                                salt: epoch,
                                messages: states.view(ui),
                                neighbors,
                                neighbor_ads: &ad_scratch,
                            };
                            match protocol.decide(&ctx, &mut rng) {
                                Intent::Idle => {
                                    let delay =
                                        self.timing.refresh_interval(drift_factors[ui], &mut rng);
                                    push(&mut heap, now.after(delay), Event::Act(u));
                                }
                                Intent::Listen => {
                                    matcher.listen(u);
                                    let delay =
                                        self.timing.refresh_interval(drift_factors[ui], &mut rng);
                                    push(&mut heap, now.after(delay), Event::Act(u));
                                }
                                Intent::Propose(v) => {
                                    matcher.propose(u);
                                    let delay = self.timing.latency(&mut rng);
                                    push(
                                        &mut heap,
                                        now.after(delay),
                                        Event::Attempt { from: u, to: v },
                                    );
                                }
                            }
                        }
                    }
                }
                Event::Attempt { from, to } => {
                    // On a frozen graph a proposal across a non-edge can
                    // only be a protocol bug; the dynamic path has no such
                    // assert because there the edge may legitimately have
                    // vanished in flight.
                    debug_assert!(
                        topology.are_neighbors(from, to),
                        "protocol proposed {from} -> {to} across a non-edge"
                    );
                    if matcher.try_connect(topology, from, to) {
                        let delay = self.timing.latency(&mut rng);
                        push(
                            &mut heap,
                            now.after(delay),
                            Event::Finish {
                                initiator: from,
                                acceptor: to,
                            },
                        );
                    } else {
                        // Lost proposal: back to the act cycle; the retry
                        // happens naturally at the next refresh.
                        matcher.cancel(from);
                        let delay = self
                            .timing
                            .refresh_interval(drift_factors[from.index()], &mut rng);
                        push(&mut heap, now.after(delay), Event::Act(from));
                    }
                }
                Event::Finish {
                    initiator,
                    acceptor,
                } => {
                    let (i, j) = (initiator.index(), acceptor.index());
                    let before_i = states.is_full(i);
                    let before_j = states.is_full(j);
                    let moved = states.union_pair(i, j);
                    complete_nodes += (states.is_full(i) && !before_i) as usize;
                    complete_nodes += (states.is_full(j) && !before_j) as usize;
                    messages_held += moved;

                    result.total_connections += 1;
                    if moved > 0 {
                        result.productive_connections += 1;
                        epochs.productive += 1;
                    } else {
                        result.wasted_connections += 1;
                    }
                    epochs.connections += 1;

                    matcher.release(initiator, acceptor);
                    // The acceptor's act chain stayed alive while it was
                    // connected; only the initiator's needs restarting.
                    let delay = self
                        .timing
                        .refresh_interval(drift_factors[initiator.index()], &mut rng);
                    push(&mut heap, now.after(delay), Event::Act(initiator));

                    if complete_nodes == n {
                        result.completed = true;
                        result.virtual_time_to_completion = Some(now.ticks());
                        result.rounds_to_completion = Some(now.round_equivalent());
                        break;
                    }
                }
            }
        }

        result.complete_nodes = complete_nodes;
        result.virtual_time = now.ticks().min(max_time);
        result.rounds_executed = SimTime(result.virtual_time)
            .round_equivalent()
            .min(config.max_rounds);

        if let Some(history) = &mut result.rounds {
            // Flush remaining epochs (including the final partial one) so
            // the history covers exactly `rounds_executed` rows.
            epochs.flush_rows_below(
                history,
                result.rounds_executed + 1,
                complete_nodes,
                messages_held,
            );
        }
        result
    }

    /// The dynamic-topology variant of the serial event loop. The
    /// dynamics stream is interleaved *exactly*: a `Mutate` marker rides
    /// the event heap at the stream's next mutation time, so departures,
    /// rejoins, fades, and moves fire between act cycles at their true
    /// virtual times rather than at round boundaries. A departure severs
    /// any open connection of the dead node (counted in
    /// [`DynamicsStats::severed_connections`](crate::DynamicsStats));
    /// its queued events dissolve lazily via generation stamps. An edge
    /// that fades or moves away while a proposal is in flight simply
    /// fails the attempt at arrival — only death interrupts an already-
    /// formed connection.
    pub fn run_dynamic_serial(
        &self,
        topology: &Topology,
        dynamics: &dyn DynamicsModel,
        protocol: &dyn GossipProtocol,
        sources: &[NodeId],
        seed: u64,
        config: &SimConfig,
    ) -> SimResult {
        self.timing
            .validate()
            .unwrap_or_else(|e| panic!("invalid timing config: {e}"));
        let n = topology.num_nodes();
        let mut rng = Rng::new(seed);
        let (mut states, mut result) = init_run(topology, protocol, "async", sources, seed, config);
        let mut dynr = DynRun::new(topology, dynamics, seed, &states);
        if result.completed {
            result.dynamics = Some(dynr.finish(SimTime::ZERO));
            return result;
        }

        let max_time = (config.max_rounds as u64).saturating_mul(TICKS_PER_ROUND);
        let drift_factors: Vec<f64> = (0..n).map(|_| self.timing.drift_factor(&mut rng)).collect();
        let mut ads: Vec<Advertisement> = (0..n)
            .map(|u| protocol.advertise(states.view(u), 0))
            .collect();
        let mut matcher = IncrementalMatcher::new(n);
        let mut ad_scratch: Vec<Advertisement> = Vec::new();
        // A node's incarnation number; death bumps it, orphaning every
        // event queued against the old incarnation.
        let mut gens: Vec<u64> = vec![0; n];
        // While `u` is connected: `(peer, u_initiated_the_connection)`.
        let mut partner: Vec<Option<(NodeId, bool)>> = vec![None; n];

        let mut heap: BinaryHeap<Scheduled<DynEvent>> = BinaryHeap::with_capacity(2 * n + 1);
        let mut seq: u64 = 0;
        let mut push =
            |heap: &mut BinaryHeap<Scheduled<DynEvent>>, time: SimTime, event: DynEvent| {
                heap.push(Scheduled {
                    time,
                    seq: {
                        seq += 1;
                        seq
                    },
                    event,
                });
            };

        for u in 0..n {
            let offset = rng.gen_range(TICKS_PER_ROUND as usize) as u64;
            push(
                &mut heap,
                SimTime(offset),
                DynEvent::Act(NodeId(u as u32), 0),
            );
        }
        // Exactly one Mutate marker rides the heap at a time, parked at
        // the stream's next mutation time.
        if let Some(t) = dynr.peek_time() {
            push(&mut heap, t, DynEvent::Mutate);
        }

        let mut epochs = EpochAccounting::default();
        let mut now = SimTime::ZERO;
        while let Some(ev) = heap.pop() {
            if ev.time.ticks() > max_time {
                now = SimTime(max_time);
                break;
            }
            now = ev.time;

            if let Some(history) = &mut result.rounds {
                let event_row = now.round_equivalent().max(1);
                epochs.flush_rows_below(
                    history,
                    event_row,
                    dynr.alive_informed,
                    dynr.alive_messages,
                );
            }

            match ev.event {
                DynEvent::Mutate => {
                    while dynr.peek_time().is_some_and(|t| t <= now) {
                        let mutation = dynr.pop().expect("peeked mutation must pop");
                        if let MutationKind::Depart(u) = mutation.kind {
                            if dynr.topo.is_alive(u) {
                                // Disentangle the node before it goes down.
                                match matcher.state(u) {
                                    PeerState::Free => {}
                                    PeerState::Listening | PeerState::Proposing => {
                                        matcher.cancel(u)
                                    }
                                    PeerState::Connected => {
                                        let (v, u_initiated) = partner[u.index()]
                                            .expect("connected node has a partner");
                                        matcher.release(u, v);
                                        partner[u.index()] = None;
                                        partner[v.index()] = None;
                                        dynr.stats.severed_connections += 1;
                                        if !u_initiated {
                                            // The survivor initiated: its
                                            // act chain was parked on the
                                            // Finish event dying with this
                                            // connection — restart it.
                                            let delay = self.timing.refresh_interval(
                                                drift_factors[v.index()],
                                                &mut rng,
                                            );
                                            push(
                                                &mut heap,
                                                now.after(delay),
                                                DynEvent::Act(v, gens[v.index()]),
                                            );
                                        }
                                    }
                                }
                                gens[u.index()] += 1;
                            }
                        }
                        let applied = dynr.apply(&mutation, &mut states, sources);
                        if applied {
                            if let MutationKind::Rejoin { node, .. } = mutation.kind {
                                // The revived node starts a fresh act chain.
                                let delay = self
                                    .timing
                                    .refresh_interval(drift_factors[node.index()], &mut rng);
                                push(
                                    &mut heap,
                                    now.after(delay),
                                    DynEvent::Act(node, gens[node.index()]),
                                );
                            }
                        }
                    }
                    if let Some(t) = dynr.peek_time() {
                        push(&mut heap, t, DynEvent::Mutate);
                    }
                    if dynr.complete() {
                        result.completed = true;
                        result.virtual_time_to_completion = Some(now.ticks());
                        result.rounds_to_completion = Some(now.round_equivalent());
                        break;
                    }
                }
                DynEvent::Act(u, gen) => {
                    if gen != gens[u.index()] {
                        continue; // the node died since this was scheduled
                    }
                    let ui = u.index();
                    match matcher.state(u) {
                        PeerState::Connected => {
                            let delay = self.timing.refresh_interval(drift_factors[ui], &mut rng);
                            push(&mut heap, now.after(delay), DynEvent::Act(u, gen));
                        }
                        PeerState::Proposing => {
                            debug_assert!(false, "act event fired for a proposing node");
                        }
                        state => {
                            if state == PeerState::Listening {
                                matcher.cancel(u);
                            }
                            let epoch = now.epoch();
                            ads[ui] = protocol.advertise(states.view(ui), epoch);
                            let neighbors = dynr.topo.active_neighbors(u);
                            ad_scratch.clear();
                            ad_scratch.extend(neighbors.iter().map(|v| ads[v.index()]));
                            let ctx = NodeCtx {
                                id: u,
                                salt: epoch,
                                messages: states.view(ui),
                                neighbors,
                                neighbor_ads: &ad_scratch,
                            };
                            match protocol.decide(&ctx, &mut rng) {
                                Intent::Idle => {
                                    let delay =
                                        self.timing.refresh_interval(drift_factors[ui], &mut rng);
                                    push(&mut heap, now.after(delay), DynEvent::Act(u, gen));
                                }
                                Intent::Listen => {
                                    matcher.listen(u);
                                    let delay =
                                        self.timing.refresh_interval(drift_factors[ui], &mut rng);
                                    push(&mut heap, now.after(delay), DynEvent::Act(u, gen));
                                }
                                Intent::Propose(v) => {
                                    matcher.propose(u);
                                    let delay = self.timing.latency(&mut rng);
                                    push(
                                        &mut heap,
                                        now.after(delay),
                                        DynEvent::Attempt {
                                            from: u,
                                            to: v,
                                            gen,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
                DynEvent::Attempt { from, to, gen } => {
                    if gen != gens[from.index()] {
                        continue; // the proposer died mid-flight
                    }
                    // `try_connect` checks the *current* active graph: a
                    // target that died, an edge that faded, or a peer that
                    // moved away all fail the attempt naturally.
                    if matcher.try_connect(&dynr.topo, from, to) {
                        partner[from.index()] = Some((to, true));
                        partner[to.index()] = Some((from, false));
                        let delay = self.timing.latency(&mut rng);
                        push(
                            &mut heap,
                            now.after(delay),
                            DynEvent::Finish {
                                initiator: from,
                                acceptor: to,
                                gen_i: gens[from.index()],
                                gen_a: gens[to.index()],
                            },
                        );
                    } else {
                        matcher.cancel(from);
                        let delay = self
                            .timing
                            .refresh_interval(drift_factors[from.index()], &mut rng);
                        push(&mut heap, now.after(delay), DynEvent::Act(from, gen));
                    }
                }
                DynEvent::Finish {
                    initiator,
                    acceptor,
                    gen_i,
                    gen_a,
                } => {
                    if gen_i != gens[initiator.index()] || gen_a != gens[acceptor.index()] {
                        continue; // the connection was severed by a death
                    }
                    let (i, j) = (initiator.index(), acceptor.index());
                    let before_i = states.is_full(i);
                    let before_j = states.is_full(j);
                    let moved = states.union_pair(i, j);
                    // Both endpoints are alive: a death would have severed.
                    dynr.alive_informed += (states.is_full(i) && !before_i) as usize;
                    dynr.alive_informed += (states.is_full(j) && !before_j) as usize;
                    dynr.alive_messages += moved;

                    result.total_connections += 1;
                    if moved > 0 {
                        result.productive_connections += 1;
                        epochs.productive += 1;
                    } else {
                        result.wasted_connections += 1;
                    }
                    epochs.connections += 1;

                    matcher.release(initiator, acceptor);
                    partner[initiator.index()] = None;
                    partner[acceptor.index()] = None;
                    let delay = self
                        .timing
                        .refresh_interval(drift_factors[initiator.index()], &mut rng);
                    push(&mut heap, now.after(delay), DynEvent::Act(initiator, gen_i));
                    dynr.record(now);

                    if dynr.complete() {
                        result.completed = true;
                        result.virtual_time_to_completion = Some(now.ticks());
                        result.rounds_to_completion = Some(now.round_equivalent());
                        break;
                    }
                }
            }
        }

        result.complete_nodes = dynr.alive_informed;
        result.virtual_time = now.ticks().min(max_time);
        result.rounds_executed = SimTime(result.virtual_time)
            .round_equivalent()
            .min(config.max_rounds);

        if let Some(history) = &mut result.rounds {
            epochs.flush_rows_below(
                history,
                result.rounds_executed + 1,
                dynr.alive_informed,
                dynr.alive_messages,
            );
        }
        result.dynamics = Some(dynr.finish(SimTime(result.virtual_time)));
        result
    }
}

/// Accumulators for the optional per-epoch [`RoundStats`] history of an
/// asynchronous run: counters for the currently open row, plus the number
/// of rows already flushed.
#[derive(Default)]
pub(crate) struct EpochAccounting {
    /// Rows already flushed; the open row is number `flushed + 1`.
    pub(crate) flushed: usize,
    /// Connections completing transfers in the open row so far.
    pub(crate) connections: usize,
    /// Productive connections in the open row so far.
    pub(crate) productive: usize,
}

impl EpochAccounting {
    /// Close and record every row numbered strictly below `row`, leaving
    /// `row` as the open row accumulating subsequent counters. Rows stay
    /// dense and 1-based like synchronous rounds; both the in-loop flush
    /// (before each event) and the final drain route through here so the
    /// attribution rule cannot diverge between them.
    pub(crate) fn flush_rows_below(
        &mut self,
        history: &mut Vec<RoundStats>,
        row: usize,
        complete_nodes: usize,
        messages_held: usize,
    ) {
        while self.flushed + 1 < row {
            history.push(RoundStats {
                round: self.flushed + 1,
                connections: self.connections,
                productive: self.productive,
                complete_nodes,
                messages_held,
            });
            self.connections = 0;
            self.productive = 0;
            self.flushed += 1;
        }
    }
}
