//! Cross-scheduler tests: the synchronous scheduler reproduces the
//! pre-refactor engine bit-for-bit, and the asynchronous event-driven
//! scheduler completes gossip on ring / grid / random-geometric
//! topologies with deterministic virtual-time results for a fixed seed.

use gossip_core::time::{TimingConfig, TICKS_PER_ROUND};
use gossip_core::{Rng, Topology};
use gossip_protocols::{AdvertGossip, GossipProtocol, UniformGossip};
use gossip_sim::{
    random_sources, run, AsyncScheduler, Scheduler, SimConfig, SimResult, SyncScheduler,
};

fn run_with(
    scheduler: &dyn Scheduler,
    topo: &Topology,
    protocol: &dyn GossipProtocol,
    k: usize,
    seed: u64,
) -> SimResult {
    let mut rng = Rng::new(seed ^ 0xfeed);
    let sources = random_sources(topo.num_nodes(), k, &mut rng);
    let cfg = SimConfig {
        max_rounds: 60 * topo.num_nodes() + 200,
        record_rounds: true,
    };
    scheduler.run(topo, protocol, &sources, seed, &cfg)
}

#[test]
fn sync_scheduler_is_bit_for_bit_the_legacy_engine() {
    // `run()` and `SyncScheduler::run` must be the same execution — same
    // RNG consumption, same round counts, same per-round history.
    for topo in [Topology::ring(48), Topology::grid(30)] {
        let mut rng = Rng::new(0xfeed);
        let sources = random_sources(topo.num_nodes(), 3, &mut rng);
        let cfg = SimConfig {
            record_rounds: true,
            ..SimConfig::default()
        };
        let legacy = run(&topo, &AdvertGossip, &sources, 77, &cfg);
        let via_trait = SyncScheduler::default().run(&topo, &AdvertGossip, &sources, 77, &cfg);
        assert_eq!(legacy.rounds_to_completion, via_trait.rounds_to_completion);
        assert_eq!(legacy.total_connections, via_trait.total_connections);
        assert_eq!(
            legacy.productive_connections,
            via_trait.productive_connections
        );
        assert_eq!(legacy.rounds, via_trait.rounds);
        assert_eq!(via_trait.scheduler, "sync");
    }
}

#[test]
fn async_completes_on_ring_grid_rgg() {
    let n = 64;
    let mut topo_rng = Rng::new(31);
    let topologies = [
        Topology::ring(n),
        Topology::grid(n),
        Topology::random_geometric(n, &mut topo_rng),
    ];
    let sched = AsyncScheduler::default();
    for topo in &topologies {
        for proto in [&UniformGossip as &dyn GossipProtocol, &AdvertGossip] {
            let result = run_with(&sched, topo, proto, 1, 42);
            assert!(
                result.completed,
                "{} on {} did not complete asynchronously",
                proto.name(),
                topo.name()
            );
            assert_eq!(result.scheduler, "async");
            assert_eq!(result.complete_nodes, n);
            let vt = result
                .virtual_time_to_completion
                .expect("completed run must report a completion time");
            assert!(vt > 0, "completion cannot be instantaneous from 1 source");
            assert_eq!(vt, result.virtual_time);
            // Round equivalents stay consistent with virtual time.
            assert_eq!(
                result.rounds_to_completion.unwrap(),
                vt.div_ceil(TICKS_PER_ROUND) as usize
            );
        }
    }
}

#[test]
fn async_virtual_time_is_deterministic_per_seed() {
    let n = 64;
    let sched = AsyncScheduler::default();
    for proto in [&UniformGossip as &dyn GossipProtocol, &AdvertGossip] {
        let topo = Topology::grid(n);
        let a = run_with(&sched, &topo, proto, 4, 1234);
        let b = run_with(&sched, &topo, proto, 4, 1234);
        assert_eq!(
            a.virtual_time_to_completion,
            b.virtual_time_to_completion,
            "{} async run must be reproducible",
            proto.name()
        );
        assert_eq!(a.total_connections, b.total_connections);
        assert_eq!(a.productive_connections, b.productive_connections);
        assert_eq!(a.rounds, b.rounds);
        // Different seeds must (generically) produce different executions.
        let c = run_with(&sched, &topo, proto, 4, 4321);
        assert_ne!(
            (a.virtual_time_to_completion, a.total_connections),
            (c.virtual_time_to_completion, c.total_connections),
            "{} async runs with different seeds should diverge",
            proto.name()
        );
    }
}

#[test]
fn async_respects_the_virtual_time_cap() {
    // Two isolated components can never finish 1-gossip; the run must
    // stop at the equivalent virtual-time cap.
    let topo = Topology::from_edges("split", 4, &[(0, 1), (2, 3)]);
    let cfg = SimConfig {
        max_rounds: 25,
        record_rounds: true,
    };
    let sources = [gossip_core::NodeId(0)];
    let result = AsyncScheduler::default().run(&topo, &UniformGossip, &sources, 3, &cfg);
    assert!(!result.completed);
    assert!(result.virtual_time <= 25 * TICKS_PER_ROUND);
    assert!(result.rounds_executed <= 25);
    assert_eq!(result.rounds_to_completion, None);
    assert_eq!(result.virtual_time_to_completion, None);
    let history = result.rounds.expect("history requested");
    assert_eq!(history.len(), result.rounds_executed);
}

#[test]
fn async_connection_accounting_is_consistent() {
    let topo = Topology::ring(16);
    let result = run_with(&AsyncScheduler::default(), &topo, &UniformGossip, 1, 9);
    assert!(result.completed);
    assert_eq!(
        result.total_connections,
        result.productive_connections + result.wasted_connections
    );
    // A productive connection informs at least one new node in a
    // 1-message universe, so reaching the other 15 nodes takes >= 15.
    assert!(result.productive_connections >= 15);
    // History rows are dense, 1-based, and sum to the run totals.
    let history = result.rounds.as_ref().expect("history requested");
    assert_eq!(history.len(), result.rounds_executed);
    for (i, row) in history.iter().enumerate() {
        assert_eq!(row.round, i + 1);
    }
    assert_eq!(
        history.iter().map(|r| r.connections).sum::<usize>(),
        result.total_connections
    );
    assert_eq!(
        history.iter().map(|r| r.productive).sum::<usize>(),
        result.productive_connections
    );
}

#[test]
fn async_history_counts_boundary_events() {
    // Regression: with degenerate timing (no drift, no jitter, fixed
    // latency dividing TICKS_PER_ROUND) transfers can complete at exact
    // round boundaries t = k*TICKS_PER_ROUND. Such an event belongs to
    // round k — the round that *ends* at t — so the history row sums must
    // still equal the run totals (seeds 318/474/1850 reproduced the old
    // off-by-one attribution that dropped the completing connection).
    let timing = TimingConfig {
        drift: 0.0,
        refresh_jitter: 0.0,
        min_latency: 512,
        max_latency: 512,
    };
    let sched = AsyncScheduler { timing, threads: 1 };
    let topo = Topology::ring(8);
    for seed in [318u64, 474, 1850, 1, 2, 3] {
        let result = run_with(&sched, &topo, &UniformGossip, 1, seed);
        let history = result.rounds.as_ref().expect("history requested");
        assert_eq!(history.len(), result.rounds_executed, "seed {seed}");
        assert_eq!(
            history.iter().map(|r| r.connections).sum::<usize>(),
            result.total_connections,
            "seed {seed}: boundary event dropped from history"
        );
        assert_eq!(
            history.iter().map(|r| r.productive).sum::<usize>(),
            result.productive_connections,
            "seed {seed}"
        );
    }
}

#[test]
fn async_single_node_completes_instantly() {
    let topo = Topology::complete(1);
    let result = AsyncScheduler::default().run(
        &topo,
        &UniformGossip,
        &[gossip_core::NodeId(0)],
        1,
        &SimConfig::default(),
    );
    assert!(result.completed);
    assert_eq!(result.rounds_to_completion, Some(0));
    assert_eq!(result.virtual_time_to_completion, Some(0));
    assert_eq!(result.total_connections, 0);
}

#[test]
fn async_zero_drift_zero_jitter_still_completes() {
    // Degenerate timing (all clocks perfect, fixed latency) must not
    // deadlock: the staggered start keeps nodes out of phase.
    let timing = TimingConfig {
        drift: 0.0,
        refresh_jitter: 0.0,
        min_latency: 64,
        max_latency: 64,
    };
    let sched = AsyncScheduler { timing, threads: 1 };
    let topo = Topology::ring(32);
    let result = run_with(&sched, &topo, &AdvertGossip, 1, 5);
    assert!(result.completed, "degenerate timing deadlocked the run");
}

#[test]
fn async_heavy_drift_still_completes() {
    let timing = TimingConfig {
        drift: 0.9,
        refresh_jitter: 0.9,
        min_latency: 1,
        max_latency: 2048,
    };
    let sched = AsyncScheduler { timing, threads: 1 };
    let topo = Topology::grid(36);
    for proto in [&UniformGossip as &dyn GossipProtocol, &AdvertGossip] {
        let result = run_with(&sched, &topo, proto, 2, 8);
        assert!(
            result.completed,
            "{} under heavy drift did not complete",
            proto.name()
        );
    }
}

#[test]
fn async_large_universe_gossip_terminates() {
    // The hashed-tag path under the async scheduler: epoch-salted tags
    // keep collisions transient even without a shared round counter.
    let topo = Topology::ring(10);
    let result = run_with(&AsyncScheduler::default(), &topo, &AdvertGossip, 80, 11);
    assert!(result.completed, "80-gossip on async ring(10) stalled");
}
