//! The membership overlay's engine-level contracts: gossip over
//! discovered HyParView-style views stays byte-identical at any thread
//! count on both schedulers (the membership tick is serial, at round /
//! slice boundaries, so sharding never touches it); the views a static
//! run converges to are non-empty and symmetric for every node of a
//! connected topology; and the full-knowledge default leaves `SimResult`s
//! bit-for-bit what the pre-membership engines produced.

use gossip_core::time::TimingConfig;
use gossip_core::{GraphView, NodeId, Rng, Topology};
use gossip_dynamics::{Churn, RejoinPolicy};
use gossip_protocols::{AdvertGossip, GossipProtocol, UniformGossip};
use gossip_sim::{
    random_sources, AsyncScheduler, Membership, MembershipConfig, Scheduler, SimConfig,
    SyncScheduler,
};
use gossip_telemetry::NoopProbe;

const THREAD_COUNTS: [usize; 2] = [1, 8];

fn topologies(n: usize) -> Vec<Topology> {
    let mut rng = Rng::new(404);
    vec![
        Topology::ring(n),
        Topology::grid(n),
        Topology::random_geometric(n, &mut rng),
    ]
}

fn mem_cfg() -> MembershipConfig {
    MembershipConfig::default()
}

fn sim_cfg(n: usize) -> SimConfig {
    SimConfig {
        max_rounds: 60 * n + 200,
        record_rounds: true,
    }
}

#[test]
fn membership_runs_are_identical_at_any_thread_count_on_both_schedulers() {
    for topo in topologies(96) {
        for seed in [7u64, 42] {
            let n = topo.num_nodes();
            let sources = random_sources(n, 2, &mut Rng::new(seed ^ 0xfeed));
            let cfg = sim_cfg(n);
            let sync_base = SyncScheduler::with_threads(1).run_membership(
                &topo,
                &mem_cfg(),
                &AdvertGossip,
                &sources,
                seed,
                &cfg,
            );
            assert!(
                sync_base.membership.is_some(),
                "membership runs must carry overlay stats"
            );
            let async_base = AsyncScheduler {
                timing: TimingConfig::default(),
                threads: 1,
            }
            .run_membership(&topo, &mem_cfg(), &AdvertGossip, &sources, seed, &cfg);
            assert!(async_base.membership.is_some());
            for threads in THREAD_COUNTS {
                let sync_run = SyncScheduler::with_threads(threads).run_membership(
                    &topo,
                    &mem_cfg(),
                    &AdvertGossip,
                    &sources,
                    seed,
                    &cfg,
                );
                assert_eq!(
                    sync_base,
                    sync_run,
                    "sync membership run on {} diverged at {threads} threads",
                    topo.name()
                );
                let async_run = AsyncScheduler {
                    timing: TimingConfig::default(),
                    threads,
                }
                .run_membership(
                    &topo,
                    &mem_cfg(),
                    &AdvertGossip,
                    &sources,
                    seed,
                    &cfg,
                );
                assert_eq!(
                    async_base,
                    async_run,
                    "async membership run on {} diverged at {threads} threads",
                    topo.name()
                );
            }
        }
    }
}

#[test]
fn membership_churn_runs_are_identical_at_any_thread_count() {
    let churn = Churn {
        rate: 0.05,
        rejoin: RejoinPolicy::Keep,
        mean_downtime: 3.0,
    };
    for topo in topologies(96) {
        let n = topo.num_nodes();
        let sources = random_sources(n, 2, &mut Rng::new(0xfeed));
        let cfg = sim_cfg(n);
        let sync_base = SyncScheduler::with_threads(1).run_dynamic_membership(
            &topo,
            &churn,
            &mem_cfg(),
            &AdvertGossip,
            &sources,
            77,
            &cfg,
        );
        let async_base = AsyncScheduler {
            timing: TimingConfig::default(),
            threads: 1,
        }
        .run_dynamic_membership(
            &topo,
            &churn,
            &mem_cfg(),
            &AdvertGossip,
            &sources,
            77,
            &cfg,
        );
        // Churn under the overlay exercises the failure detector: departed
        // peers must be suspected and eventually evicted.
        let stats = sync_base.membership.as_ref().unwrap();
        assert!(stats.probes > 0, "the failure detector never probed");
        for threads in THREAD_COUNTS {
            let sync_run = SyncScheduler::with_threads(threads).run_dynamic_membership(
                &topo,
                &churn,
                &mem_cfg(),
                &AdvertGossip,
                &sources,
                77,
                &cfg,
            );
            assert_eq!(
                sync_base,
                sync_run,
                "sync membership+churn run on {} diverged at {threads} threads",
                topo.name()
            );
            let async_run = AsyncScheduler {
                timing: TimingConfig::default(),
                threads,
            }
            .run_dynamic_membership(
                &topo,
                &churn,
                &mem_cfg(),
                &AdvertGossip,
                &sources,
                77,
                &cfg,
            );
            assert_eq!(
                async_base,
                async_run,
                "async membership+churn run on {} diverged at {threads} threads",
                topo.name()
            );
        }
    }
}

#[test]
fn static_views_converge_nonempty_and_symmetric_on_every_family() {
    // The overlay alone (no gossip run): after a bounded number of shuffle
    // rounds over a connected static underlay, every node's active view
    // is non-empty and exactly symmetric, across seeds. 3× the passive
    // capacity is a generous convergence budget — the joins land in tick
    // 0 and symmetry is an invariant of link()/evict(), so this mostly
    // guards against a future drift where shuffling breaks it.
    for topo in topologies(128) {
        for seed in [1u64, 9, 33] {
            let cfg = mem_cfg();
            let mut mem = Membership::new(topo.num_nodes(), cfg);
            for tick in 0..(3 * cfg.passive_size as u64) {
                mem.tick(&topo, None, seed, tick, &mut NoopProbe);
            }
            for u in 0..topo.num_nodes() {
                let view = mem.neighbors(NodeId(u as u32));
                assert!(
                    !view.is_empty(),
                    "node {u} on {} (seed {seed}) has an empty active view",
                    topo.name()
                );
                assert!(
                    view.len() <= cfg.active_size,
                    "node {u} exceeds the active-view bound"
                );
                for &v in view {
                    assert!(
                        mem.neighbors(v).contains(&NodeId(u as u32)),
                        "edge {u}->{} is not symmetric on {} (seed {seed})",
                        v.index(),
                        topo.name()
                    );
                }
            }
        }
    }
}

#[test]
fn full_view_default_is_byte_identical_to_the_pre_membership_path() {
    // Satellite regression: a run WITHOUT the membership axis must produce
    // a SimResult structurally identical to the plain engine entry points
    // — the Option field stays None and nothing else moves. (The emit
    // layer's serialization pins then keep the JSON byte-identical too.)
    let topo = Topology::ring(256);
    let sources = random_sources(256, 1, &mut Rng::new(5));
    let cfg = sim_cfg(256);
    for proto in [&UniformGossip as &dyn GossipProtocol, &AdvertGossip] {
        let plain = SyncScheduler::with_threads(2).run(&topo, proto, &sources, 11, &cfg);
        assert!(plain.membership.is_none());
        let async_plain = AsyncScheduler {
            timing: TimingConfig::default(),
            threads: 2,
        }
        .run(&topo, proto, &sources, 11, &cfg);
        assert!(async_plain.membership.is_none());
    }
}

#[test]
fn gossip_over_discovered_views_still_completes() {
    // The end-to-end point of the overlay: advert gossip confined to the
    // discovered active views (≤5 peers each) still spreads the rumor to
    // every node on each topology family, on both schedulers.
    for topo in topologies(96) {
        let n = topo.num_nodes();
        let sources = random_sources(n, 1, &mut Rng::new(0xfeed));
        let cfg = sim_cfg(n);
        let sync_run = SyncScheduler::with_threads(2).run_membership(
            &topo,
            &mem_cfg(),
            &AdvertGossip,
            &sources,
            3,
            &cfg,
        );
        assert!(
            sync_run.completed,
            "sync membership gossip on {} did not complete",
            topo.name()
        );
        let stats = sync_run.membership.unwrap();
        // Not every node registers a join of its own — a node whose view
        // an earlier joiner already linked into skips the join phase —
        // but bootstrap joins must have happened.
        assert!(stats.joins > 0, "nobody joined the overlay");
        assert!(stats.active_min >= 1 && stats.active_max <= mem_cfg().active_size);
        assert_eq!(stats.isolated_nodes, 0);
        let async_run = AsyncScheduler {
            timing: TimingConfig::default(),
            threads: 2,
        }
        .run_membership(&topo, &mem_cfg(), &AdvertGossip, &sources, 3, &cfg);
        assert!(
            async_run.completed,
            "async membership gossip on {} did not complete",
            topo.name()
        );
    }
}
