//! Thread-count independence of the sharded synchronous engine: the
//! per-node RNG streams (`Rng::stream(seed, round, node)`), the fixed
//! region partition of the matching resolver, and the node-order merges
//! make the parallel round loop a pure function of the inputs, so
//! `--threads 1`, `2`, and `8` must produce *identical* `SimResult`s —
//! full structural equality, history and dynamics stats included — across
//! every topology family, protocol, and both static and dynamic runs.
//! The small-`n` cases run every proposal through the resolver's boundary
//! sweep (blocks of ≲1 node); the larger cases give every region a
//! multi-node block so the parallel confined pass and the sweep are both
//! load-bearing. Plus the pinned 1000-ring advert regression, re-verified
//! against the CSR engine at several thread counts.
//!
//! The time-sliced asynchronous engine gets the same treatment: per-
//! `(seed, slice, region)` RNG streams, a fixed 64-region event
//! partition, and the serial boundary sweep make `AsyncScheduler` a pure
//! function of its inputs too, so sliced runs at 1, 2, and 8 threads
//! must be structurally identical — static and churning — and the
//! original single-heap event loop survives as the `run_serial` oracle
//! whose pre-sliced pinned output must never move.

use gossip_core::time::TimingConfig;
use gossip_core::{NodeId, Rng, Topology};
use gossip_dynamics::{
    Churn, DynamicsModel, EdgeFading, RejoinPolicy, Waypoint, DEFAULT_SPEED_PER_ROUND,
};
use gossip_protocols::{AdvertGossip, GossipProtocol, UniformGossip};
use gossip_sim::{random_sources, AsyncScheduler, Scheduler, SimConfig, SimResult, SyncScheduler};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn topologies(n: usize) -> Vec<Topology> {
    let mut rng = Rng::new(404);
    vec![
        Topology::ring(n),
        Topology::grid(n),
        Topology::random_geometric(n, &mut rng),
    ]
}

fn protocols() -> [&'static dyn GossipProtocol; 2] {
    [&UniformGossip, &AdvertGossip]
}

fn run_static(threads: usize, topo: &Topology, proto: &dyn GossipProtocol, k: usize) -> SimResult {
    let mut rng = Rng::new(0xfeed);
    let sources = random_sources(topo.num_nodes(), k, &mut rng);
    let cfg = SimConfig {
        max_rounds: 60 * topo.num_nodes() + 200,
        record_rounds: true,
    };
    SyncScheduler::with_threads(threads).run(topo, proto, &sources, 42, &cfg)
}

#[test]
fn static_runs_are_identical_at_any_thread_count() {
    for topo in topologies(64) {
        for proto in protocols() {
            for k in [1usize, 3] {
                let baseline = run_static(1, &topo, proto, k);
                assert!(
                    baseline.completed,
                    "{} on {} must complete",
                    proto.name(),
                    topo.name()
                );
                for threads in THREAD_COUNTS {
                    let sharded = run_static(threads, &topo, proto, k);
                    assert_eq!(
                        baseline,
                        sharded,
                        "{} on {} (k={k}): {threads}-thread run diverged from serial",
                        proto.name(),
                        topo.name()
                    );
                }
            }
        }
    }
}

#[test]
fn multi_region_static_runs_are_identical_at_any_thread_count() {
    // With MATCH_REGIONS = 64 fixed blocks, n must comfortably exceed 64
    // before regions hold several nodes each — only then do confined
    // proposals resolve inside parallel regions rather than all deferring
    // to the serial boundary sweep. k = 65 additionally pushes message
    // state into the hashed-fingerprint, multi-word regime, so the
    // parallel transfer unions more than one word per row.
    for topo in topologies(384) {
        for proto in protocols() {
            for k in [3usize, 65] {
                let baseline = run_static(1, &topo, proto, k);
                assert!(
                    baseline.completed,
                    "{} on {} must complete",
                    proto.name(),
                    topo.name()
                );
                for threads in THREAD_COUNTS {
                    let sharded = run_static(threads, &topo, proto, k);
                    assert_eq!(
                        baseline,
                        sharded,
                        "{} on {} (k={k}): {threads}-thread run diverged from serial",
                        proto.name(),
                        topo.name()
                    );
                }
            }
        }
    }
}

fn run_dyn(
    threads: usize,
    topo: &Topology,
    dynamics: &dyn DynamicsModel,
    proto: &dyn GossipProtocol,
) -> SimResult {
    let mut rng = Rng::new(0xfeed);
    let sources = random_sources(topo.num_nodes(), 2, &mut rng);
    let cfg = SimConfig {
        max_rounds: 60 * topo.num_nodes() + 200,
        record_rounds: true,
    };
    SyncScheduler::with_threads(threads).run_dynamic(topo, dynamics, proto, &sources, 77, &cfg)
}

#[test]
fn dynamic_runs_are_identical_at_any_thread_count() {
    let churn = Churn {
        rate: 0.1,
        rejoin: RejoinPolicy::Keep,
        mean_downtime: 3.0,
    };
    let fading = EdgeFading {
        fade_prob: 0.1,
        mean_downtime: 1.0,
    };
    let mut rng = Rng::new(505);
    let (rgg, geometry) = Topology::random_geometric_with_geometry(48, &mut rng);
    let waypoint = Waypoint {
        geometry,
        speed: DEFAULT_SPEED_PER_ROUND,
    };
    let ring = Topology::ring(64);
    let grid = Topology::grid(64);
    for (topo, dynamics) in [
        (&ring as &Topology, &churn as &dyn DynamicsModel),
        (&grid, &fading),
        (&rgg, &waypoint),
    ] {
        for proto in protocols() {
            let baseline = run_dyn(1, topo, dynamics, proto);
            for threads in THREAD_COUNTS {
                let sharded = run_dyn(threads, topo, dynamics, proto);
                assert_eq!(
                    baseline,
                    sharded,
                    "{} on {} under {}: {threads}-thread dynamic run diverged",
                    proto.name(),
                    topo.name(),
                    dynamics.name()
                );
            }
        }
    }
}

#[test]
fn pinned_ring_regression_holds_on_the_csr_engine_at_any_thread_count() {
    // The load-bearing regression from PR 1, re-verified against the CSR
    // topology + struct-of-arrays engine: advertisement-guided gossip on
    // a 1000-ring from one source is a deterministic two-frontier sweep —
    // exactly 500 rounds and 999 all-productive connections — and the
    // count must not depend on how many workers sharded the loop.
    let topo = Topology::ring(1000);
    let cfg = SimConfig::default();
    for threads in [1usize, 4] {
        let result =
            SyncScheduler::with_threads(threads).run(&topo, &AdvertGossip, &[NodeId(0)], 42, &cfg);
        assert!(result.completed, "threads={threads}");
        assert_eq!(
            result.rounds_to_completion,
            Some(500),
            "threads={threads}: the pinned 500-round ring sweep drifted"
        );
        assert_eq!(result.total_connections, 999, "threads={threads}");
        assert_eq!(result.productive_connections, 999, "threads={threads}");
        assert_eq!(result.wasted_connections, 0, "threads={threads}");
    }
}

fn async_sched(threads: usize) -> AsyncScheduler {
    AsyncScheduler {
        timing: TimingConfig::default(),
        threads,
    }
}

fn run_async_static(
    threads: usize,
    topo: &Topology,
    proto: &dyn GossipProtocol,
    k: usize,
) -> SimResult {
    let mut rng = Rng::new(0xfeed);
    let sources = random_sources(topo.num_nodes(), k, &mut rng);
    let cfg = SimConfig {
        max_rounds: 60 * topo.num_nodes() + 200,
        record_rounds: true,
    };
    async_sched(threads).run(topo, proto, &sources, 42, &cfg)
}

#[test]
fn async_static_runs_are_identical_at_any_thread_count() {
    // n = 384 gives every one of the 64 event regions a 6-node block, so
    // most Attempt/Finish events resolve inside parallel regions while the
    // cross-region ones exercise the boundary sweep — both paths are
    // load-bearing for the identity.
    for topo in topologies(384) {
        for proto in protocols() {
            let baseline = run_async_static(1, &topo, proto, 3);
            assert!(
                baseline.completed,
                "async {} on {} must complete",
                proto.name(),
                topo.name()
            );
            for threads in THREAD_COUNTS {
                let sharded = run_async_static(threads, &topo, proto, 3);
                assert_eq!(
                    baseline,
                    sharded,
                    "async {} on {}: {threads}-thread sliced run diverged",
                    proto.name(),
                    topo.name()
                );
            }
        }
    }
}

#[test]
fn async_churn_runs_are_identical_at_any_thread_count() {
    // Slice-boundary mutations are serial by construction; the identity
    // check covers the interplay of generation bumps, severed-connection
    // cleanup, and restart Acts feeding back into the region heaps.
    let churn = Churn {
        rate: 0.1,
        rejoin: RejoinPolicy::Keep,
        mean_downtime: 3.0,
    };
    for topo in topologies(96) {
        for proto in protocols() {
            let mut rng = Rng::new(0xfeed);
            let sources = random_sources(topo.num_nodes(), 2, &mut rng);
            let cfg = SimConfig {
                max_rounds: 60 * topo.num_nodes() + 200,
                record_rounds: true,
            };
            let baseline = async_sched(1).run_dynamic(&topo, &churn, proto, &sources, 77, &cfg);
            for threads in THREAD_COUNTS {
                let sharded =
                    async_sched(threads).run_dynamic(&topo, &churn, proto, &sources, 77, &cfg);
                assert_eq!(
                    baseline,
                    sharded,
                    "async {} on {} under churn: {threads}-thread sliced run diverged",
                    proto.name(),
                    topo.name()
                );
            }
        }
    }
}

/// The exact scenario behind the CLI's pinned async acceptance run
/// (`ring -n 1000 -m 1 --protocol advert --scheduler async --seed 42`):
/// the experiment layer salts the seed before placing sources.
const SOURCES_SEED_SALT: u64 = 0x50_0c_e5;

fn pinned_async_scenario() -> (Topology, Vec<NodeId>, SimConfig) {
    let topo = Topology::ring(1000);
    let sources = random_sources(1000, 1, &mut Rng::new(42 ^ SOURCES_SEED_SALT));
    let cfg = SimConfig {
        max_rounds: gossip_sim::default_round_cap(1000),
        record_rounds: false,
    };
    (topo, sources, cfg)
}

#[test]
fn pinned_ring_regression_holds_on_the_sliced_engine_at_any_thread_count() {
    // The sliced engine's own pinned regression (also asserted byte-for-
    // byte through the CLI in crates/cli/tests/experiments.rs): advert
    // gossip on a 1000-ring, one source, default timing. Relaxed ad reads
    // and boundary-deferred handshakes make it take slightly longer than
    // the globally-ordered oracle below, but the output is a constant of
    // the inputs — independent of worker count.
    let (topo, sources, cfg) = pinned_async_scenario();
    for threads in THREAD_COUNTS {
        let result = async_sched(threads).run(&topo, &AdvertGossip, &sources, 42, &cfg);
        assert!(result.completed, "threads={threads}");
        assert_eq!(
            result.rounds_to_completion,
            Some(935),
            "threads={threads}: the pinned sliced ring sweep drifted"
        );
        assert_eq!(
            result.virtual_time_to_completion,
            Some(956925),
            "threads={threads}"
        );
        assert_eq!(result.total_connections, 999, "threads={threads}");
        assert_eq!(result.dropped_proposals, 1002, "threads={threads}");
    }
}

#[test]
fn pinned_ring_regression_holds_on_the_serial_oracle() {
    // The pre-sliced event loop lives on as `run_serial`, and the output
    // pinned through the CLI since PR 3 must never move: 890 rounds /
    // 911045 ticks / 999 all-productive connections on the 1000-ring
    // advert sweep.
    let (topo, sources, cfg) = pinned_async_scenario();
    let result = AsyncScheduler::default().run_serial(&topo, &AdvertGossip, &sources, 42, &cfg);
    assert!(result.completed);
    assert_eq!(result.rounds_to_completion, Some(890));
    assert_eq!(result.virtual_time_to_completion, Some(911045));
    assert_eq!(result.total_connections, 999);
    assert_eq!(result.productive_connections, 999);
}

#[test]
fn thread_count_zero_and_oversubscription_are_harmless() {
    // with_threads(0) clamps to 1, and more workers than nodes clamps to
    // the node count — both still byte-identical to serial.
    let topo = Topology::ring(12);
    let sources = [NodeId(3)];
    let cfg = SimConfig {
        record_rounds: true,
        ..SimConfig::default()
    };
    let serial = SyncScheduler::default().run(&topo, &UniformGossip, &sources, 9, &cfg);
    for scheduler in [
        SyncScheduler::with_threads(0),
        SyncScheduler::with_threads(64),
    ] {
        let run = scheduler.run(&topo, &UniformGossip, &sources, 9, &cfg);
        assert_eq!(serial, run);
    }
}
