//! Gossip termination tests: both protocols reach all-nodes-informed on
//! line, ring, and complete topologies under a fixed RNG seed, within sane
//! round bounds, and the advertisement-guided protocol beats blind uniform
//! spread where wasted connections dominate (the ring).

use gossip_core::{Rng, Topology};
use gossip_protocols::{AdvertGossip, GossipProtocol, UniformGossip};
use gossip_sim::{random_sources, run, SimConfig, SimResult};

fn run_one(topo: &Topology, protocol: &dyn GossipProtocol, k: usize, seed: u64) -> SimResult {
    let mut rng = Rng::new(seed ^ 0xfeed);
    let sources = random_sources(topo.num_nodes(), k, &mut rng);
    let cfg = SimConfig {
        max_rounds: 60 * topo.num_nodes() + 200,
        ..SimConfig::default()
    };
    run(topo, protocol, &sources, seed, &cfg)
}

/// Completion requires at least n-1 rounds-worth of information flow on a
/// line/ring diameter, and can never beat ceil(log2(n)) doubling rounds.
fn assert_sane_bounds(result: &SimResult, upper: usize) {
    assert!(
        result.completed,
        "{} on {} (n={}) did not complete within the round cap",
        result.protocol, result.topology, result.nodes
    );
    let rounds = result.rounds_to_completion.unwrap();
    let log2_floor = usize::BITS as usize - 1 - result.nodes.leading_zeros() as usize;
    assert!(
        rounds >= log2_floor,
        "{} on {}: {rounds} rounds beats the doubling lower bound",
        result.protocol,
        result.topology
    );
    assert!(
        rounds <= upper,
        "{} on {}: {rounds} rounds exceeds sane bound {upper}",
        result.protocol,
        result.topology
    );
    assert_eq!(result.complete_nodes, result.nodes);
}

#[test]
fn uniform_terminates_on_line_ring_complete() {
    let n = 64;
    // A frontier edge advances with constant probability per round, so the
    // diameter-limited topologies finish in O(n) rounds w.h.p.; 20n is a
    // deep-tail bound for a fixed seed.
    assert_sane_bounds(&run_one(&Topology::line(n), &UniformGossip, 1, 42), 20 * n);
    assert_sane_bounds(&run_one(&Topology::ring(n), &UniformGossip, 1, 42), 20 * n);
    assert_sane_bounds(
        &run_one(&Topology::complete(n), &UniformGossip, 1, 42),
        12 * (usize::BITS as usize),
    );
}

#[test]
fn advert_terminates_on_line_ring_complete() {
    let n = 64;
    // Advertisement-guided frontiers advance nearly deterministically, so
    // 4n is already generous on the diameter-limited topologies.
    assert_sane_bounds(&run_one(&Topology::line(n), &AdvertGossip, 1, 42), 4 * n);
    assert_sane_bounds(&run_one(&Topology::ring(n), &AdvertGossip, 1, 42), 4 * n);
    assert_sane_bounds(
        &run_one(&Topology::complete(n), &AdvertGossip, 1, 42),
        12 * (usize::BITS as usize),
    );
}

#[test]
fn multi_message_gossip_terminates() {
    let n = 36;
    for proto in [&UniformGossip as &dyn GossipProtocol, &AdvertGossip] {
        let result = run_one(&Topology::grid(n), proto, 8, 7);
        assert!(result.completed, "{} failed 8-gossip on grid", proto.name());
    }
}

#[test]
fn large_universe_gossip_terminates() {
    // Regression test for hashed-tag livelock: with >64 messages the
    // advert protocol advertises round-salted hashes, so a tag collision
    // between differing sets cannot persist across rounds. In particular a
    // 2-node topology splits the universe into complementary sets — the
    // shape where a persistent collision would stall gossip forever.
    for proto in [&UniformGossip as &dyn GossipProtocol, &AdvertGossip] {
        let two = run_one(&Topology::line(2), proto, 128, 11);
        assert!(
            two.completed,
            "{} failed 128-gossip on line(2)",
            proto.name()
        );
        let ring = run_one(&Topology::ring(10), proto, 80, 11);
        assert!(ring.completed, "{} failed 80-gossip on ring", proto.name());
    }
}

#[test]
fn advert_beats_uniform_on_ring() {
    // The acceptance-criteria comparison: on a ring only the two frontier
    // edges can make progress, so a protocol that idles unproductive nodes
    // and aims frontier connections precisely must finish faster than blind
    // uniform spread. Check across several seeds to make sure this is not a
    // single-seed fluke.
    let n = 128;
    for seed in [1u64, 42, 99] {
        let topo = Topology::ring(n);
        let uniform = run_one(&topo, &UniformGossip, 1, seed);
        let advert = run_one(&topo, &AdvertGossip, 1, seed);
        assert!(uniform.completed && advert.completed);
        assert!(
            advert.rounds_to_completion < uniform.rounds_to_completion,
            "seed {seed}: advert took {:?} rounds, uniform {:?}",
            advert.rounds_to_completion,
            uniform.rounds_to_completion
        );
        assert!(
            advert.wasted_connections < uniform.wasted_connections,
            "seed {seed}: advert wasted {} connections, uniform {}",
            advert.wasted_connections,
            uniform.wasted_connections
        );
    }
}

#[test]
fn termination_round_counts_are_reproducible() {
    let topo = Topology::ring(48);
    let a = run_one(&topo, &AdvertGossip, 2, 1234);
    let b = run_one(&topo, &AdvertGossip, 2, 1234);
    assert_eq!(a.rounds_to_completion, b.rounds_to_completion);
    assert_eq!(a.total_connections, b.total_connections);
}
