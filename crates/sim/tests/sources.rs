//! Property tests for `random_sources`: distinctness when `k <= n`,
//! deterministic wrap when `k > n`, and determinism across identical
//! seeds.

use std::collections::HashSet;

use gossip_core::Rng;
use gossip_sim::random_sources;

#[test]
fn sources_are_distinct_when_k_at_most_n() {
    for seed in 0..50u64 {
        let mut rng = Rng::new(seed);
        let n = 1 + rng.gen_range(100);
        let k = 1 + rng.gen_range(n);
        let sources = random_sources(n, k, &mut rng);
        assert_eq!(sources.len(), k);
        let distinct: HashSet<_> = sources.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            k,
            "seed {seed}: k={k} <= n={n} must place sources on distinct nodes"
        );
        assert!(
            sources.iter().all(|s| s.index() < n),
            "seed {seed}: source out of range"
        );
    }
}

#[test]
fn sources_wrap_deterministically_when_k_exceeds_n() {
    for seed in 0..50u64 {
        let mut rng = Rng::new(seed);
        let n = 1 + rng.gen_range(20);
        let k = n + 1 + rng.gen_range(3 * n);
        let sources = random_sources(n, k, &mut rng);
        assert_eq!(sources.len(), k);
        // The first n sources cover every node exactly once...
        let first_cycle: HashSet<_> = sources[..n].iter().copied().collect();
        assert_eq!(
            first_cycle.len(),
            n,
            "seed {seed}: first wrap cycle must cover all {n} nodes"
        );
        // ...and beyond that the assignment wraps with period n.
        for (m, &s) in sources.iter().enumerate() {
            assert_eq!(
                s,
                sources[m % n],
                "seed {seed}: message {m} must wrap onto message {}'s node",
                m % n
            );
        }
    }
}

#[test]
fn identical_seeds_give_identical_sources() {
    for seed in 0..30u64 {
        for &(n, k) in &[(1usize, 1usize), (10, 3), (10, 10), (7, 23), (64, 64)] {
            let a = random_sources(n, k, &mut Rng::new(seed));
            let b = random_sources(n, k, &mut Rng::new(seed));
            assert_eq!(
                a, b,
                "seed {seed}, n={n}, k={k}: placement must be deterministic"
            );
        }
    }
}

#[test]
fn different_seeds_usually_differ() {
    // Not a hard guarantee for any single pair, but across 20 seed pairs
    // on 50 nodes at least one permutation must differ — otherwise the
    // placement is ignoring its RNG.
    let n = 50;
    let k = 10;
    let baseline = random_sources(n, k, &mut Rng::new(0));
    let diverged = (1..=20u64).any(|s| random_sources(n, k, &mut Rng::new(s)) != baseline);
    assert!(diverged, "source placement ignores the seed");
}
