//! Dynamic-topology tests across both schedulers: scripted mutation
//! sequences pin the boundary semantics, and the churn / fading /
//! waypoint models are exercised for reproducibility, termination, and
//! accounting invariants.

use gossip_core::time::TICKS_PER_ROUND;
use gossip_core::{NodeId, Rng, SimTime, Topology};
use gossip_dynamics::{
    Churn, DynamicsModel, EdgeFading, Mutation, MutationKind, MutationStream, RejoinPolicy,
    Waypoint, DEFAULT_SPEED_PER_ROUND,
};
use gossip_protocols::{AdvertGossip, GossipProtocol, UniformGossip};
use gossip_sim::{random_sources, AsyncScheduler, Scheduler, SimConfig, SimResult, SyncScheduler};

/// A fixed, pre-scripted mutation sequence — the deterministic harness
/// for pinning exactly when each scheduler applies a mutation.
struct Script(Vec<Mutation>);

impl Script {
    fn depart(ticks: u64, node: u32) -> Mutation {
        Mutation {
            time: SimTime(ticks),
            kind: MutationKind::Depart(NodeId(node)),
        }
    }

    fn rejoin(ticks: u64, node: u32, reset: bool) -> Mutation {
        Mutation {
            time: SimTime(ticks),
            kind: MutationKind::Rejoin {
                node: NodeId(node),
                reset_messages: reset,
            },
        }
    }
}

impl DynamicsModel for Script {
    fn name(&self) -> String {
        "script".to_string()
    }
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }
    fn stream(&self, _topology: &Topology, _seed: u64) -> Box<dyn MutationStream> {
        Box::new(ScriptStream(self.0.clone().into()))
    }
}

struct ScriptStream(std::collections::VecDeque<Mutation>);

impl MutationStream for ScriptStream {
    fn peek_time(&self) -> Option<SimTime> {
        self.0.front().map(|m| m.time)
    }
    fn next(&mut self) -> Option<Mutation> {
        self.0.pop_front()
    }
}

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(SyncScheduler::default()),
        Box::new(AsyncScheduler::default()),
    ]
}

fn run_dynamic(
    scheduler: &dyn Scheduler,
    topo: &Topology,
    dynamics: &dyn DynamicsModel,
    protocol: &dyn GossipProtocol,
    k: usize,
    seed: u64,
) -> SimResult {
    let mut rng = Rng::new(seed ^ 0xfeed);
    let sources = random_sources(topo.num_nodes(), k, &mut rng);
    let cfg = SimConfig {
        max_rounds: 60 * topo.num_nodes() + 200,
        record_rounds: true,
    };
    scheduler.run_dynamic(topo, dynamics, protocol, &sources, seed, &cfg)
}

fn assert_result_invariants(result: &SimResult) {
    assert_eq!(
        result.total_connections,
        result.productive_connections + result.wasted_connections
    );
    let stats = result.dynamics.as_ref().expect("dynamic run carries stats");
    assert!(stats.min_alive <= stats.peak_alive);
    assert!(stats.peak_alive <= result.nodes);
    assert!(stats.final_alive <= stats.peak_alive);
    assert!(stats.final_alive >= stats.min_alive);
    let timeline = &stats.coverage_timeline;
    assert!(!timeline.is_empty(), "timeline always has its t=0 anchor");
    assert_eq!(timeline[0].time, 0);
    assert_eq!(timeline[0].alive, result.nodes);
    assert!(timeline.windows(2).all(|w| w[0].time <= w[1].time));
    assert!(timeline
        .iter()
        .all(|p| p.informed_alive <= p.alive && p.alive <= result.nodes));
    if result.completed {
        assert_eq!(result.complete_nodes, stats.final_alive);
        assert!(stats.final_alive > 0, "empty networks cannot complete");
    }
}

#[test]
fn sync_applies_mutations_at_the_boundary_opening_their_round() {
    // advert on line(2) deterministically connects 0 -> 1 in round 1.
    let topo = Topology::line(2);
    let sources = [NodeId(0)];
    let cfg = SimConfig::default();

    // A departure anywhere inside round 1's window [0, 1024) lands before
    // round 1 runs: node 1 is gone, the survivor covers the network, and
    // gossip is complete at round 0.
    let early = Script(vec![Script::depart(1023, 1)]);
    let result =
        SyncScheduler::default().run_dynamic(&topo, &early, &AdvertGossip, &sources, 7, &cfg);
    assert!(result.completed);
    assert_eq!(result.rounds_to_completion, Some(0));
    assert_eq!(result.complete_nodes, 1);

    // One tick later the departure belongs to round 2's window, so round
    // 1 still runs on the full line and completes gossip first.
    let late = Script(vec![Script::depart(1024, 1)]);
    let result =
        SyncScheduler::default().run_dynamic(&topo, &late, &AdvertGossip, &sources, 7, &cfg);
    assert!(result.completed);
    assert_eq!(result.rounds_to_completion, Some(1));
    assert_eq!(result.complete_nodes, 2);
}

#[test]
fn emptied_network_never_completes() {
    let topo = Topology::ring(3);
    let script = Script(vec![
        Script::depart(0, 0),
        Script::depart(0, 1),
        Script::depart(0, 2),
    ]);
    let cfg = SimConfig {
        max_rounds: 50,
        ..SimConfig::default()
    };
    for scheduler in schedulers() {
        let result = scheduler.run_dynamic(&topo, &script, &UniformGossip, &[NodeId(0)], 3, &cfg);
        assert!(
            !result.completed,
            "{}: empty network completed",
            scheduler.name()
        );
        assert_eq!(result.complete_nodes, 0);
        let stats = result.dynamics.expect("stats");
        assert_eq!(stats.departures, 3);
        assert_eq!(stats.final_alive, 0);
        assert_eq!(stats.min_alive, 0);
    }
}

#[test]
fn gossip_crosses_a_dead_gap_only_after_the_rejoin() {
    // line(3) with the middle node down from the start: the source cannot
    // reach node 2 until node 1 rejoins at round ~10.
    let topo = Topology::line(3);
    let rejoin_ticks = 10 * TICKS_PER_ROUND;
    let script = Script(vec![
        Script::depart(0, 1),
        Script::rejoin(rejoin_ticks, 1, false),
    ]);
    for scheduler in schedulers() {
        let cfg = SimConfig::default();
        let result = scheduler.run_dynamic(&topo, &script, &AdvertGossip, &[NodeId(0)], 11, &cfg);
        assert!(result.completed, "{}", scheduler.name());
        assert!(
            result.virtual_time_to_completion.unwrap() > rejoin_ticks,
            "{}: completed before the gap closed",
            scheduler.name()
        );
        assert_eq!(result.complete_nodes, 3);
        let stats = result.dynamics.expect("stats");
        assert_eq!((stats.departures, stats.rejoins), (1, 1));
    }
}

#[test]
fn churn_runs_are_reproducible_and_terminate() {
    let topo = Topology::ring(100);
    let model = Churn {
        rate: 0.1,
        rejoin: RejoinPolicy::Keep,
        mean_downtime: 4.0,
    };
    for scheduler in schedulers() {
        let a = run_dynamic(scheduler.as_ref(), &topo, &model, &AdvertGossip, 1, 42);
        let b = run_dynamic(scheduler.as_ref(), &topo, &model, &AdvertGossip, 1, 42);
        assert_eq!(
            a,
            b,
            "{}: same seed must reproduce identically",
            scheduler.name()
        );
        assert_result_invariants(&a);
        let stats = a.dynamics.as_ref().expect("stats");
        assert!(stats.departures > 0, "10% churn must actually churn");
        assert!(stats.rejoins > 0);
        // Different seeds diverge.
        let c = run_dynamic(scheduler.as_ref(), &topo, &model, &AdvertGossip, 1, 43);
        assert_ne!(
            (a.virtual_time, a.total_connections),
            (c.virtual_time, c.total_connections),
            "{}: seeds should diverge",
            scheduler.name()
        );
    }
}

#[test]
fn churn_with_lose_policy_still_completes() {
    let topo = Topology::complete(24);
    let model = Churn {
        rate: 0.05,
        rejoin: RejoinPolicy::Lose,
        mean_downtime: 2.0,
    };
    for scheduler in schedulers() {
        let result = run_dynamic(scheduler.as_ref(), &topo, &model, &UniformGossip, 2, 9);
        assert!(
            result.completed,
            "{}: losing rejoiners must still re-learn and complete",
            scheduler.name()
        );
        assert_result_invariants(&result);
    }
}

#[test]
fn fading_runs_complete_and_count_edge_events() {
    let topo = Topology::grid(36);
    let model = EdgeFading {
        fade_prob: 0.1,
        mean_downtime: 1.0,
    };
    for scheduler in schedulers() {
        let result = run_dynamic(scheduler.as_ref(), &topo, &model, &AdvertGossip, 1, 5);
        assert!(
            result.completed,
            "{}: fading stalled the run",
            scheduler.name()
        );
        assert_result_invariants(&result);
        let stats = result.dynamics.as_ref().expect("stats");
        assert!(stats.edge_downs > 0);
        assert_eq!(stats.departures, 0, "fading never kills nodes");
        assert_eq!(stats.peak_alive, 36);
        assert_eq!(stats.min_alive, 36);
    }
}

#[test]
fn waypoint_mobility_completes_on_an_rgg() {
    let mut rng = Rng::new(77);
    let (topo, geometry) = Topology::random_geometric_with_geometry(40, &mut rng);
    let model = Waypoint {
        geometry,
        speed: DEFAULT_SPEED_PER_ROUND,
    };
    for scheduler in schedulers() {
        let result = run_dynamic(scheduler.as_ref(), &topo, &model, &AdvertGossip, 1, 13);
        assert!(
            result.completed,
            "{}: mobility stalled the run",
            scheduler.name()
        );
        assert_result_invariants(&result);
        let stats = result.dynamics.as_ref().expect("stats");
        assert!(stats.rewires > 0, "nodes must actually move");
    }
}

#[test]
fn async_severs_connections_whose_endpoints_die() {
    // Aggressive churn with long transfer latencies: some departures must
    // land mid-transfer, and each severed connection is counted without
    // ever corrupting the matcher (the debug asserts in the matcher would
    // fire on any state bug in this test build).
    let topo = Topology::complete(30);
    let model = Churn {
        rate: 0.4,
        rejoin: RejoinPolicy::Keep,
        mean_downtime: 1.0,
    };
    let sched = AsyncScheduler {
        threads: 1,
        timing: gossip_core::TimingConfig {
            min_latency: 512,
            max_latency: 2048,
            ..Default::default()
        },
    };
    let mut severed = 0;
    for seed in 0..5 {
        let result = run_dynamic(&sched, &topo, &model, &UniformGossip, 1, seed);
        assert_result_invariants(&result);
        severed += result.dynamics.expect("stats").severed_connections;
    }
    assert!(
        severed > 0,
        "40% churn with ~1-round transfers must sever some connection"
    );
}

#[test]
fn history_rows_stay_consistent_under_churn() {
    let topo = Topology::ring(60);
    let model = Churn {
        rate: 0.15,
        rejoin: RejoinPolicy::Keep,
        mean_downtime: 3.0,
    };
    for scheduler in schedulers() {
        let result = run_dynamic(scheduler.as_ref(), &topo, &model, &UniformGossip, 1, 21);
        let history = result.rounds.as_ref().expect("history requested");
        assert_eq!(
            history.len(),
            result.rounds_executed,
            "{}",
            scheduler.name()
        );
        for (i, row) in history.iter().enumerate() {
            assert_eq!(row.round, i + 1);
            assert!(row.productive <= row.connections);
            assert!(row.complete_nodes <= 60);
        }
        assert_eq!(
            history.iter().map(|r| r.connections).sum::<usize>(),
            result.total_connections,
            "{}",
            scheduler.name()
        );
        assert_eq!(
            history.iter().map(|r| r.productive).sum::<usize>(),
            result.productive_connections,
            "{}",
            scheduler.name()
        );
    }
}
