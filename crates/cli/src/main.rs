use gossip_cli::{csv_header, parse_args, run_sweep_iter, to_csv_row, to_json, Command, USAGE};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Command::Help) => {
            let _ = std::io::stdout().write_all(USAGE.as_bytes());
        }
        Ok(Command::Run(cfg)) => {
            // One line per swept seed (one line total by default),
            // streamed as each run finishes; CSV leads with its header.
            let csv = cfg.format == "csv";
            if csv {
                // Ignore write errors: a closed pipe (`gossip-sim | head`)
                // is a normal way for a consumer to stop reading output.
                let _ = writeln!(std::io::stdout(), "{}", csv_header());
            }
            for result in run_sweep_iter(&cfg) {
                let line = if csv {
                    to_csv_row(&result)
                } else {
                    to_json(&result)
                };
                let _ = writeln!(std::io::stdout(), "{line}");
                if !result.completed {
                    eprintln!(
                        "warning: seed {}: gossip did not complete within {} rounds",
                        result.seed, result.rounds_executed
                    );
                }
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
