use gossip_cli::{parse_args, usage, Command};
use gossip_experiments::{
    bench_to_json, effective_threads, run_bench, Emitter, Scenario, SchedulerSpec,
};
use std::io::Write;

/// Run a batch of scenarios (a single `run` invocation is a one-cell
/// batch; a grid is many), streaming one line per run to stdout. Write
/// errors are ignored: a closed pipe (`gossip-sim | head`) is a normal
/// way for a consumer to stop reading output.
fn run_and_emit(scenarios: &[Scenario]) {
    let mut emitter = Emitter::new(scenarios[0].output.format, std::io::stdout().lock());
    let mut clamp_warned = false;
    for scenario in scenarios {
        if let SchedulerSpec::Sync { threads } = scenario.scheduler {
            if let (_, Some(warning)) = effective_threads(threads) {
                if !clamp_warned {
                    clamp_warned = true;
                    eprintln!("warning: {warning}");
                }
            }
        }
        for (result, meta) in scenario.sweep_timed_iter() {
            let _ = emitter.emit(scenario, &result, &meta);
            if !result.completed {
                eprintln!(
                    "warning: {}: gossip did not complete within {} rounds",
                    scenario.with_seed(result.seed).scenario_id(),
                    result.rounds_executed
                );
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Command::Help) => {
            let _ = std::io::stdout().write_all(usage().as_bytes());
        }
        Ok(Command::Run(scenario)) => run_and_emit(&[scenario]),
        Ok(Command::Grid(scenarios)) => {
            let runs: usize = scenarios.iter().map(|s| s.seeds).sum();
            eprintln!("grid: {} cell(s), {} run(s)", scenarios.len(), runs);
            run_and_emit(&scenarios);
        }
        Ok(Command::Bench(bench)) => {
            if let SchedulerSpec::Sync { threads } = bench.scenario.scheduler {
                if let (_, Some(warning)) = effective_threads(threads) {
                    eprintln!("warning: {warning}");
                }
            }
            let report = run_bench(&bench);
            let _ = writeln!(std::io::stdout(), "{}", bench_to_json(&report));
        }
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
