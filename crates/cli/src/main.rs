use gossip_cli::{parse_args, usage, Command};
use gossip_experiments::{
    bench_to_json, effective_threads, run_bench, Emitter, RunMeta, Scenario, SchedulerSpec,
};
use gossip_telemetry::analyze::Analyzer;
use gossip_telemetry::TraceWriter;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::time::Instant;

/// Run a batch of scenarios (a single `run` invocation is a one-cell
/// batch; a grid is many), streaming one line per run to stdout through a
/// buffered, explicitly flushed writer. I/O errors propagate to [`main`],
/// which treats a closed pipe (`gossip-sim | head`) as a normal way for a
/// consumer to stop reading and anything else as a real error.
///
/// With `trace`, every run's semantic events stream to the given file as
/// schema-versioned JSONL: one header line per run, then one line per
/// event. Tracing is execution-only — by the engines' determinism-under-
/// observation contract the emitted run lines are byte-identical with it
/// on or off, and the trace itself is byte-identical at any thread count.
///
/// With `progress`, a per-run heartbeat (run i/N, elapsed, ETA) goes to
/// stderr; stdout stays reserved for run lines.
fn run_and_emit(scenarios: &[Scenario], trace: Option<&str>, progress: bool) -> io::Result<()> {
    let mut emitter = Emitter::new(
        scenarios[0].output.format,
        BufWriter::new(io::stdout().lock()),
    );
    let mut tracer = match trace {
        Some(path) => {
            let file = File::create(path)
                .map_err(|e| io::Error::new(e.kind(), format!("--trace {path}: {e}")))?;
            Some(TraceWriter::new(BufWriter::new(file)))
        }
        None => None,
    };
    let total_runs: usize = scenarios.iter().map(|s| s.seeds).sum();
    let sweep_started = Instant::now();
    let mut done = 0usize;
    let mut clamp_warned = false;
    for scenario in scenarios {
        if let SchedulerSpec::Sync { threads } = scenario.scheduler {
            if let (_, Some(warning)) = effective_threads(threads) {
                if !clamp_warned {
                    clamp_warned = true;
                    eprintln!("warning: {warning}");
                }
            }
        }
        // The per-seed loop mirrors `Scenario::sweep_timed_iter` exactly
        // (same seed derivation, same timing) but is inlined so the trace
        // writer can stamp each run's header before probing it.
        let threads = scenario.scheduler.effective_threads();
        for offset in 0..scenario.seeds as u64 {
            let one = scenario.with_seed(scenario.seed.wrapping_add(offset));
            let started = Instant::now();
            let result = match tracer.as_mut() {
                Some(tw) => {
                    tw.begin_run(&one.scenario_id(), one.nodes, one.messages, one.seed);
                    one.run_probed(tw)
                }
                None => one.run(),
            };
            let meta = RunMeta {
                threads,
                wall_ms: started.elapsed().as_millis() as u64,
            };
            emitter.emit(scenario, &result, &meta)?;
            done += 1;
            if !result.completed {
                eprintln!(
                    "warning: {}: gossip did not complete within {} rounds",
                    one.scenario_id(),
                    result.rounds_executed
                );
            }
            if progress {
                let elapsed = sweep_started.elapsed().as_secs_f64();
                let eta = elapsed / done as f64 * (total_runs.saturating_sub(done)) as f64;
                eprintln!(
                    "progress: run {done}/{total_runs} ({}) elapsed {elapsed:.1}s eta {eta:.1}s",
                    one.scenario_id()
                );
            }
        }
    }
    emitter.into_inner().flush()?;
    if let Some(tw) = tracer {
        tw.finish()
            .map_err(|e| io::Error::new(e.kind(), format!("--trace: {e}")))?;
    }
    Ok(())
}

/// `analyze`: aggregate run lines and trace streams from the given files
/// (stdin when none) into a plain-text report on stdout.
fn analyze(paths: &[String]) -> io::Result<()> {
    let mut analyzer = Analyzer::default();
    if paths.is_empty() {
        for line in io::stdin().lock().lines() {
            analyzer.add_line(&line?);
        }
    } else {
        for path in paths {
            let file =
                File::open(path).map_err(|e| io::Error::new(e.kind(), format!("{path}: {e}")))?;
            for line in BufReader::new(file).lines() {
                analyzer
                    .add_line(&line.map_err(|e| io::Error::new(e.kind(), format!("{path}: {e}")))?);
            }
        }
    }
    let mut out = BufWriter::new(io::stdout().lock());
    out.write_all(analyzer.report().as_bytes())?;
    out.flush()
}

/// Dispatch the parsed command; every arm funnels its I/O into one
/// `io::Result` so exit codes are decided in exactly one place.
fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(command) => command,
        Err(message) => {
            eprintln!("error: {message}");
            return 2;
        }
    };
    let outcome = match command {
        Command::Help => io::stdout().write_all(usage().as_bytes()),
        Command::Run { scenario, trace } => run_and_emit(&[scenario], trace.as_deref(), false),
        Command::Grid {
            scenarios,
            progress,
        } => {
            let runs: usize = scenarios.iter().map(|s| s.seeds).sum();
            eprintln!("grid: {} cell(s), {} run(s)", scenarios.len(), runs);
            run_and_emit(&scenarios, None, progress)
        }
        Command::Bench(bench) => {
            if let SchedulerSpec::Sync { threads } = bench.scenario.scheduler {
                if let (_, Some(warning)) = effective_threads(threads) {
                    eprintln!("warning: {warning}");
                }
            }
            let report = run_bench(&bench);
            writeln!(io::stdout(), "{}", bench_to_json(&report))
        }
        Command::Analyze(paths) => analyze(&paths),
    };
    match outcome {
        Ok(()) => 0,
        // A consumer hanging up early (`gossip-sim run | head`) is a
        // normal end of output, not an error.
        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn main() {
    std::process::exit(real_main());
}
