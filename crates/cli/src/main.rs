use gossip_cli::{parse_args, run_experiment, to_json, Command, USAGE};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Command::Help) => {
            let _ = std::io::stdout().write_all(USAGE.as_bytes());
        }
        Ok(Command::Run(cfg)) => {
            let result = run_experiment(&cfg);
            // Ignore write errors: a closed pipe (`gossip-sim | head`) is a
            // normal way for a consumer to stop reading JSON.
            let _ = writeln!(std::io::stdout(), "{}", to_json(&result));
            if !result.completed {
                eprintln!(
                    "warning: gossip did not complete within {} rounds",
                    result.rounds_executed
                );
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
