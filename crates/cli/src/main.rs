use gossip_cli::{parse_args, usage, Command};
use gossip_experiments::{
    bench_to_json, effective_threads, execute_grid, parse_baselines, read_checkpoint, run_bench,
    soak_line_json, soak_one, verify_against, CellRecord, CheckpointWriter, Emitter, RunMeta,
    Scenario, SchedulerSpec, SoakConfig,
};
use gossip_telemetry::analyze::Analyzer;
use gossip_telemetry::TraceWriter;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::time::Instant;

/// Run one scenario's sweep (the `run` subcommand), streaming one line per
/// run to stdout through a buffered, explicitly flushed writer. I/O errors
/// propagate to [`main`], which treats a closed pipe (`gossip-sim | head`)
/// as a normal way for a consumer to stop reading and anything else as a
/// real error. (Grids go through [`run_grid`]'s cell pool instead.)
///
/// With `trace`, every run's semantic events stream to the given file as
/// schema-versioned JSONL: one header line per run, then one line per
/// event. Tracing is execution-only — by the engines' determinism-under-
/// observation contract the emitted run lines are byte-identical with it
/// on or off, and the trace itself is byte-identical at any thread count.
fn run_and_emit(scenario: &Scenario, trace: Option<&str>) -> io::Result<()> {
    let mut emitter = Emitter::new(scenario.output.format, BufWriter::new(io::stdout().lock()));
    let mut tracer = match trace {
        Some(path) => {
            let file = File::create(path)
                .map_err(|e| io::Error::new(e.kind(), format!("--trace {path}: {e}")))?;
            Some(TraceWriter::new(BufWriter::new(file)))
        }
        None => None,
    };
    warn_thread_clamp(std::slice::from_ref(scenario));
    // The per-seed loop mirrors `Scenario::sweep_timed_iter` exactly
    // (same seed derivation, same timing) but is inlined so the trace
    // writer can stamp each run's header before probing it.
    let threads = scenario.scheduler.effective_threads();
    for offset in 0..scenario.seeds as u64 {
        let one = scenario.with_seed(scenario.seed.wrapping_add(offset));
        let started = Instant::now();
        let result = match tracer.as_mut() {
            Some(tw) => {
                tw.begin_run(&one.scenario_id(), one.nodes, one.messages, one.seed);
                one.run_probed(tw)
            }
            None => one.run(),
        };
        let meta = RunMeta {
            threads,
            wall_ms: started.elapsed().as_millis() as u64,
        };
        emitter.emit(scenario, &result, &meta)?;
        if !result.completed {
            eprintln!(
                "warning: {}: gossip did not complete within {} rounds",
                one.scenario_id(),
                result.rounds_executed
            );
        }
    }
    emitter.into_inner().flush()?;
    if let Some(tw) = tracer {
        tw.finish()
            .map_err(|e| io::Error::new(e.kind(), format!("--trace: {e}")))?;
    }
    Ok(())
}

/// Warn (once) when a sync cell's requested thread count exceeds the
/// machine and will be clamped — the same warning the serial path prints.
fn warn_thread_clamp(scenarios: &[Scenario]) {
    for scenario in scenarios {
        if let SchedulerSpec::Sync { threads } = scenario.scheduler {
            if let (_, Some(warning)) = effective_threads(threads) {
                eprintln!("warning: {warning}");
                return;
            }
        }
    }
}

/// `grid`: run the expanded cells on the work-stealing pool, streaming
/// lines to stdout in row-major cell order — byte-identical (modulo
/// `wall_ms`) to a serial grid at any `--cores` value. With
/// `--checkpoint`, every completed cell is durably recorded; with
/// `--resume`, recorded cells replay from the checkpoint instead of
/// re-running, and the combined stdout matches an uninterrupted run.
fn run_grid(
    scenarios: &[Scenario],
    progress: bool,
    cores: usize,
    checkpoint: Option<&str>,
    resume: bool,
) -> io::Result<()> {
    let runs: usize = scenarios.iter().map(|s| s.seeds).sum();
    eprintln!("grid: {} cell(s), {} run(s)", scenarios.len(), runs);
    warn_thread_clamp(scenarios);

    let mut resumed: Vec<Option<CellRecord>> = Vec::new();
    let writer = match (checkpoint, resume) {
        (None, _) => None, // --resume without --checkpoint is rejected at parse time
        (Some(path), false) => Some(CheckpointWriter::create(path)?),
        (Some(path), true) => {
            let replay = read_checkpoint(path)?;
            if replay.torn_tail {
                eprintln!(
                    "warning: --resume: '{path}' ends in a torn record (crash mid-write); \
                     dropping it and re-running its cell"
                );
            }
            resumed = verify_against(replay.records, scenarios).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("--resume: checkpoint '{path}' does not match this grid: {e}"),
                )
            })?;
            let done = resumed.iter().filter(|slot| slot.is_some()).count();
            eprintln!(
                "resume: {done}/{} cell(s) already completed in '{path}'",
                scenarios.len()
            );
            Some(CheckpointWriter::append(path)?)
        }
    };

    let mut out = BufWriter::new(io::stdout().lock());
    let summary = execute_grid(scenarios, cores, resumed, writer, progress, &mut out)?;
    out.flush()?;
    eprintln!(
        "grid: done ({} worker(s), {} cell(s) stolen, {} cell(s) resumed)",
        summary.workers, summary.stolen, summary.resumed
    );
    Ok(())
}

/// `soak`: re-measure every baseline in the given `BENCH_*.json` files and
/// emit one JSON verdict line each. Returns whether any baseline
/// regressed (the caller turns that into a nonzero exit).
fn run_soak(paths: &[String], config: &SoakConfig) -> io::Result<bool> {
    let mut out = BufWriter::new(io::stdout().lock());
    let mut any_regressed = false;
    for path in paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| io::Error::new(e.kind(), format!("soak: cannot read '{path}': {e}")))?;
        let (baselines, warnings) = parse_baselines(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("soak: '{path}' is not a usable baseline file: {e}"),
            )
        })?;
        for warning in warnings {
            eprintln!("warning: soak: {path}: {warning}");
        }
        for baseline in &baselines {
            let outcome = soak_one(baseline, config);
            if outcome.regressed {
                any_regressed = true;
                eprintln!(
                    "soak: REGRESSED {}: mean {:.0} {} vs baseline {:.0} (floor {:.0})",
                    outcome.scenario_id,
                    outcome.mean,
                    outcome.metric,
                    outcome.baseline,
                    outcome.baseline * (1.0 - config.tolerance)
                );
            }
            writeln!(out, "{}", soak_line_json(&outcome, config))?;
        }
    }
    out.flush()?;
    Ok(any_regressed)
}

/// `analyze`: aggregate run lines and trace streams from the given files
/// (stdin when none) into a plain-text report on stdout.
fn analyze(paths: &[String]) -> io::Result<()> {
    let mut analyzer = Analyzer::default();
    if paths.is_empty() {
        for line in io::stdin().lock().lines() {
            analyzer.add_line(&line?);
        }
    } else {
        for path in paths {
            let file =
                File::open(path).map_err(|e| io::Error::new(e.kind(), format!("{path}: {e}")))?;
            for line in BufReader::new(file).lines() {
                analyzer
                    .add_line(&line.map_err(|e| io::Error::new(e.kind(), format!("{path}: {e}")))?);
            }
        }
    }
    let mut out = BufWriter::new(io::stdout().lock());
    out.write_all(analyzer.report().as_bytes())?;
    out.flush()
}

/// Dispatch the parsed command; every arm funnels its I/O into one
/// `io::Result` so exit codes are decided in exactly one place.
fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(command) => command,
        Err(message) => {
            eprintln!("error: {message}");
            return 2;
        }
    };
    let outcome = match command {
        Command::Help => io::stdout().write_all(usage().as_bytes()),
        Command::Run { scenario, trace } => run_and_emit(&scenario, trace.as_deref()),
        Command::Grid {
            scenarios,
            progress,
            cores,
            checkpoint,
            resume,
        } => run_grid(&scenarios, progress, cores, checkpoint.as_deref(), resume),
        Command::Soak {
            paths,
            iterations,
            tolerance,
        } => {
            let config = SoakConfig {
                iterations,
                tolerance,
            };
            return match run_soak(&paths, &config) {
                Ok(false) => 0,
                Ok(true) => {
                    eprintln!("error: soak: throughput regressed beyond the tolerance");
                    1
                }
                Err(e) if e.kind() == io::ErrorKind::BrokenPipe => 0,
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            };
        }
        Command::Bench(bench) => {
            if let SchedulerSpec::Sync { threads } = bench.scenario.scheduler {
                if let (_, Some(warning)) = effective_threads(threads) {
                    eprintln!("warning: {warning}");
                }
            }
            let report = run_bench(&bench);
            writeln!(io::stdout(), "{}", bench_to_json(&report))
        }
        Command::Analyze(paths) => analyze(&paths),
    };
    match outcome {
        Ok(()) => 0,
        // A consumer hanging up early (`gossip-sim run | head`) is a
        // normal end of output, not an error.
        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn main() {
    std::process::exit(real_main());
}
