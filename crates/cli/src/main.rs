use gossip_cli::{
    bench_to_json, csv_header, effective_threads, parse_args, run_bench, run_sweep_timed_iter,
    to_csv_row, to_json_timed, Command, USAGE,
};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Command::Help) => {
            let _ = std::io::stdout().write_all(USAGE.as_bytes());
        }
        Ok(Command::Run(cfg)) => {
            if let (_, Some(warning)) = effective_threads(cfg.threads) {
                eprintln!("warning: {warning}");
            }
            // One line per swept seed (one line total by default),
            // streamed as each run finishes; CSV leads with its header.
            let csv = cfg.format == "csv";
            if csv {
                // Ignore write errors: a closed pipe (`gossip-sim | head`)
                // is a normal way for a consumer to stop reading output.
                let _ = writeln!(std::io::stdout(), "{}", csv_header());
            }
            for (result, meta) in run_sweep_timed_iter(&cfg) {
                let line = if csv {
                    to_csv_row(&result, &meta)
                } else {
                    to_json_timed(&result, &meta)
                };
                let _ = writeln!(std::io::stdout(), "{line}");
                if !result.completed {
                    eprintln!(
                        "warning: seed {}: gossip did not complete within {} rounds",
                        result.seed, result.rounds_executed
                    );
                }
            }
        }
        Ok(Command::Bench(cfg)) => {
            if let (_, Some(warning)) = effective_threads(cfg.threads) {
                eprintln!("warning: {warning}");
            }
            let report = run_bench(&cfg);
            let _ = writeln!(std::io::stdout(), "{}", bench_to_json(&report));
        }
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
