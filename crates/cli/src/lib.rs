//! Library half of the `gossip-sim` binary: a thin flag-parsing front-end
//! over the [`gossip_experiments`] crate, kept out of `main.rs` so
//! integration tests can drive the exact code path the binary runs.
//!
//! The CLI owns **no** experiment knowledge: every `--key value` flag is
//! one entry of the shared assignment vocabulary
//! ([`gossip_experiments::ASSIGNMENTS`]) fed verbatim into a
//! [`ScenarioBuilder`], and the flag section of [`usage`] is generated
//! from the same table — so help text, the flag parser, spec files, and
//! grid axes cannot diverge. Validation lives entirely in the builder's
//! structured [`SpecError`](gossip_experiments::SpecError)s; this crate
//! only formats them.

use gossip_experiments::{
    join_errors, parse_spec, AssignmentDef, Axis, BenchScenario, Grid, ProtocolSpec, Scenario,
    ScenarioBuilder, ASSIGNMENTS, DEFAULT_BENCH_ROUNDS,
};

/// Outcome of argument parsing: run a scenario sweep, expand and run a
/// grid, bench the engine, analyze output files, or print help.
// One Command exists per process; boxing the payloads to shrink the enum
// would be indirection for its own sake.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Command {
    Run {
        scenario: Scenario,
        /// `--trace FILE`: stream every semantic event of every run in
        /// the sweep to FILE as schema-versioned JSONL. An execution-only
        /// knob — it never enters the scenario or its `scenario_id`, and
        /// (by the engines' determinism-under-observation contract) never
        /// changes the results.
        trace: Option<String>,
    },
    Bench(BenchScenario),
    /// A grid, already expanded into its validated cells (in the
    /// documented expansion order).
    Grid {
        scenarios: Vec<Scenario>,
        /// `--progress`: per-cell heartbeat on stderr (done/total,
        /// running and stolen counts, running-mean ETA, per-worker
        /// active cell). Never touches stdout.
        progress: bool,
        /// `--cores N`: global core budget for the work-stealing cell
        /// pool, partitioned between cell-level parallelism and each
        /// cell's own `--threads`. Execution-only — stdout is
        /// byte-identical (modulo `wall_ms`) at any value.
        cores: usize,
        /// `--checkpoint FILE`: append one fsync'd record per completed
        /// cell, so a killed sweep resumes instead of restarting.
        checkpoint: Option<String>,
        /// `--resume`: replay completed cells from the checkpoint file
        /// (verified against this grid) and run only the rest.
        resume: bool,
    },
    /// `soak FILE...`: re-measure committed bench baselines and fail on
    /// throughput regressions beyond the tolerance.
    Soak {
        paths: Vec<String>,
        /// `--iterations N`: re-measurements per baseline.
        iterations: usize,
        /// `--tolerance F`: relative slack before a mean counts as
        /// regressed.
        tolerance: f64,
    },
    /// `analyze FILE...`: read run lines and trace streams, print the
    /// aggregate report (stdin when no files are given).
    Analyze(Vec<String>),
    Help,
}

/// Default soak iterations per baseline.
pub const DEFAULT_SOAK_ITERATIONS: usize = 3;

/// Default soak tolerance: a mean more than 20% below the baseline
/// regresses.
pub const DEFAULT_SOAK_TOLERANCE: f64 = 0.2;

/// Column where generated help text starts, matching the historical
/// hand-written layout.
const HELP_COL: usize = 48;

/// The full help text. The OPTIONS and BENCH OPTIONS flag lines are
/// generated from [`ASSIGNMENTS`]; only the framing prose is hand-written.
pub fn usage() -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(
        "gossip-sim: gossip experiments in the mobile telephone model

USAGE:
    gossip-sim [OPTIONS]
    gossip-sim grid [GRID OPTIONS] [OPTIONS]
    gossip-sim bench [BENCH OPTIONS]
    gossip-sim soak [SOAK OPTIONS] FILE...
    gossip-sim analyze [FILE...]

SUBCOMMANDS:
    grid     expand topology \u{d7} protocol \u{d7} scheduler \u{d7} \u{2026} axes into a full
             parameter grid and run every cell in one invocation, streaming
             one output line per run; each cell's result is byte-identical
             to the same scenario run standalone, at any --cores value
    bench    time the scenario's engine for a fixed round budget and report
             throughput plus the deterministic accounting totals as one JSON
             line: sync specs bench the round loop (rounds/sec,
             node-events/sec, per-phase breakdown), async specs the sliced
             event loop (events/sec, execute/merge/sweep breakdown)
    soak     re-run the bench scenarios recorded in BENCH_*.json baseline
             files and compare throughput (events/sec for async baselines,
             node-events/sec for sync ones) against the committed values;
             one JSON verdict line per baseline, nonzero exit when any
             mean regresses beyond the tolerance
    analyze  aggregate run lines and trace streams (files, or stdin when no
             files are given) into a plain-text report: rounds-to-completion
             percentiles per scenario, advert-vs-uniform speedup tables,
             dissemination-depth stats, and per-region load balance

GRID OPTIONS:
    --spec <FILE>                               spec file: [scenario] key = value base
                                                assignments, [axis] key = v1, v2 sweep
                                                axes (nesting order; last axis varies
                                                fastest), [output] format/history
    --axis <KEY=V1,V2,...>                      append one sweep axis (repeatable);
                                                applied after the spec file's axes
    --cores <N>                                 global core budget for the work-stealing
                                                cell pool: cells run concurrently on
                                                max(1, N / threads) workers; stdout stays
                                                byte-identical (modulo wall_ms) to
                                                --cores 1 [default: 1]
    --checkpoint <FILE>                         append one fsync'd JSONL record per
                                                completed cell to FILE; a killed sweep
                                                restarts from its checkpoint via --resume
                                                instead of re-running finished cells
    --resume                                    replay cells already recorded in the
                                                --checkpoint file (verified against this
                                                grid) and run only the remainder; the
                                                combined stdout is byte-identical to an
                                                uninterrupted run
    --progress                                  per-cell heartbeat on stderr (done/total,
                                                running + stolen counts, ETA from the
                                                running mean of completed-cell wall
                                                times, per-worker active cell); stdout
                                                is untouched
    plus every run option below as a base assignment shared by all cells
    (overriding the spec file's [scenario] section)

SOAK OPTIONS:
    --iterations <N>                            re-measurements per baseline; the mean
                                                is compared [default: 3]
    --tolerance <F>                             relative slack, 0 <= F < 1: regressed
                                                iff mean < baseline * (1 - F)
                                                [default: 0.2]

OPTIONS:
",
    );
    for def in ASSIGNMENTS.iter().filter(|d| d.run) {
        push_flag_lines(&mut out, def);
    }
    out.push_str(&format!(
        "    {:<width$}{}\n",
        "--trace <FILE>",
        "stream every semantic event of every run to",
        width = HELP_COL - 4
    ));
    out.push_str(&format!(
        "    {:<width$}{}\n",
        "",
        "FILE as schema-versioned JSONL (deterministic:",
        width = HELP_COL - 4
    ));
    out.push_str(&format!(
        "    {:<width$}{}\n",
        "",
        "byte-identical at any thread count, results",
        width = HELP_COL - 4
    ));
    out.push_str(&format!(
        "    {:<width$}{}\n",
        "",
        "unchanged); feed it to gossip-sim analyze",
        width = HELP_COL - 4
    ));
    out.push_str(&format!(
        "    {:<width$}print this help\n",
        "--help",
        width = HELP_COL - 4
    ));
    out.push_str("\nBENCH OPTIONS:\n");
    for def in ASSIGNMENTS.iter().filter(|d| d.bench) {
        push_flag_lines(&mut out, def);
    }
    out
}

/// Render one assignment as aligned `    --key <METAVAR>   help` lines,
/// with embedded help newlines becoming aligned continuation lines.
fn push_flag_lines(out: &mut String, def: &AssignmentDef) {
    let flag = match def.metavar {
        Some(metavar) => format!("    --{} <{}>", def.key, metavar),
        None => format!("    --{}", def.key),
    };
    let mut help_lines = def.help.lines();
    let first = help_lines.next().unwrap_or("");
    if flag.len() < HELP_COL {
        out.push_str(&format!("{flag:<HELP_COL$}{first}\n"));
    } else {
        out.push_str(&flag);
        out.push('\n');
        out.push_str(&" ".repeat(HELP_COL));
        out.push_str(first);
        out.push('\n');
    }
    for line in help_lines {
        out.push_str(&" ".repeat(HELP_COL));
        out.push_str(line);
        out.push('\n');
    }
}

/// Is this token the help flag?
fn is_help(arg: &str) -> bool {
    arg == "--help" || arg == "-h"
}

/// Look up a `--key` token in the assignment table, filtered to the
/// subcommand's scope.
fn lookup(arg: &str, scope: impl Fn(&AssignmentDef) -> bool) -> Option<&'static AssignmentDef> {
    let key = arg.strip_prefix("--")?;
    ASSIGNMENTS.iter().find(|def| def.key == key && scope(def))
}

/// Pull the flag's value from the argument stream: the next token for
/// valued flags, the literal `true` for boolean switches.
fn take_value<'a>(
    def: &AssignmentDef,
    it: &mut impl Iterator<Item = &'a String>,
) -> Result<String, String> {
    if def.metavar.is_none() {
        return Ok("true".to_string());
    }
    it.next()
        .cloned()
        .ok_or_else(|| format!("--{} requires a value", def.key))
}

/// Parse CLI arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    if args.first().is_some_and(|a| a == "bench") {
        return parse_bench_args(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "grid") {
        return parse_grid_args(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "soak") {
        return parse_soak_args(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "analyze") {
        return parse_analyze_args(&args[1..]);
    }
    let mut builder = ScenarioBuilder::new();
    let mut trace: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if is_help(arg) {
            return Ok(Command::Help);
        }
        // `--trace` is an execution-only knob, not a scenario assignment:
        // it must not enter the builder (and hence the scenario_id), so it
        // is handled as a literal like `grid`'s `--spec`/`--axis`.
        if arg == "--trace" {
            let path = it
                .next()
                .ok_or_else(|| "--trace requires a file path".to_string())?;
            trace = Some(path.clone());
            continue;
        }
        let def = lookup(arg, |d| d.run)
            .ok_or_else(|| format!("unknown argument '{arg}' (try --help)"))?;
        let value = take_value(def, &mut it)?;
        builder.set(def.key, &value);
    }
    builder
        .finish()
        .map(|scenario| Command::Run { scenario, trace })
        .map_err(|errors| join_errors(&errors))
}

/// Parse the arguments of the `analyze` subcommand: just file paths (stdin
/// when none are given). Any `--flag` here is a mistake worth rejecting —
/// analyze takes no options.
fn parse_analyze_args(args: &[String]) -> Result<Command, String> {
    let mut paths = Vec::new();
    for arg in args {
        if is_help(arg) {
            return Ok(Command::Help);
        }
        if arg.starts_with('-') {
            return Err(format!("unknown analyze argument '{arg}' (try --help)"));
        }
        paths.push(arg.clone());
    }
    Ok(Command::Analyze(paths))
}

/// Parse the arguments of the `soak` subcommand: baseline file paths plus
/// the iteration count and tolerance knobs.
fn parse_soak_args(args: &[String]) -> Result<Command, String> {
    let mut paths = Vec::new();
    let mut iterations = DEFAULT_SOAK_ITERATIONS;
    let mut tolerance = DEFAULT_SOAK_TOLERANCE;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if is_help(arg) {
            return Ok(Command::Help);
        }
        if arg == "--iterations" {
            let raw = it
                .next()
                .ok_or_else(|| "--iterations requires a count".to_string())?;
            iterations = raw
                .parse()
                .map_err(|_| format!("--iterations '{raw}' is not a positive integer"))?;
            if iterations == 0 {
                return Err("--iterations must be at least 1".to_string());
            }
            continue;
        }
        if arg == "--tolerance" {
            let raw = it
                .next()
                .ok_or_else(|| "--tolerance requires a fraction".to_string())?;
            tolerance = raw
                .parse()
                .map_err(|_| format!("--tolerance '{raw}' is not a number"))?;
            if !(0.0..1.0).contains(&tolerance) {
                return Err(format!(
                    "--tolerance {raw}: the relative slack must satisfy 0 <= F < 1"
                ));
            }
            continue;
        }
        if arg.starts_with('-') {
            return Err(format!("unknown soak argument '{arg}' (try --help)"));
        }
        paths.push(arg.clone());
    }
    if paths.is_empty() {
        return Err("soak requires at least one BENCH_*.json baseline file".to_string());
    }
    Ok(Command::Soak {
        paths,
        iterations,
        tolerance,
    })
}

/// Parse the arguments of the `bench` subcommand (everything after the
/// literal `bench`). Bench shares the scenario vocabulary — restricted to
/// the keys that affect the synchronous engine — plus the `--rounds`
/// budget, and defaults to the 10^6-node advert ring the scale work
/// targets.
fn parse_bench_args(args: &[String]) -> Result<Command, String> {
    let mut builder = ScenarioBuilder::new()
        .nodes(1_000_000)
        .protocol(ProtocolSpec::Advert);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if is_help(arg) {
            return Ok(Command::Help);
        }
        let def = lookup(arg, |d| d.bench)
            .ok_or_else(|| format!("unknown bench argument '{arg}' (try --help)"))?;
        let value = take_value(def, &mut it)?;
        builder.set(def.key, &value);
    }
    let rounds = builder.bench_rounds().unwrap_or(DEFAULT_BENCH_ROUNDS);
    let scenario = builder.finish().map_err(|errors| join_errors(&errors))?;
    Ok(Command::Bench(BenchScenario { scenario, rounds }))
}

/// Parse the arguments of the `grid` subcommand: an optional `--spec`
/// file, repeatable `--axis key=v1,v2` declarations, the execution-only
/// `--cores`/`--checkpoint`/`--resume`/`--progress` knobs, and any run
/// flags as base assignments overriding the spec file's `[scenario]`
/// section.
fn parse_grid_args(args: &[String]) -> Result<Command, String> {
    let mut spec_path: Option<String> = None;
    let mut cli_axes: Vec<Axis> = Vec::new();
    let mut base: Vec<(&'static str, String)> = Vec::new();
    let mut progress = false;
    let mut cores: usize = 1;
    let mut checkpoint: Option<String> = None;
    let mut resume = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if is_help(arg) {
            return Ok(Command::Help);
        }
        if arg == "--progress" {
            progress = true;
            continue;
        }
        if arg == "--cores" {
            let raw = it
                .next()
                .ok_or_else(|| "--cores requires a core count".to_string())?;
            cores = raw
                .parse()
                .map_err(|_| format!("--cores '{raw}' is not a positive integer"))?;
            if cores == 0 {
                return Err(
                    "--cores 0 is meaningless: the cell pool needs at least one core".to_string(),
                );
            }
            continue;
        }
        if arg == "--checkpoint" {
            let path = it
                .next()
                .ok_or_else(|| "--checkpoint requires a file path".to_string())?;
            checkpoint = Some(path.clone());
            continue;
        }
        if arg == "--resume" {
            resume = true;
            continue;
        }
        if arg == "--spec" {
            let path = it
                .next()
                .ok_or_else(|| "--spec requires a file path".to_string())?;
            spec_path = Some(path.clone());
            continue;
        }
        if arg == "--axis" {
            let raw = it
                .next()
                .ok_or_else(|| "--axis requires KEY=V1,V2,...".to_string())?;
            let (key, values) = raw
                .split_once('=')
                .ok_or_else(|| format!("--axis '{raw}': expected KEY=V1,V2,..."))?;
            cli_axes.push(Axis {
                key: key.trim().to_string(),
                values: values.split(',').map(|v| v.trim().to_string()).collect(),
            });
            continue;
        }
        let def = lookup(arg, |d| d.run)
            .ok_or_else(|| format!("unknown grid argument '{arg}' (try --help)"))?;
        let value = take_value(def, &mut it)?;
        base.push((def.key, value));
    }

    let mut grid = match spec_path {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("--spec {path}: cannot read spec file: {e}"))?;
            parse_spec(&text).map_err(|errors| join_errors(&errors))?
        }
        None => Grid::new(ScenarioBuilder::new()),
    };
    for (key, value) in &base {
        grid.base.set(key, value);
    }
    for axis in cli_axes {
        grid.push_axis(axis);
    }
    if resume && checkpoint.is_none() {
        return Err(
            "--resume replays a checkpoint file; pass --checkpoint FILE to name it".to_string(),
        );
    }
    // Expand here, once: every axis and cell error exits before any
    // output is produced, and the binary runs exactly the cells the
    // parser validated.
    let scenarios = grid.expand().map_err(|e| e.to_string())?;
    Ok(Command::Grid {
        scenarios,
        progress,
        cores,
        checkpoint,
        resume,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_dynamics::RejoinPolicy;
    use gossip_experiments::{OutputFormat, SchedulerSpec, TopologySpec};

    fn parse(args: &[&str]) -> Result<Command, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn parse_run(args: &[&str]) -> Scenario {
        match parse(args) {
            Ok(Command::Run { scenario, .. }) => scenario,
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn defaults_when_no_args() {
        assert_eq!(parse_run(&[]), Scenario::default());
    }

    #[test]
    fn full_flag_set_parses_into_typed_specs() {
        let scenario = parse_run(&[
            "--topology",
            "grid",
            "--nodes",
            "500",
            "--protocol",
            "advert",
            "--messages",
            "8",
            "--seed",
            "42",
            "--max-rounds",
            "1000",
            "--history",
        ]);
        assert_eq!(scenario.topology, TopologySpec::Grid);
        assert_eq!(scenario.nodes, 500);
        assert_eq!(scenario.protocol, ProtocolSpec::Advert);
        assert_eq!(scenario.messages, 8);
        assert_eq!(scenario.seed, 42);
        assert_eq!(scenario.max_rounds, Some(1000));
        assert!(scenario.output.history);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--topology", "torus"]).is_err());
        assert!(parse(&["--protocol", "psychic"]).is_err());
        assert!(parse(&["--nodes", "0"]).is_err());
        assert!(parse(&["--nodes", "many"]).is_err());
        assert!(parse(&["--messages", "0"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--scheduler", "quantum"]).is_err());
        assert!(parse(&["--seeds", "0"]).is_err());
        assert!(parse(&["--drift", "1.0"]).is_err());
        assert!(parse(&["--drift", "-0.5"]).is_err());
        assert!(parse(&["--drift", "slow"]).is_err());
        assert!(parse(&["--min-latency", "300", "--max-latency", "200"]).is_err());
    }

    #[test]
    fn errors_accumulate_rather_than_stopping_at_the_first() {
        let message = parse(&["--nodes", "0", "--churn-rate", "2.0"]).unwrap_err();
        assert!(message.contains("nodes"), "{message}");
        assert!(message.contains("churn"), "{message}");
    }

    #[test]
    fn dynamics_flags_parse() {
        let scenario = parse_run(&[
            "--churn-rate",
            "0.2",
            "--rejoin",
            "lose",
            "--fade-prob",
            "0.05",
        ]);
        let churn = scenario.dynamics.churn.expect("churn enabled");
        assert_eq!(churn.rate, 0.2);
        assert_eq!(churn.rejoin, RejoinPolicy::Lose);
        assert_eq!(scenario.dynamics.fade_prob, Some(0.05));
        assert!(scenario.is_dynamic());
        assert!(!Scenario::default().is_dynamic());

        let scenario = parse_run(&["--topology", "rgg", "--mobility"]);
        assert!(scenario.dynamics.mobility && scenario.is_dynamic());

        let scenario = parse_run(&["--format", "csv"]);
        assert_eq!(scenario.output.format, OutputFormat::Csv);
    }

    #[test]
    fn radius_flag_is_rgg_only() {
        let scenario = parse_run(&["--topology", "rgg", "--radius", "0.2"]);
        assert_eq!(scenario.topology, TopologySpec::Rgg { radius: Some(0.2) });
        // The alias normalizes at parse time and still takes a radius.
        let aliased = parse_run(&["--topology", "random_geometric", "--radius", "0.2"]);
        assert_eq!(aliased.topology, scenario.topology);
        assert!(parse(&["--radius", "0.2"]).is_err(), "ring has no radius");
        assert!(parse(&["--topology", "rgg", "--radius", "0"]).is_err());
        assert!(parse(&["--topology", "rgg", "--radius", "-1"]).is_err());
        assert!(parse(&["--topology", "rgg", "--radius", "wide"]).is_err());
    }

    #[test]
    fn rejects_degenerate_dynamics_configs() {
        // Explicit zero-rate dynamics is a config bug, not a static run.
        assert!(parse(&["--churn-rate", "0"]).is_err());
        assert!(parse(&["--churn-rate", "0.0"]).is_err());
        assert!(parse(&["--fade-prob", "0"]).is_err());
        // Out-of-range and non-numeric rates.
        assert!(parse(&["--churn-rate", "1.0"]).is_err());
        assert!(parse(&["--churn-rate", "-0.1"]).is_err());
        assert!(parse(&["--churn-rate", "often"]).is_err());
        assert!(parse(&["--churn-rate", "NaN"]).is_err());
        assert!(parse(&["--fade-prob", "1.5"]).is_err());
        // Policy without churn, unknown policy, and model conflicts.
        assert!(parse(&["--rejoin", "keep"]).is_err());
        assert!(parse(&["--rejoin", "banana", "--churn-rate", "0.1"]).is_err());
        assert!(parse(&["--mobility"]).is_err(), "mobility needs rgg");
        assert!(parse(&["--mobility", "--topology", "grid"]).is_err());
        assert!(parse(&["--mobility", "--topology", "rgg", "--fade-prob", "0.1"]).is_err());
        // Output-format conflicts.
        assert!(parse(&["--format", "xml"]).is_err());
        assert!(parse(&["--format", "csv", "--history"]).is_err());
        // Degenerate node counts stay rejected alongside the new flags.
        assert!(parse(&["--nodes", "0", "--churn-rate", "0.1"]).is_err());
    }

    #[test]
    fn scheduler_and_timing_flags_parse() {
        let scenario = parse_run(&[
            "--scheduler",
            "async",
            "--seeds",
            "8",
            "--drift",
            "0.25",
            "--min-latency",
            "10",
            "--max-latency",
            "500",
        ]);
        assert_eq!(scenario.seeds, 8);
        let SchedulerSpec::Async { timing, threads } = scenario.scheduler else {
            panic!("expected the async scheduler");
        };
        assert_eq!(timing.drift, 0.25);
        assert_eq!(timing.min_latency, 10);
        assert_eq!(timing.max_latency, 500);
        assert_eq!(threads, 1);
    }

    #[test]
    fn help_flag_wins() {
        assert!(matches!(
            parse(&["--nodes", "5", "--help"]),
            Ok(Command::Help)
        ));
        assert!(matches!(parse(&["bench", "--help"]), Ok(Command::Help)));
        assert!(matches!(parse(&["grid", "--help"]), Ok(Command::Help)));
    }

    #[test]
    fn threads_flag_parses_and_is_validated() {
        let scenario = parse_run(&["--threads", "4"]);
        assert_eq!(scenario.scheduler, SchedulerSpec::Sync { threads: 4 });
        assert_eq!(
            Scenario::default().scheduler,
            SchedulerSpec::Sync { threads: 1 }
        );
        assert!(parse(&["--threads", "0"]).is_err(), "zero workers rejected");
        assert!(parse(&["--threads", "many"]).is_err());
        // The time-sliced async engine shards over threads too.
        let scenario = parse_run(&["--threads", "2", "--scheduler", "async"]);
        assert!(matches!(
            scenario.scheduler,
            SchedulerSpec::Async { threads: 2, .. }
        ));
    }

    #[test]
    fn bench_subcommand_parses() {
        let Ok(Command::Bench(bench)) = parse(&["bench"]) else {
            panic!("expected Bench");
        };
        assert_eq!(bench.rounds, 64);
        assert_eq!(bench.scenario.nodes, 1_000_000);
        assert_eq!(bench.scenario.protocol, ProtocolSpec::Advert);

        let Ok(Command::Bench(bench)) = parse(&[
            "bench",
            "--topology",
            "grid",
            "--nodes",
            "5000",
            "--protocol",
            "uniform",
            "--threads",
            "2",
            "--rounds",
            "16",
            "--seed",
            "9",
        ]) else {
            panic!("expected Bench");
        };
        assert_eq!(bench.scenario.topology, TopologySpec::Grid);
        assert_eq!(bench.scenario.nodes, 5000);
        assert_eq!(bench.scenario.protocol, ProtocolSpec::Uniform);
        assert_eq!(bench.scenario.scheduler, SchedulerSpec::Sync { threads: 2 });
        assert_eq!(bench.rounds, 16);
        assert_eq!(bench.scenario.seed, 9);

        assert!(parse(&["bench", "--rounds", "0"]).is_err());
        assert!(parse(&["bench", "--threads", "0"]).is_err());
        assert!(parse(&["bench", "--topology", "torus"]).is_err());
        assert!(
            parse(&["bench", "--seeds", "4"]).is_err(),
            "sweep flags do not apply to bench"
        );
        assert!(
            parse(&["--rounds", "9"]).is_err(),
            "the round budget is bench-only"
        );
    }

    #[test]
    fn grid_subcommand_parses_axes_and_base_flags() {
        let Ok(Command::Grid {
            scenarios: cells,
            progress,
            cores,
            checkpoint,
            resume,
        }) = parse(&[
            "grid",
            "--nodes",
            "40",
            "--seed",
            "3",
            "--axis",
            "topology=ring,grid",
            "--axis",
            "protocol=uniform,advert",
        ])
        else {
            panic!("expected Grid");
        };
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|s| s.nodes == 40 && s.seed == 3));
        assert!(!progress, "progress defaults off");
        assert_eq!(cores, 1, "serial by default");
        assert!(checkpoint.is_none() && !resume);

        let Ok(Command::Grid { progress, .. }) =
            parse(&["grid", "--progress", "--axis", "seed=1,2"])
        else {
            panic!("expected Grid");
        };
        assert!(progress);

        assert!(parse(&["grid", "--axis", "nonsense"]).is_err());
        assert!(parse(&["grid", "--axis", "warp=1,2"]).is_err());
        assert!(parse(&["grid", "--axis", "topology=torus"]).is_err());
        assert!(parse(&["grid", "--spec", "/nonexistent/file.spec"]).is_err());
        assert!(parse(&["grid", "--seeds"]).is_err());
    }

    #[test]
    fn grid_pool_flags_parse() {
        let Ok(Command::Grid {
            cores,
            checkpoint,
            resume,
            ..
        }) = parse(&[
            "grid",
            "--cores",
            "4",
            "--checkpoint",
            "cp.jsonl",
            "--resume",
            "--axis",
            "seed=1,2",
        ])
        else {
            panic!("expected Grid");
        };
        assert_eq!(cores, 4);
        assert_eq!(checkpoint.as_deref(), Some("cp.jsonl"));
        assert!(resume);

        // The pool knobs are execution-only: the expanded cells are the
        // same with or without them.
        let cells_of = |args: &[&str]| match parse(args) {
            Ok(Command::Grid { scenarios, .. }) => scenarios,
            other => panic!("expected Grid, got {other:?}"),
        };
        assert_eq!(
            cells_of(&["grid", "--cores", "8", "--axis", "seed=1,2"]),
            cells_of(&["grid", "--axis", "seed=1,2"])
        );

        assert!(parse(&["grid", "--cores"]).is_err(), "--cores needs N");
        assert!(parse(&["grid", "--cores", "0"]).is_err());
        assert!(parse(&["grid", "--cores", "many"]).is_err());
        assert!(parse(&["grid", "--checkpoint"]).is_err());
        assert!(
            parse(&["grid", "--resume", "--axis", "seed=1,2"]).is_err(),
            "--resume without --checkpoint has no file to replay"
        );
        assert!(
            parse(&["--cores", "4"]).is_err(),
            "the core budget is grid-only"
        );
        assert!(parse(&["bench", "--cores", "4"]).is_err());
    }

    #[test]
    fn soak_subcommand_parses() {
        let Ok(Command::Soak {
            paths,
            iterations,
            tolerance,
        }) = parse(&["soak", "BENCH_a.json", "BENCH_b.json"])
        else {
            panic!("expected Soak");
        };
        assert_eq!(paths, vec!["BENCH_a.json", "BENCH_b.json"]);
        assert_eq!(iterations, DEFAULT_SOAK_ITERATIONS);
        assert_eq!(tolerance, DEFAULT_SOAK_TOLERANCE);

        let Ok(Command::Soak {
            iterations,
            tolerance,
            ..
        }) = parse(&[
            "soak",
            "--iterations",
            "5",
            "--tolerance",
            "0.5",
            "BENCH_a.json",
        ])
        else {
            panic!("expected Soak");
        };
        assert_eq!(iterations, 5);
        assert_eq!(tolerance, 0.5);

        assert!(matches!(parse(&["soak", "--help"]), Ok(Command::Help)));
        assert!(parse(&["soak"]).is_err(), "a soak needs baselines");
        assert!(parse(&["soak", "--iterations", "0", "f"]).is_err());
        assert!(parse(&["soak", "--tolerance", "1.5", "f"]).is_err());
        assert!(parse(&["soak", "--tolerance", "-0.1", "f"]).is_err());
        assert!(parse(&["soak", "--frobnicate", "f"]).is_err());
    }

    #[test]
    fn trace_flag_is_execution_only() {
        let Ok(Command::Run { scenario, trace }) =
            parse(&["--nodes", "50", "--trace", "out.jsonl"])
        else {
            panic!("expected Run");
        };
        assert_eq!(trace.as_deref(), Some("out.jsonl"));
        // The traced scenario is the same scenario: --trace never reaches
        // the builder, so ids (and thus output lines) are unchanged.
        assert_eq!(scenario, parse_run(&["--nodes", "50"]));
        assert_eq!(parse_run(&["--nodes", "50"]).scenario_id(), {
            let Ok(Command::Run { scenario, .. }) = parse(&["--nodes", "50", "--trace", "t"])
            else {
                panic!("expected Run");
            };
            scenario.scenario_id()
        });

        assert!(parse(&["--trace"]).is_err(), "--trace requires a path");
        assert!(
            parse(&["grid", "--trace", "t"]).is_err(),
            "tracing a whole grid is not supported"
        );
        assert!(parse(&["bench", "--trace", "t"]).is_err());
    }

    #[test]
    fn analyze_subcommand_parses() {
        let Ok(Command::Analyze(paths)) = parse(&["analyze", "a.jsonl", "b.jsonl"]) else {
            panic!("expected Analyze");
        };
        assert_eq!(paths, vec!["a.jsonl".to_string(), "b.jsonl".to_string()]);

        let Ok(Command::Analyze(paths)) = parse(&["analyze"]) else {
            panic!("expected Analyze");
        };
        assert!(paths.is_empty(), "no files means stdin");

        assert!(matches!(parse(&["analyze", "--help"]), Ok(Command::Help)));
        assert!(parse(&["analyze", "--frobnicate"]).is_err());
        assert!(parse(&["analyze", "-"]).is_err());
    }

    #[test]
    fn usage_is_generated_from_the_assignment_table() {
        let usage = usage();
        // Every run/bench key appears as a flag line.
        for def in ASSIGNMENTS {
            assert!(
                usage.contains(&format!("--{}", def.key)),
                "usage missing --{}",
                def.key
            );
        }
        // Conversely, every --flag token in the help is either a table
        // key or one of the literal subcommand/help flags — so the help
        // can never advertise a flag the parser rejects.
        for token in usage.split_whitespace() {
            let Some(key) = token.strip_prefix("--") else {
                continue;
            };
            let known = ASSIGNMENTS.iter().any(|d| d.key == key)
                || [
                    "help",
                    "spec",
                    "axis",
                    "progress",
                    "trace",
                    "cores",
                    "checkpoint",
                    "resume",
                    "iterations",
                    "tolerance",
                ]
                .contains(&key);
            assert!(known, "usage advertises unknown flag --{key}");
        }
        // And every run-scoped flag round-trips through the parser with a
        // representative value.
        let sample = |def: &AssignmentDef| -> Vec<String> {
            let flag = format!("--{}", def.key);
            match def.metavar {
                None => vec![flag],
                Some(_) => {
                    let value = match def.key {
                        "topology" => "rgg",
                        "protocol" => "advert",
                        "scheduler" => "sync",
                        "rejoin" => "keep",
                        "membership" => "hyparview",
                        "format" => "json",
                        "drift" | "radius" | "churn-rate" | "fade-prob" | "refresh-jitter" => "0.1",
                        "min-latency" | "max-latency" => "100",
                        _ => "3",
                    };
                    vec![flag, value.to_string()]
                }
            }
        };
        for def in ASSIGNMENTS.iter().filter(|d| d.run) {
            let mut args: Vec<String> = vec!["--topology".into(), "rgg".into()];
            if def.key == "rejoin" {
                args.extend(["--churn-rate".into(), "0.1".into()]);
            }
            if matches!(
                def.key,
                "active-view" | "passive-view" | "shuffle-period" | "probe-period"
            ) {
                args.extend(["--membership".into(), "hyparview".into()]);
            }
            args.extend(sample(def));
            let parsed = parse_args(&args);
            assert!(parsed.is_ok(), "--{} failed to parse: {parsed:?}", def.key);
        }
    }
}
