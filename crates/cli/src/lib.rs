//! Library half of the `gossip-sim` binary: argument parsing, experiment
//! execution, and JSON serialization, kept out of `main.rs` so integration
//! tests can drive the exact code path the binary runs.
//!
//! Serialization is hand-rolled: the workspace is dependency-free by
//! design (simulation state is flat integers, so a JSON writer is ~40
//! lines), which keeps builds hermetic.

use gossip_core::{RggGeometry, Rng, TimingConfig, Topology};
use gossip_dynamics::{
    Churn, CompositeDynamics, DynamicsModel, EdgeFading, RejoinPolicy, Waypoint,
    DEFAULT_MEAN_DOWNTIME_ROUNDS, DEFAULT_SPEED_PER_ROUND,
};
use gossip_protocols::{by_name, PROTOCOL_NAMES};
use gossip_sim::{random_sources, AsyncScheduler, Scheduler, SimConfig, SimResult, SyncScheduler};

use std::time::Instant;

/// Accepted `--topology` values. `random_geometric` is an alias for `rgg`
/// so the name echoed in result JSON round-trips back into the CLI.
pub const TOPOLOGY_NAMES: &[&str] = &[
    "line",
    "ring",
    "grid",
    "complete",
    "rgg",
    "random_geometric",
];

/// Accepted `--scheduler` values.
pub const SCHEDULER_NAMES: &[&str] = &["sync", "async"];

/// Accepted `--format` values.
pub const FORMAT_NAMES: &[&str] = &["json", "csv"];

/// Accepted `--rejoin` values.
pub const REJOIN_NAMES: &[&str] = &["keep", "lose", "none"];

pub const USAGE: &str = "gossip-sim: gossip experiments in the mobile telephone model

USAGE:
    gossip-sim [OPTIONS]
    gossip-sim bench [BENCH OPTIONS]

SUBCOMMANDS:
    bench    time the synchronous engine for a fixed number of rounds and
             report throughput (rounds/sec, node-events/sec) plus the
             deterministic accounting totals as one JSON line; takes
             --topology, --nodes, --protocol, --messages, --seed,
             --threads, and --rounds <R> (round budget, default 64)

OPTIONS:
    --topology <line|ring|grid|complete|rgg>   topology family [default: ring]
                                               (rgg = random_geometric)
    --nodes <N>                                number of nodes [default: 100]
    --protocol <uniform|advert>                gossip protocol [default: uniform]
    --scheduler <sync|async>                   execution model: synchronized rounds
                                               or event-driven virtual time [default: sync]
    --messages <K>                             rumors to spread (>64 uses
                                               hashed advertisement tags) [default: 1]
    --seed <S>                                 RNG seed [default: 1]
    --seeds <N>                                sweep N consecutive seeds starting at
                                               --seed, one JSON line each [default: 1]
    --max-rounds <R>                           round cap; the async scheduler reads it
                                               as the equivalent virtual-time cap
                                               [default: 100 + 60*N]
    --threads <T>                              shard the synchronous round loop over T
                                               worker threads (results are identical at
                                               any thread count; capped at the machine's
                                               available parallelism) [default: 1]
    --drift <F>                                async: max relative clock drift,
                                               0 <= F < 1 [default: 0.1]
    --min-latency <T>                          async: min connect/transfer latency in
                                               ticks (1024 ticks = 1 round) [default: 32]
    --max-latency <T>                          async: max connect/transfer latency in
                                               ticks [default: 256]
    --churn-rate <F>                           nodes churn: depart with per-round
                                               probability F (geometric lifetimes),
                                               0 < F < 1 [default: off]
    --rejoin <keep|lose|none>                  what a churned node remembers when it
                                               rejoins; 'none' means departed nodes
                                               never return (requires --churn-rate)
                                               [default: keep]
    --fade-prob <F>                            edges flap: fade with per-round
                                               probability F, 0 < F < 1 [default: off]
    --mobility                                 random-waypoint mobility: nodes walk the
                                               unit square and re-derive radius edges
                                               (rgg topology only; incompatible
                                               with --fade-prob)
    --format <json|csv>                        output format; csv emits a header row
                                               plus one row per seed [default: json]
    --history                                  include per-round stats in the JSON
    --help                                     print this help
";

/// A fully parsed experiment configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentConfig {
    pub topology: String,
    pub nodes: usize,
    pub protocol: String,
    pub scheduler: String,
    pub messages: usize,
    pub seed: u64,
    /// Number of consecutive seeds to sweep, starting at `seed`.
    pub seeds: usize,
    pub max_rounds: Option<usize>,
    /// Worker threads for the synchronous round loop (>= 1; results are
    /// thread-count-independent by construction).
    pub threads: usize,
    /// Max relative clock drift (async scheduler only).
    pub drift: f64,
    /// Min connection/transfer latency in ticks (async scheduler only).
    pub min_latency: u64,
    /// Max connection/transfer latency in ticks (async scheduler only).
    pub max_latency: u64,
    /// Per-round node departure probability; `None` disables churn.
    pub churn_rate: Option<f64>,
    /// What a churned node remembers when it rejoins.
    pub rejoin: RejoinPolicy,
    /// Per-round edge fade probability; `None` disables fading.
    pub fade_prob: Option<f64>,
    /// Random-waypoint mobility over the RGG embedding.
    pub mobility: bool,
    /// Output format: "json" or "csv".
    pub format: String,
    pub history: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        let timing = TimingConfig::default();
        ExperimentConfig {
            topology: "ring".to_string(),
            nodes: 100,
            protocol: "uniform".to_string(),
            scheduler: "sync".to_string(),
            messages: 1,
            seed: 1,
            seeds: 1,
            max_rounds: None,
            threads: 1,
            drift: timing.drift,
            min_latency: timing.min_latency,
            max_latency: timing.max_latency,
            churn_rate: None,
            rejoin: RejoinPolicy::Keep,
            fade_prob: None,
            mobility: false,
            format: "json".to_string(),
            history: false,
        }
    }
}

impl ExperimentConfig {
    /// The async timing distributions implied by the CLI flags.
    pub fn timing(&self) -> TimingConfig {
        TimingConfig {
            drift: self.drift,
            min_latency: self.min_latency,
            max_latency: self.max_latency,
            ..TimingConfig::default()
        }
    }

    /// The churn model implied by the CLI flags, if churn is enabled.
    pub fn churn_model(&self) -> Option<Churn> {
        self.churn_rate.map(|rate| Churn {
            rate,
            rejoin: self.rejoin,
            mean_downtime: DEFAULT_MEAN_DOWNTIME_ROUNDS,
        })
    }

    /// The fading model implied by the CLI flags, if fading is enabled.
    pub fn fading_model(&self) -> Option<EdgeFading> {
        self.fade_prob.map(|fade_prob| EdgeFading {
            fade_prob,
            mean_downtime: 1.0,
        })
    }

    /// Does this experiment run over a mutating network?
    pub fn is_dynamic(&self) -> bool {
        self.churn_rate.is_some() || self.fade_prob.is_some() || self.mobility
    }
}

/// Configuration of one `bench` invocation: time the synchronous engine
/// over a fixed round budget rather than running to completion, so a
/// 10^6-node topology benches in seconds even though its gossip would
/// take hundreds of thousands of rounds to finish.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchConfig {
    pub topology: String,
    pub nodes: usize,
    pub protocol: String,
    pub messages: usize,
    pub seed: u64,
    pub threads: usize,
    /// Round budget: the engine runs exactly this many rounds (or fewer
    /// if gossip completes first).
    pub rounds: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            topology: "ring".to_string(),
            nodes: 1_000_000,
            protocol: "advert".to_string(),
            messages: 1,
            seed: 1,
            threads: 1,
            rounds: 64,
        }
    }
}

/// Outcome of argument parsing: run an experiment, bench the engine, or
/// print help.
// One Command exists per process; boxing the config to shrink the enum
// would be indirection for its own sake.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    Run(ExperimentConfig),
    Bench(BenchConfig),
    Help,
}

/// Parse the arguments of the `bench` subcommand (everything after the
/// literal `bench`).
fn parse_bench_args(args: &[String]) -> Result<Command, String> {
    let mut cfg = BenchConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(Command::Help),
            "--topology" => {
                cfg.topology = value("--topology")?;
                if !TOPOLOGY_NAMES.contains(&cfg.topology.as_str()) {
                    return Err(format!(
                        "unknown topology '{}' (expected one of {})",
                        cfg.topology,
                        TOPOLOGY_NAMES.join(", ")
                    ));
                }
            }
            "--protocol" => {
                cfg.protocol = value("--protocol")?;
                if !PROTOCOL_NAMES.contains(&cfg.protocol.as_str()) {
                    return Err(format!(
                        "unknown protocol '{}' (expected one of {})",
                        cfg.protocol,
                        PROTOCOL_NAMES.join(", ")
                    ));
                }
            }
            "--nodes" => {
                cfg.nodes = parse_num(&value("--nodes")?, "--nodes")?;
                if cfg.nodes == 0 {
                    return Err("--nodes must be at least 1".to_string());
                }
            }
            "--messages" => {
                cfg.messages = parse_num(&value("--messages")?, "--messages")?;
                if cfg.messages == 0 {
                    return Err("--messages must be at least 1".to_string());
                }
            }
            "--seed" => {
                let raw = value("--seed")?;
                cfg.seed = raw
                    .parse::<u64>()
                    .map_err(|_| format!("--seed: '{raw}' is not a non-negative integer"))?;
            }
            "--threads" => cfg.threads = parse_threads(&value("--threads")?)?,
            "--rounds" => {
                cfg.rounds = parse_num(&value("--rounds")?, "--rounds")?;
                if cfg.rounds == 0 {
                    return Err("--rounds must be at least 1".to_string());
                }
            }
            other => return Err(format!("unknown bench argument '{other}' (try --help)")),
        }
    }
    Ok(Command::Bench(cfg))
}

/// Parse and validate a `--threads` value: a positive integer (the cap at
/// available parallelism happens at run time via [`effective_threads`]).
fn parse_threads(raw: &str) -> Result<usize, String> {
    let threads = parse_num(raw, "--threads")?;
    if threads == 0 {
        return Err(
            "--threads 0 is meaningless: the round loop needs at least one worker".to_string(),
        );
    }
    Ok(threads)
}

/// Clamp a requested thread count to the machine's available parallelism.
/// Returns the effective count and, when clamping occurred, a warning for
/// the user. Results never depend on the clamp — the engine is
/// deterministic at any thread count — only throughput does.
pub fn effective_threads(requested: usize) -> (usize, Option<String>) {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if requested > available {
        (
            available,
            Some(format!(
                "--threads {requested} exceeds the machine's available parallelism; \
                 capping at {available} (results are identical, only throughput changes)"
            )),
        )
    } else {
        (requested, None)
    }
}

/// Parse CLI arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    if args.first().map(String::as_str) == Some("bench") {
        return parse_bench_args(&args[1..]);
    }
    let mut cfg = ExperimentConfig::default();
    let mut rejoin_given = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(Command::Help),
            "--history" => cfg.history = true,
            "--topology" => {
                cfg.topology = value("--topology")?;
                if !TOPOLOGY_NAMES.contains(&cfg.topology.as_str()) {
                    return Err(format!(
                        "unknown topology '{}' (expected one of {})",
                        cfg.topology,
                        TOPOLOGY_NAMES.join(", ")
                    ));
                }
            }
            "--protocol" => {
                cfg.protocol = value("--protocol")?;
                if !PROTOCOL_NAMES.contains(&cfg.protocol.as_str()) {
                    return Err(format!(
                        "unknown protocol '{}' (expected one of {})",
                        cfg.protocol,
                        PROTOCOL_NAMES.join(", ")
                    ));
                }
            }
            "--nodes" => {
                cfg.nodes = parse_num(&value("--nodes")?, "--nodes")?;
                if cfg.nodes == 0 {
                    return Err("--nodes must be at least 1".to_string());
                }
            }
            "--messages" => {
                cfg.messages = parse_num(&value("--messages")?, "--messages")?;
                if cfg.messages == 0 {
                    return Err("--messages must be at least 1".to_string());
                }
            }
            "--scheduler" => {
                cfg.scheduler = value("--scheduler")?;
                if !SCHEDULER_NAMES.contains(&cfg.scheduler.as_str()) {
                    return Err(format!(
                        "unknown scheduler '{}' (expected one of {})",
                        cfg.scheduler,
                        SCHEDULER_NAMES.join(", ")
                    ));
                }
            }
            "--seed" => {
                let raw = value("--seed")?;
                cfg.seed = raw
                    .parse::<u64>()
                    .map_err(|_| format!("--seed: '{raw}' is not a non-negative integer"))?;
            }
            "--seeds" => {
                cfg.seeds = parse_num(&value("--seeds")?, "--seeds")?;
                if cfg.seeds == 0 {
                    return Err("--seeds must be at least 1".to_string());
                }
            }
            "--max-rounds" => {
                cfg.max_rounds = Some(parse_num(&value("--max-rounds")?, "--max-rounds")?)
            }
            "--threads" => cfg.threads = parse_threads(&value("--threads")?)?,
            "--drift" => {
                let raw = value("--drift")?;
                cfg.drift = raw
                    .parse::<f64>()
                    .map_err(|_| format!("--drift: '{raw}' is not a number"))?;
            }
            "--min-latency" => {
                cfg.min_latency = parse_num(&value("--min-latency")?, "--min-latency")? as u64;
            }
            "--max-latency" => {
                cfg.max_latency = parse_num(&value("--max-latency")?, "--max-latency")? as u64;
            }
            "--churn-rate" => {
                let raw = value("--churn-rate")?;
                cfg.churn_rate = Some(
                    raw.parse::<f64>()
                        .map_err(|_| format!("--churn-rate: '{raw}' is not a number"))?,
                );
            }
            "--rejoin" => {
                rejoin_given = true;
                let raw = value("--rejoin")?;
                cfg.rejoin = match raw.as_str() {
                    "keep" => RejoinPolicy::Keep,
                    "lose" => RejoinPolicy::Lose,
                    "none" => RejoinPolicy::Never,
                    _ => {
                        return Err(format!(
                            "unknown rejoin policy '{raw}' (expected one of {})",
                            REJOIN_NAMES.join(", ")
                        ))
                    }
                };
            }
            "--fade-prob" => {
                let raw = value("--fade-prob")?;
                cfg.fade_prob = Some(
                    raw.parse::<f64>()
                        .map_err(|_| format!("--fade-prob: '{raw}' is not a number"))?,
                );
            }
            "--mobility" => cfg.mobility = true,
            "--format" => {
                cfg.format = value("--format")?;
                if !FORMAT_NAMES.contains(&cfg.format.as_str()) {
                    return Err(format!(
                        "unknown format '{}' (expected one of {})",
                        cfg.format,
                        FORMAT_NAMES.join(", ")
                    ));
                }
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    // One source of truth for timing ranges: the core validator that the
    // async scheduler itself enforces.
    cfg.timing()
        .validate()
        .map_err(|e| format!("invalid --drift/--min-latency/--max-latency: {e}"))?;
    // Likewise for dynamics: the models' own validators decide what a
    // usable rate is, so the CLI cannot admit a config the engine panics
    // on (an explicit zero rate is rejected here, not silently ignored).
    if let Some(churn) = cfg.churn_model() {
        churn
            .validate()
            .map_err(|e| format!("invalid --churn-rate: {e}"))?;
    } else if rejoin_given {
        return Err("--rejoin requires --churn-rate".to_string());
    }
    if let Some(fading) = cfg.fading_model() {
        fading
            .validate()
            .map_err(|e| format!("invalid --fade-prob: {e}"))?;
    }
    if cfg.mobility {
        if !matches!(cfg.topology.as_str(), "rgg" | "random_geometric") {
            return Err(format!(
                "--mobility moves nodes of a random geometric graph; \
                 it requires --topology rgg, not '{}'",
                cfg.topology
            ));
        }
        if cfg.fade_prob.is_some() {
            return Err("--mobility rewires the edges that --fade-prob would flap; \
                 pick one link-instability model"
                .to_string());
        }
    }
    if cfg.format == "csv" && cfg.history {
        return Err("--history emits nested per-round data, which is JSON-only".to_string());
    }
    if cfg.threads > 1 && cfg.scheduler == "async" {
        return Err(
            "--threads shards the synchronous round loop; the event-driven scheduler \
             is inherently serial (use --scheduler sync)"
                .to_string(),
        );
    }
    Ok(Command::Run(cfg))
}

fn parse_num(s: &str, flag: &str) -> Result<usize, String> {
    s.parse()
        .map_err(|_| format!("{flag}: '{s}' is not a non-negative integer"))
}

/// Build the topology named in the config. Randomized topologies draw from
/// a stream forked off the experiment seed, so the whole experiment remains
/// a pure function of the config.
pub fn build_topology(cfg: &ExperimentConfig) -> Topology {
    build_topology_with_geometry(cfg).0
}

/// [`build_topology`], also returning the RGG embedding for topologies
/// that have one — the piece waypoint mobility needs. Same RNG
/// consumption, same graph.
pub fn build_topology_with_geometry(cfg: &ExperimentConfig) -> (Topology, Option<RggGeometry>) {
    match cfg.topology.as_str() {
        "line" => (Topology::line(cfg.nodes), None),
        "ring" => (Topology::ring(cfg.nodes), None),
        "grid" => (Topology::grid(cfg.nodes), None),
        "complete" => (Topology::complete(cfg.nodes), None),
        "rgg" | "random_geometric" => {
            let (topo, geometry) = Topology::random_geometric_with_geometry(
                cfg.nodes,
                &mut Rng::new(cfg.seed ^ 0x7090),
            );
            (topo, Some(geometry))
        }
        other => unreachable!("parse_args admitted unknown topology '{other}'"),
    }
}

/// Build the dynamics model implied by the config: churn, fading, and
/// mobility compose (any subset the validator admits), merged into one
/// time-ordered mutation stream. `None` when the run is static.
pub fn build_dynamics(
    cfg: &ExperimentConfig,
    geometry: Option<&RggGeometry>,
) -> Option<Box<dyn DynamicsModel>> {
    let mut parts: Vec<Box<dyn DynamicsModel>> = Vec::new();
    if let Some(churn) = cfg.churn_model() {
        parts.push(Box::new(churn));
    }
    if let Some(fading) = cfg.fading_model() {
        parts.push(Box::new(fading));
    }
    if cfg.mobility {
        let geometry = geometry
            .expect("parse_args only admits --mobility with an RGG topology")
            .clone();
        parts.push(Box::new(Waypoint {
            geometry,
            speed: DEFAULT_SPEED_PER_ROUND,
        }));
    }
    match parts.len() {
        0 => None,
        1 => parts.pop(),
        _ => Some(Box::new(CompositeDynamics { parts })),
    }
}

/// Build the scheduler named in the config. The thread count is clamped
/// to available parallelism here ([`effective_threads`]); callers wanting
/// to surface the clamp warning call `effective_threads` themselves.
pub fn build_scheduler(cfg: &ExperimentConfig) -> Box<dyn Scheduler> {
    match cfg.scheduler.as_str() {
        "sync" => Box::new(SyncScheduler::with_threads(
            effective_threads(cfg.threads).0,
        )),
        "async" => Box::new(AsyncScheduler {
            timing: cfg.timing(),
        }),
        other => unreachable!("parse_args admitted unknown scheduler '{other}'"),
    }
}

/// Run the configured experiment end to end (ignoring the sweep width;
/// see [`run_sweep`] for multi-seed runs). Static configs take the
/// dynamics-free fast path, whose output is bit-for-bit that of
/// pre-dynamics builds.
pub fn run_experiment(cfg: &ExperimentConfig) -> SimResult {
    let (topology, geometry) = build_topology_with_geometry(cfg);
    let protocol = by_name(&cfg.protocol).expect("parse_args validated the protocol name");
    let scheduler = build_scheduler(cfg);
    let sources = random_sources(
        cfg.nodes,
        cfg.messages,
        &mut Rng::new(cfg.seed ^ 0x50_0c_e5),
    );
    let sim_cfg = SimConfig {
        max_rounds: cfg.max_rounds.unwrap_or(100 + 60 * cfg.nodes),
        record_rounds: cfg.history,
    };
    match build_dynamics(cfg, geometry.as_ref()) {
        None => scheduler.run(&topology, protocol.as_ref(), &sources, cfg.seed, &sim_cfg),
        Some(dynamics) => scheduler.run_dynamic(
            &topology,
            dynamics.as_ref(),
            protocol.as_ref(),
            &sources,
            cfg.seed,
            &sim_cfg,
        ),
    }
}

/// Run the configured sweep lazily: `cfg.seeds` consecutive seeds
/// starting at `cfg.seed`, each a fully independent experiment
/// (randomized topologies and source placement are re-drawn per seed),
/// yielded in seed order as each run finishes — so consumers can stream
/// one JSON line per seed without buffering the whole sweep.
pub fn run_sweep_iter(cfg: &ExperimentConfig) -> impl Iterator<Item = SimResult> + '_ {
    (0..cfg.seeds as u64).map(move |offset| {
        let mut one = cfg.clone();
        one.seed = cfg.seed.wrapping_add(offset);
        run_experiment(&one)
    })
}

/// [`run_sweep_iter`], collected.
pub fn run_sweep(cfg: &ExperimentConfig) -> Vec<SimResult> {
    run_sweep_iter(cfg).collect()
}

/// Execution-side metadata of one run, reported next to the (seed-
/// deterministic) [`SimResult`]: the worker-thread count actually used
/// and the wall-clock time the run took. Kept out of `SimResult` so
/// result equality stays meaningful for determinism tests — two runs are
/// "the same run" regardless of how fast the hardware was that day.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunMeta {
    /// Worker threads after the [`effective_threads`] clamp.
    pub threads: usize,
    /// Wall-clock duration of the run, in milliseconds.
    pub wall_ms: u64,
}

/// [`run_sweep_iter`], with per-run wall-clock timing. This is what the
/// binary streams: each line carries the deterministic result plus the
/// `threads`/`wall_ms` execution metadata.
pub fn run_sweep_timed_iter(
    cfg: &ExperimentConfig,
) -> impl Iterator<Item = (SimResult, RunMeta)> + '_ {
    let threads = effective_threads(cfg.threads).0;
    (0..cfg.seeds as u64).map(move |offset| {
        let mut one = cfg.clone();
        one.seed = cfg.seed.wrapping_add(offset);
        let started = Instant::now();
        let result = run_experiment(&one);
        let meta = RunMeta {
            threads,
            wall_ms: started.elapsed().as_millis() as u64,
        };
        (result, meta)
    })
}

/// What one `bench` invocation measured.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    pub topology: String,
    pub nodes: usize,
    pub protocol: String,
    pub messages: usize,
    pub seed: u64,
    /// Worker threads after the [`effective_threads`] clamp.
    pub threads: usize,
    /// The configured round budget.
    pub round_budget: usize,
    /// Rounds the engine actually executed (< budget iff gossip
    /// completed early).
    pub rounds_executed: usize,
    pub completed: bool,
    /// Time to build the topology (excluded from throughput).
    pub build_ms: u64,
    /// Wall-clock time of the simulation itself.
    pub wall_ms: u64,
    /// Simulated rounds per second of wall time.
    pub rounds_per_sec: f64,
    /// `nodes × rounds` per second of wall time — the per-node sweep
    /// throughput, comparable across topology sizes.
    pub node_events_per_sec: f64,
    /// Deterministic accounting totals: any serial-vs-parallel (or
    /// build-to-build) divergence shows up as a mismatch here.
    pub total_connections: usize,
    pub productive_connections: usize,
    pub complete_nodes: usize,
}

/// Run one engine benchmark: build the topology (timed separately), run
/// the synchronous scheduler for the configured round budget, and report
/// throughput plus the deterministic accounting totals.
pub fn run_bench(cfg: &BenchConfig) -> BenchReport {
    let threads = effective_threads(cfg.threads).0;
    let building = Instant::now();
    let exp = ExperimentConfig {
        topology: cfg.topology.clone(),
        nodes: cfg.nodes,
        protocol: cfg.protocol.clone(),
        messages: cfg.messages,
        seed: cfg.seed,
        threads,
        ..ExperimentConfig::default()
    };
    let topology = build_topology(&exp);
    let build_ms = building.elapsed().as_millis() as u64;

    let protocol = by_name(&cfg.protocol).expect("bench parser validated the protocol name");
    let sources = random_sources(
        cfg.nodes,
        cfg.messages,
        &mut Rng::new(cfg.seed ^ 0x50_0c_e5),
    );
    let sim_cfg = SimConfig {
        max_rounds: cfg.rounds,
        record_rounds: false,
    };
    let scheduler = SyncScheduler::with_threads(threads);
    let running = Instant::now();
    let result = scheduler.run(&topology, protocol.as_ref(), &sources, cfg.seed, &sim_cfg);
    let wall = running.elapsed();

    let secs = wall.as_secs_f64().max(1e-9);
    BenchReport {
        topology: result.topology.clone(),
        nodes: cfg.nodes,
        protocol: cfg.protocol.clone(),
        messages: cfg.messages,
        seed: cfg.seed,
        threads,
        round_budget: cfg.rounds,
        rounds_executed: result.rounds_executed,
        completed: result.completed,
        build_ms,
        wall_ms: wall.as_millis() as u64,
        rounds_per_sec: result.rounds_executed as f64 / secs,
        node_events_per_sec: (result.rounds_executed as f64 * cfg.nodes as f64) / secs,
        total_connections: result.total_connections,
        productive_connections: result.productive_connections,
        complete_nodes: result.complete_nodes,
    }
}

/// Serialize a bench report as one JSON line, shaped for appending to
/// `BENCH_*.json` trajectory files.
pub fn bench_to_json(report: &BenchReport) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    json_str(&mut out, "bench", "sync_round_loop");
    out.push(',');
    json_str(&mut out, "topology", &report.topology);
    out.push(',');
    json_num(&mut out, "nodes", report.nodes as u64);
    out.push(',');
    json_str(&mut out, "protocol", &report.protocol);
    out.push(',');
    json_num(&mut out, "messages", report.messages as u64);
    out.push(',');
    json_num(&mut out, "seed", report.seed);
    out.push(',');
    json_num(&mut out, "threads", report.threads as u64);
    out.push(',');
    json_num(&mut out, "round_budget", report.round_budget as u64);
    out.push(',');
    json_num(&mut out, "rounds_executed", report.rounds_executed as u64);
    out.push(',');
    out.push_str(&format!("\"completed\":{}", report.completed));
    out.push(',');
    json_num(&mut out, "build_ms", report.build_ms);
    out.push(',');
    json_num(&mut out, "wall_ms", report.wall_ms);
    out.push(',');
    out.push_str(&format!(
        "\"rounds_per_sec\":{:.2},\"node_events_per_sec\":{:.2}",
        report.rounds_per_sec, report.node_events_per_sec
    ));
    out.push(',');
    json_num(
        &mut out,
        "total_connections",
        report.total_connections as u64,
    );
    out.push(',');
    json_num(
        &mut out,
        "productive_connections",
        report.productive_connections as u64,
    );
    out.push(',');
    json_num(&mut out, "complete_nodes", report.complete_nodes as u64);
    out.push('}');
    out
}

/// Serialize a result as a single JSON object.
pub fn to_json(result: &SimResult) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    json_str(&mut out, "topology", &result.topology);
    out.push(',');
    json_str(&mut out, "protocol", &result.protocol);
    out.push(',');
    json_str(&mut out, "scheduler", &result.scheduler);
    out.push(',');
    json_num(&mut out, "nodes", result.nodes as u64);
    out.push(',');
    json_num(&mut out, "messages", result.messages as u64);
    out.push(',');
    json_num(&mut out, "seed", result.seed);
    out.push(',');
    out.push_str(&format!("\"completed\":{}", result.completed));
    out.push(',');
    match result.rounds_to_completion {
        Some(r) => json_num(&mut out, "rounds_to_completion", r as u64),
        None => out.push_str("\"rounds_to_completion\":null"),
    }
    out.push(',');
    json_num(&mut out, "rounds_executed", result.rounds_executed as u64);
    out.push(',');
    json_num(&mut out, "virtual_time", result.virtual_time);
    out.push(',');
    match result.virtual_time_to_completion {
        Some(t) => json_num(&mut out, "virtual_time_to_completion", t),
        None => out.push_str("\"virtual_time_to_completion\":null"),
    }
    out.push(',');
    json_num(
        &mut out,
        "total_connections",
        result.total_connections as u64,
    );
    out.push(',');
    json_num(
        &mut out,
        "productive_connections",
        result.productive_connections as u64,
    );
    out.push(',');
    json_num(
        &mut out,
        "wasted_connections",
        result.wasted_connections as u64,
    );
    out.push(',');
    json_num(&mut out, "complete_nodes", result.complete_nodes as u64);
    if let Some(d) = &result.dynamics {
        out.push_str(",\"dynamics\":{");
        json_str(&mut out, "model", &d.model);
        out.push(',');
        json_num(&mut out, "departures", d.departures as u64);
        out.push(',');
        json_num(&mut out, "rejoins", d.rejoins as u64);
        out.push(',');
        json_num(&mut out, "edge_downs", d.edge_downs as u64);
        out.push(',');
        json_num(&mut out, "edge_ups", d.edge_ups as u64);
        out.push(',');
        json_num(&mut out, "rewires", d.rewires as u64);
        out.push(',');
        json_num(
            &mut out,
            "severed_connections",
            d.severed_connections as u64,
        );
        out.push(',');
        json_num(&mut out, "peak_alive", d.peak_alive as u64);
        out.push(',');
        json_num(&mut out, "min_alive", d.min_alive as u64);
        out.push(',');
        json_num(&mut out, "final_alive", d.final_alive as u64);
        out.push_str(",\"coverage_timeline\":[");
        for (i, p) in d.coverage_timeline.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_num(&mut out, "time", p.time);
            out.push(',');
            json_num(&mut out, "alive", p.alive as u64);
            out.push(',');
            json_num(&mut out, "informed_alive", p.informed_alive as u64);
            out.push('}');
        }
        out.push_str("]}");
    }
    if let Some(rounds) = &result.rounds {
        out.push_str(",\"rounds\":[");
        for (i, r) in rounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_num(&mut out, "round", r.round as u64);
            out.push(',');
            json_num(&mut out, "connections", r.connections as u64);
            out.push(',');
            json_num(&mut out, "productive", r.productive as u64);
            out.push(',');
            json_num(&mut out, "complete_nodes", r.complete_nodes as u64);
            out.push(',');
            json_num(&mut out, "messages_held", r.messages_held as u64);
            out.push('}');
        }
        out.push(']');
    }
    out.push('}');
    out
}

/// [`to_json`], extended with the execution metadata the binary surfaces
/// on every sweep line: the effective thread count and wall-clock
/// milliseconds. Kept out of [`to_json`] so byte-for-byte regression
/// pins on the deterministic result stay timing-independent.
pub fn to_json_timed(result: &SimResult, meta: &RunMeta) -> String {
    let mut out = to_json(result);
    out.pop(); // the closing brace
    out.push(',');
    json_num(&mut out, "threads", meta.threads as u64);
    out.push(',');
    json_num(&mut out, "wall_ms", meta.wall_ms);
    out.push('}');
    out
}

/// The header row for `--format csv`. The column set is fixed — dynamics
/// columns are simply empty on static runs — so sweep outputs from
/// different configs concatenate and load uniformly in plotting tools.
pub fn csv_header() -> &'static str {
    "topology,protocol,scheduler,nodes,messages,seed,completed,\
     rounds_to_completion,rounds_executed,virtual_time,\
     virtual_time_to_completion,total_connections,productive_connections,\
     wasted_connections,complete_nodes,dynamics_model,departures,rejoins,\
     edge_downs,edge_ups,rewires,severed_connections,peak_alive,min_alive,\
     final_alive,threads,wall_ms"
}

/// Serialize one result as a CSV row matching [`csv_header`]. Absent
/// values (an uncompleted run's completion columns, dynamics columns of a
/// static run) serialize as empty cells. Names are ASCII identifiers, so
/// no quoting is needed.
pub fn to_csv_row(result: &SimResult, meta: &RunMeta) -> String {
    fn opt(v: Option<u64>) -> String {
        v.map(|v| v.to_string()).unwrap_or_default()
    }
    let d = result.dynamics.as_ref();
    let mut fields: Vec<String> = vec![
        result.topology.clone(),
        result.protocol.clone(),
        result.scheduler.clone(),
        result.nodes.to_string(),
        result.messages.to_string(),
        result.seed.to_string(),
        result.completed.to_string(),
        opt(result.rounds_to_completion.map(|r| r as u64)),
        result.rounds_executed.to_string(),
        result.virtual_time.to_string(),
        opt(result.virtual_time_to_completion),
        result.total_connections.to_string(),
        result.productive_connections.to_string(),
        result.wasted_connections.to_string(),
        result.complete_nodes.to_string(),
    ];
    fields.push(d.map(|d| d.model.clone()).unwrap_or_default());
    for value in [
        d.map(|d| d.departures),
        d.map(|d| d.rejoins),
        d.map(|d| d.edge_downs),
        d.map(|d| d.edge_ups),
        d.map(|d| d.rewires),
        d.map(|d| d.severed_connections),
        d.map(|d| d.peak_alive),
        d.map(|d| d.min_alive),
        d.map(|d| d.final_alive),
    ] {
        fields.push(opt(value.map(|v| v as u64)));
    }
    fields.push(meta.threads.to_string());
    fields.push(meta.wall_ms.to_string());
    fields.join(",")
}

fn json_str(out: &mut String, key: &str, value: &str) {
    // Topology/protocol names are ASCII identifiers; escape the JSON
    // specials anyway so the writer is safe for future string fields.
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_num(out: &mut String, key: &str, value: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_when_no_args() {
        assert_eq!(parse(&[]), Ok(Command::Run(ExperimentConfig::default())));
    }

    #[test]
    fn full_flag_set_parses() {
        let cmd = parse(&[
            "--topology",
            "grid",
            "--nodes",
            "500",
            "--protocol",
            "advert",
            "--messages",
            "8",
            "--seed",
            "42",
            "--max-rounds",
            "1000",
            "--history",
        ])
        .unwrap();
        let Command::Run(cfg) = cmd else {
            panic!("expected Run");
        };
        assert_eq!(cfg.topology, "grid");
        assert_eq!(cfg.nodes, 500);
        assert_eq!(cfg.protocol, "advert");
        assert_eq!(cfg.messages, 8);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.max_rounds, Some(1000));
        assert!(cfg.history);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--topology", "torus"]).is_err());
        assert!(parse(&["--protocol", "psychic"]).is_err());
        assert!(parse(&["--nodes", "0"]).is_err());
        assert!(parse(&["--nodes", "many"]).is_err());
        assert!(parse(&["--messages", "0"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--scheduler", "quantum"]).is_err());
        assert!(parse(&["--seeds", "0"]).is_err());
        assert!(parse(&["--drift", "1.0"]).is_err());
        assert!(parse(&["--drift", "-0.5"]).is_err());
        assert!(parse(&["--drift", "slow"]).is_err());
        assert!(parse(&["--min-latency", "300", "--max-latency", "200"]).is_err());
    }

    #[test]
    fn dynamics_flags_parse() {
        let cmd = parse(&[
            "--churn-rate",
            "0.2",
            "--rejoin",
            "lose",
            "--fade-prob",
            "0.05",
        ])
        .unwrap();
        let Command::Run(cfg) = cmd else {
            panic!("expected Run");
        };
        assert_eq!(cfg.churn_rate, Some(0.2));
        assert_eq!(cfg.rejoin, RejoinPolicy::Lose);
        assert_eq!(cfg.fade_prob, Some(0.05));
        assert!(cfg.is_dynamic());
        assert!(!ExperimentConfig::default().is_dynamic());

        let Command::Run(cfg) = parse(&["--topology", "rgg", "--mobility"]).unwrap() else {
            panic!("expected Run");
        };
        assert!(cfg.mobility && cfg.is_dynamic());

        let Command::Run(cfg) = parse(&["--format", "csv"]).unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(cfg.format, "csv");
    }

    #[test]
    fn rejects_degenerate_dynamics_configs() {
        // Explicit zero-rate dynamics is a config bug, not a static run.
        assert!(parse(&["--churn-rate", "0"]).is_err());
        assert!(parse(&["--churn-rate", "0.0"]).is_err());
        assert!(parse(&["--fade-prob", "0"]).is_err());
        // Out-of-range and non-numeric rates.
        assert!(parse(&["--churn-rate", "1.0"]).is_err());
        assert!(parse(&["--churn-rate", "-0.1"]).is_err());
        assert!(parse(&["--churn-rate", "often"]).is_err());
        assert!(parse(&["--churn-rate", "NaN"]).is_err());
        assert!(parse(&["--fade-prob", "1.5"]).is_err());
        // Policy without churn, unknown policy, and model conflicts.
        assert!(parse(&["--rejoin", "keep"]).is_err());
        assert!(parse(&["--rejoin", "banana", "--churn-rate", "0.1"]).is_err());
        assert!(parse(&["--mobility"]).is_err(), "mobility needs rgg");
        assert!(parse(&["--mobility", "--topology", "grid"]).is_err());
        assert!(parse(&["--mobility", "--topology", "rgg", "--fade-prob", "0.1"]).is_err());
        // Output-format conflicts.
        assert!(parse(&["--format", "xml"]).is_err());
        assert!(parse(&["--format", "csv", "--history"]).is_err());
        // Degenerate node counts stay rejected alongside the new flags.
        assert!(parse(&["--nodes", "0", "--churn-rate", "0.1"]).is_err());
    }

    #[test]
    fn csv_rows_match_the_header_shape() {
        let cfg = parse_run_cfg(&["--nodes", "24", "--seeds", "1"]);
        let result = run_experiment(&cfg);
        let columns = csv_header().split(',').count();
        let meta = RunMeta {
            threads: 1,
            wall_ms: 3,
        };
        let row = to_csv_row(&result, &meta);
        assert_eq!(row.split(',').count(), columns);
        assert!(!row.contains('\n'));
        // Static runs leave every dynamics cell empty.
        // Ten empty dynamics cells, then the threads/wall_ms metadata.
        assert!(
            row.ends_with(",,,,,,,,,,1,3"),
            "static dynamics cells: {row}"
        );

        let cfg = parse_run_cfg(&["--nodes", "24", "--churn-rate", "0.1"]);
        let row = to_csv_row(&run_experiment(&cfg), &meta);
        assert_eq!(row.split(',').count(), columns);
        assert!(row.contains(",churn,"), "model cell populated: {row}");
    }

    fn parse_run_cfg(args: &[&str]) -> ExperimentConfig {
        match parse(args) {
            Ok(Command::Run(cfg)) => cfg,
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn scheduler_and_timing_flags_parse() {
        let cmd = parse(&[
            "--scheduler",
            "async",
            "--seeds",
            "8",
            "--drift",
            "0.25",
            "--min-latency",
            "10",
            "--max-latency",
            "500",
        ])
        .unwrap();
        let Command::Run(cfg) = cmd else {
            panic!("expected Run");
        };
        assert_eq!(cfg.scheduler, "async");
        assert_eq!(cfg.seeds, 8);
        assert_eq!(cfg.drift, 0.25);
        assert_eq!(cfg.min_latency, 10);
        assert_eq!(cfg.max_latency, 500);
    }

    #[test]
    fn help_flag_wins() {
        assert_eq!(parse(&["--nodes", "5", "--help"]), Ok(Command::Help));
    }

    #[test]
    fn threads_flag_parses_and_is_validated() {
        let cfg = parse_run_cfg(&["--threads", "4"]);
        assert_eq!(cfg.threads, 4);
        assert_eq!(ExperimentConfig::default().threads, 1);
        assert!(parse(&["--threads", "0"]).is_err(), "zero workers rejected");
        assert!(parse(&["--threads", "many"]).is_err());
        assert!(
            parse(&["--threads", "2", "--scheduler", "async"]).is_err(),
            "the event-driven scheduler is serial"
        );
        // One worker under async is the serial engine — fine.
        assert!(parse(&["--threads", "1", "--scheduler", "async"]).is_ok());
    }

    #[test]
    fn effective_threads_caps_with_a_warning() {
        let (one, none) = effective_threads(1);
        assert_eq!(one, 1);
        assert!(none.is_none(), "1 thread never needs capping");
        let (capped, warning) = effective_threads(usize::MAX);
        assert!(capped >= 1);
        assert!(warning.is_some(), "absurd requests warn");
    }

    #[test]
    fn bench_subcommand_parses() {
        let cmd = parse(&["bench"]).unwrap();
        assert_eq!(cmd, Command::Bench(BenchConfig::default()));

        let Command::Bench(cfg) = parse(&[
            "bench",
            "--topology",
            "grid",
            "--nodes",
            "5000",
            "--protocol",
            "uniform",
            "--threads",
            "2",
            "--rounds",
            "16",
            "--seed",
            "9",
        ])
        .unwrap() else {
            panic!("expected Bench");
        };
        assert_eq!(cfg.topology, "grid");
        assert_eq!(cfg.nodes, 5000);
        assert_eq!(cfg.protocol, "uniform");
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.rounds, 16);
        assert_eq!(cfg.seed, 9);

        assert_eq!(parse(&["bench", "--help"]), Ok(Command::Help));
        assert!(parse(&["bench", "--rounds", "0"]).is_err());
        assert!(parse(&["bench", "--threads", "0"]).is_err());
        assert!(parse(&["bench", "--topology", "torus"]).is_err());
        assert!(
            parse(&["bench", "--seeds", "4"]).is_err(),
            "sweep flags do not apply to bench"
        );
    }

    #[test]
    fn timed_json_appends_execution_metadata() {
        let cfg = parse_run_cfg(&["--nodes", "16"]);
        let result = run_experiment(&cfg);
        let meta = RunMeta {
            threads: 3,
            wall_ms: 12,
        };
        let timed = to_json_timed(&result, &meta);
        assert!(timed.ends_with(",\"threads\":3,\"wall_ms\":12}"), "{timed}");
        // The deterministic prefix is exactly the untimed serialization.
        let untimed = to_json(&result);
        assert!(timed.starts_with(&untimed[..untimed.len() - 1]));
    }

    #[test]
    fn json_escapes_specials() {
        let mut out = String::new();
        json_str(&mut out, "k", "a\"b\\c\nd");
        assert_eq!(out, r#""k":"a\"b\\c\nd""#);
    }
}
