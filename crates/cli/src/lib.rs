//! Library half of the `gossip-sim` binary: argument parsing, experiment
//! execution, and JSON serialization, kept out of `main.rs` so integration
//! tests can drive the exact code path the binary runs.
//!
//! Serialization is hand-rolled: the workspace is dependency-free by
//! design (simulation state is flat integers, so a JSON writer is ~40
//! lines), which keeps builds hermetic.

use gossip_core::{Rng, TimingConfig, Topology};
use gossip_protocols::{by_name, PROTOCOL_NAMES};
use gossip_sim::{random_sources, AsyncScheduler, Scheduler, SimConfig, SimResult, SyncScheduler};

/// Accepted `--topology` values. `random_geometric` is an alias for `rgg`
/// so the name echoed in result JSON round-trips back into the CLI.
pub const TOPOLOGY_NAMES: &[&str] = &[
    "line",
    "ring",
    "grid",
    "complete",
    "rgg",
    "random_geometric",
];

/// Accepted `--scheduler` values.
pub const SCHEDULER_NAMES: &[&str] = &["sync", "async"];

pub const USAGE: &str = "gossip-sim: gossip experiments in the mobile telephone model

USAGE:
    gossip-sim [OPTIONS]

OPTIONS:
    --topology <line|ring|grid|complete|rgg>   topology family [default: ring]
                                               (rgg = random_geometric)
    --nodes <N>                                number of nodes [default: 100]
    --protocol <uniform|advert>                gossip protocol [default: uniform]
    --scheduler <sync|async>                   execution model: synchronized rounds
                                               or event-driven virtual time [default: sync]
    --messages <K>                             rumors to spread (>64 uses
                                               hashed advertisement tags) [default: 1]
    --seed <S>                                 RNG seed [default: 1]
    --seeds <N>                                sweep N consecutive seeds starting at
                                               --seed, one JSON line each [default: 1]
    --max-rounds <R>                           round cap; the async scheduler reads it
                                               as the equivalent virtual-time cap
                                               [default: 100 + 60*N]
    --drift <F>                                async: max relative clock drift,
                                               0 <= F < 1 [default: 0.1]
    --min-latency <T>                          async: min connect/transfer latency in
                                               ticks (1024 ticks = 1 round) [default: 32]
    --max-latency <T>                          async: max connect/transfer latency in
                                               ticks [default: 256]
    --history                                  include per-round stats in the JSON
    --help                                     print this help
";

/// A fully parsed experiment configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentConfig {
    pub topology: String,
    pub nodes: usize,
    pub protocol: String,
    pub scheduler: String,
    pub messages: usize,
    pub seed: u64,
    /// Number of consecutive seeds to sweep, starting at `seed`.
    pub seeds: usize,
    pub max_rounds: Option<usize>,
    /// Max relative clock drift (async scheduler only).
    pub drift: f64,
    /// Min connection/transfer latency in ticks (async scheduler only).
    pub min_latency: u64,
    /// Max connection/transfer latency in ticks (async scheduler only).
    pub max_latency: u64,
    pub history: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        let timing = TimingConfig::default();
        ExperimentConfig {
            topology: "ring".to_string(),
            nodes: 100,
            protocol: "uniform".to_string(),
            scheduler: "sync".to_string(),
            messages: 1,
            seed: 1,
            seeds: 1,
            max_rounds: None,
            drift: timing.drift,
            min_latency: timing.min_latency,
            max_latency: timing.max_latency,
            history: false,
        }
    }
}

impl ExperimentConfig {
    /// The async timing distributions implied by the CLI flags.
    pub fn timing(&self) -> TimingConfig {
        TimingConfig {
            drift: self.drift,
            min_latency: self.min_latency,
            max_latency: self.max_latency,
            ..TimingConfig::default()
        }
    }
}

/// Outcome of argument parsing: run an experiment, or print help.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    Run(ExperimentConfig),
    Help,
}

/// Parse CLI arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut cfg = ExperimentConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(Command::Help),
            "--history" => cfg.history = true,
            "--topology" => {
                cfg.topology = value("--topology")?;
                if !TOPOLOGY_NAMES.contains(&cfg.topology.as_str()) {
                    return Err(format!(
                        "unknown topology '{}' (expected one of {})",
                        cfg.topology,
                        TOPOLOGY_NAMES.join(", ")
                    ));
                }
            }
            "--protocol" => {
                cfg.protocol = value("--protocol")?;
                if !PROTOCOL_NAMES.contains(&cfg.protocol.as_str()) {
                    return Err(format!(
                        "unknown protocol '{}' (expected one of {})",
                        cfg.protocol,
                        PROTOCOL_NAMES.join(", ")
                    ));
                }
            }
            "--nodes" => {
                cfg.nodes = parse_num(&value("--nodes")?, "--nodes")?;
                if cfg.nodes == 0 {
                    return Err("--nodes must be at least 1".to_string());
                }
            }
            "--messages" => {
                cfg.messages = parse_num(&value("--messages")?, "--messages")?;
                if cfg.messages == 0 {
                    return Err("--messages must be at least 1".to_string());
                }
            }
            "--scheduler" => {
                cfg.scheduler = value("--scheduler")?;
                if !SCHEDULER_NAMES.contains(&cfg.scheduler.as_str()) {
                    return Err(format!(
                        "unknown scheduler '{}' (expected one of {})",
                        cfg.scheduler,
                        SCHEDULER_NAMES.join(", ")
                    ));
                }
            }
            "--seed" => {
                let raw = value("--seed")?;
                cfg.seed = raw
                    .parse::<u64>()
                    .map_err(|_| format!("--seed: '{raw}' is not a non-negative integer"))?;
            }
            "--seeds" => {
                cfg.seeds = parse_num(&value("--seeds")?, "--seeds")?;
                if cfg.seeds == 0 {
                    return Err("--seeds must be at least 1".to_string());
                }
            }
            "--max-rounds" => {
                cfg.max_rounds = Some(parse_num(&value("--max-rounds")?, "--max-rounds")?)
            }
            "--drift" => {
                let raw = value("--drift")?;
                cfg.drift = raw
                    .parse::<f64>()
                    .map_err(|_| format!("--drift: '{raw}' is not a number"))?;
            }
            "--min-latency" => {
                cfg.min_latency = parse_num(&value("--min-latency")?, "--min-latency")? as u64;
            }
            "--max-latency" => {
                cfg.max_latency = parse_num(&value("--max-latency")?, "--max-latency")? as u64;
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    // One source of truth for timing ranges: the core validator that the
    // async scheduler itself enforces.
    cfg.timing()
        .validate()
        .map_err(|e| format!("invalid --drift/--min-latency/--max-latency: {e}"))?;
    Ok(Command::Run(cfg))
}

fn parse_num(s: &str, flag: &str) -> Result<usize, String> {
    s.parse()
        .map_err(|_| format!("{flag}: '{s}' is not a non-negative integer"))
}

/// Build the topology named in the config. Randomized topologies draw from
/// a stream forked off the experiment seed, so the whole experiment remains
/// a pure function of the config.
pub fn build_topology(cfg: &ExperimentConfig) -> Topology {
    match cfg.topology.as_str() {
        "line" => Topology::line(cfg.nodes),
        "ring" => Topology::ring(cfg.nodes),
        "grid" => Topology::grid(cfg.nodes),
        "complete" => Topology::complete(cfg.nodes),
        "rgg" | "random_geometric" => {
            Topology::random_geometric(cfg.nodes, &mut Rng::new(cfg.seed ^ 0x7090))
        }
        other => unreachable!("parse_args admitted unknown topology '{other}'"),
    }
}

/// Build the scheduler named in the config.
pub fn build_scheduler(cfg: &ExperimentConfig) -> Box<dyn Scheduler> {
    match cfg.scheduler.as_str() {
        "sync" => Box::new(SyncScheduler),
        "async" => Box::new(AsyncScheduler {
            timing: cfg.timing(),
        }),
        other => unreachable!("parse_args admitted unknown scheduler '{other}'"),
    }
}

/// Run the configured experiment end to end (ignoring the sweep width;
/// see [`run_sweep`] for multi-seed runs).
pub fn run_experiment(cfg: &ExperimentConfig) -> SimResult {
    let topology = build_topology(cfg);
    let protocol = by_name(&cfg.protocol).expect("parse_args validated the protocol name");
    let scheduler = build_scheduler(cfg);
    let sources = random_sources(
        cfg.nodes,
        cfg.messages,
        &mut Rng::new(cfg.seed ^ 0x50_0c_e5),
    );
    let sim_cfg = SimConfig {
        max_rounds: cfg.max_rounds.unwrap_or(100 + 60 * cfg.nodes),
        record_rounds: cfg.history,
    };
    scheduler.run(&topology, protocol.as_ref(), &sources, cfg.seed, &sim_cfg)
}

/// Run the configured sweep lazily: `cfg.seeds` consecutive seeds
/// starting at `cfg.seed`, each a fully independent experiment
/// (randomized topologies and source placement are re-drawn per seed),
/// yielded in seed order as each run finishes — so consumers can stream
/// one JSON line per seed without buffering the whole sweep.
pub fn run_sweep_iter(cfg: &ExperimentConfig) -> impl Iterator<Item = SimResult> + '_ {
    (0..cfg.seeds as u64).map(move |offset| {
        let mut one = cfg.clone();
        one.seed = cfg.seed.wrapping_add(offset);
        run_experiment(&one)
    })
}

/// [`run_sweep_iter`], collected.
pub fn run_sweep(cfg: &ExperimentConfig) -> Vec<SimResult> {
    run_sweep_iter(cfg).collect()
}

/// Serialize a result as a single JSON object.
pub fn to_json(result: &SimResult) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    json_str(&mut out, "topology", &result.topology);
    out.push(',');
    json_str(&mut out, "protocol", &result.protocol);
    out.push(',');
    json_str(&mut out, "scheduler", &result.scheduler);
    out.push(',');
    json_num(&mut out, "nodes", result.nodes as u64);
    out.push(',');
    json_num(&mut out, "messages", result.messages as u64);
    out.push(',');
    json_num(&mut out, "seed", result.seed);
    out.push(',');
    out.push_str(&format!("\"completed\":{}", result.completed));
    out.push(',');
    match result.rounds_to_completion {
        Some(r) => json_num(&mut out, "rounds_to_completion", r as u64),
        None => out.push_str("\"rounds_to_completion\":null"),
    }
    out.push(',');
    json_num(&mut out, "rounds_executed", result.rounds_executed as u64);
    out.push(',');
    json_num(&mut out, "virtual_time", result.virtual_time);
    out.push(',');
    match result.virtual_time_to_completion {
        Some(t) => json_num(&mut out, "virtual_time_to_completion", t),
        None => out.push_str("\"virtual_time_to_completion\":null"),
    }
    out.push(',');
    json_num(
        &mut out,
        "total_connections",
        result.total_connections as u64,
    );
    out.push(',');
    json_num(
        &mut out,
        "productive_connections",
        result.productive_connections as u64,
    );
    out.push(',');
    json_num(
        &mut out,
        "wasted_connections",
        result.wasted_connections as u64,
    );
    out.push(',');
    json_num(&mut out, "complete_nodes", result.complete_nodes as u64);
    if let Some(rounds) = &result.rounds {
        out.push_str(",\"rounds\":[");
        for (i, r) in rounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_num(&mut out, "round", r.round as u64);
            out.push(',');
            json_num(&mut out, "connections", r.connections as u64);
            out.push(',');
            json_num(&mut out, "productive", r.productive as u64);
            out.push(',');
            json_num(&mut out, "complete_nodes", r.complete_nodes as u64);
            out.push(',');
            json_num(&mut out, "messages_held", r.messages_held as u64);
            out.push('}');
        }
        out.push(']');
    }
    out.push('}');
    out
}

fn json_str(out: &mut String, key: &str, value: &str) {
    // Topology/protocol names are ASCII identifiers; escape the JSON
    // specials anyway so the writer is safe for future string fields.
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_num(out: &mut String, key: &str, value: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_when_no_args() {
        assert_eq!(parse(&[]), Ok(Command::Run(ExperimentConfig::default())));
    }

    #[test]
    fn full_flag_set_parses() {
        let cmd = parse(&[
            "--topology",
            "grid",
            "--nodes",
            "500",
            "--protocol",
            "advert",
            "--messages",
            "8",
            "--seed",
            "42",
            "--max-rounds",
            "1000",
            "--history",
        ])
        .unwrap();
        let Command::Run(cfg) = cmd else {
            panic!("expected Run");
        };
        assert_eq!(cfg.topology, "grid");
        assert_eq!(cfg.nodes, 500);
        assert_eq!(cfg.protocol, "advert");
        assert_eq!(cfg.messages, 8);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.max_rounds, Some(1000));
        assert!(cfg.history);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--topology", "torus"]).is_err());
        assert!(parse(&["--protocol", "psychic"]).is_err());
        assert!(parse(&["--nodes", "0"]).is_err());
        assert!(parse(&["--nodes", "many"]).is_err());
        assert!(parse(&["--messages", "0"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--scheduler", "quantum"]).is_err());
        assert!(parse(&["--seeds", "0"]).is_err());
        assert!(parse(&["--drift", "1.0"]).is_err());
        assert!(parse(&["--drift", "-0.5"]).is_err());
        assert!(parse(&["--drift", "slow"]).is_err());
        assert!(parse(&["--min-latency", "300", "--max-latency", "200"]).is_err());
    }

    #[test]
    fn scheduler_and_timing_flags_parse() {
        let cmd = parse(&[
            "--scheduler",
            "async",
            "--seeds",
            "8",
            "--drift",
            "0.25",
            "--min-latency",
            "10",
            "--max-latency",
            "500",
        ])
        .unwrap();
        let Command::Run(cfg) = cmd else {
            panic!("expected Run");
        };
        assert_eq!(cfg.scheduler, "async");
        assert_eq!(cfg.seeds, 8);
        assert_eq!(cfg.drift, 0.25);
        assert_eq!(cfg.min_latency, 10);
        assert_eq!(cfg.max_latency, 500);
    }

    #[test]
    fn help_flag_wins() {
        assert_eq!(parse(&["--nodes", "5", "--help"]), Ok(Command::Help));
    }

    #[test]
    fn json_escapes_specials() {
        let mut out = String::new();
        json_str(&mut out, "k", "a\"b\\c\nd");
        assert_eq!(out, r#""k":"a\"b\\c\nd""#);
    }
}
