//! End-to-end tests over the exact code path the `gossip-sim` binary runs:
//! parse args, build typed scenarios, execute, serialize.

use gossip_cli::{parse_args, Command};
use gossip_experiments::{
    csv_header, run_bench, run_line_csv, to_json, BenchScenario, ProtocolSpec, RunMeta, Scenario,
    ScenarioBuilder,
};

fn parse_run(args: &[&str]) -> Scenario {
    match parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()) {
        Ok(Command::Run { scenario, .. }) => scenario,
        other => panic!("expected a Run command, got {other:?}"),
    }
}

#[test]
fn acceptance_invocation_produces_json_metrics() {
    // Mirrors: gossip-sim --topology ring --nodes 1000 --protocol advert --seed 42
    let scenario = parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "1000",
        "--protocol",
        "advert",
        "--seed",
        "42",
    ]);
    let result = scenario.run();
    assert!(result.completed, "1000-node ring should complete");

    let json = to_json(&result);
    for key in [
        "\"rounds_to_completion\":",
        "\"topology\":\"ring\"",
        "\"protocol\":\"advert\"",
        "\"nodes\":1000",
        "\"seed\":42",
        "\"total_connections\":",
        "\"wasted_connections\":",
    ] {
        assert!(json.contains(key), "JSON missing {key}: {json}");
    }
    assert!(!json.contains("\"rounds\":["), "history off by default");
}

#[test]
fn advert_beats_uniform_on_the_acceptance_ring() {
    let advert = parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "1000",
        "--protocol",
        "advert",
        "--seed",
        "42",
    ])
    .run();
    let uniform = parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "1000",
        "--protocol",
        "uniform",
        "--seed",
        "42",
    ])
    .run();
    assert!(advert.completed && uniform.completed);
    assert!(
        advert.rounds_to_completion < uniform.rounds_to_completion,
        "advert {:?} should beat uniform {:?}",
        advert.rounds_to_completion,
        uniform.rounds_to_completion
    );
}

#[test]
fn history_flag_records_per_round_stats() {
    let scenario = parse_run(&[
        "--topology",
        "complete",
        "--nodes",
        "32",
        "--history",
        "--seed",
        "3",
    ]);
    let result = scenario.run();
    assert!(result.completed);
    let history = result.rounds.as_ref().expect("--history populates rounds");
    assert_eq!(history.len(), result.rounds_executed);
    let json = to_json(&result);
    assert!(json.contains("\"rounds\":[{\"round\":1,"));

    // The schema is a function of the flag, not the outcome: a run that is
    // complete before round 1 still carries an (empty) rounds array.
    let scenario = parse_run(&["--nodes", "1", "--topology", "complete", "--history"]);
    let result = scenario.run();
    assert_eq!(result.rounds_to_completion, Some(0));
    assert!(to_json(&result).contains("\"rounds\":[]"));
}

#[test]
fn every_topology_runs_end_to_end() {
    for topology in [
        "line",
        "ring",
        "grid",
        "complete",
        "rgg",
        "random_geometric",
    ] {
        for protocol in ["uniform", "advert"] {
            let scenario = parse_run(&[
                "--topology",
                topology,
                "--nodes",
                "40",
                "--protocol",
                protocol,
                "--seed",
                "9",
                "--messages",
                "2",
            ]);
            let result = scenario.run();
            assert!(
                result.completed,
                "{protocol} on {topology} failed to complete"
            );
        }
    }
}

#[test]
fn the_rgg_alias_is_normalized_to_one_canonical_name() {
    // `random_geometric` and `rgg` are the same typed spec, and the name
    // the result (and therefore every emitted line) echoes is the
    // canonical one — so output always round-trips back into the CLI.
    let canonical = parse_run(&["--topology", "rgg", "--nodes", "50", "--seed", "4"]);
    let aliased = parse_run(&[
        "--topology",
        "random_geometric",
        "--nodes",
        "50",
        "--seed",
        "4",
    ]);
    assert_eq!(canonical, aliased);
    let result = aliased.run();
    assert_eq!(result.topology, "rgg");
    assert!(to_json(&result).contains("\"topology\":\"rgg\""));
    // And the canonical name re-parses.
    let reparsed = parse_run(&["--topology", &result.topology]);
    assert_eq!(reparsed.topology.name(), "rgg");
}

#[test]
fn experiments_are_reproducible() {
    let scenario = parse_run(&["--topology", "rgg", "--nodes", "60", "--seed", "11"]);
    assert_eq!(to_json(&scenario.run()), to_json(&scenario.run()));
}

#[test]
fn an_explicit_radius_changes_the_graph_deterministically() {
    let adaptive = parse_run(&["--topology", "rgg", "--nodes", "60", "--seed", "11"]);
    let fixed = parse_run(&[
        "--topology",
        "rgg",
        "--nodes",
        "60",
        "--seed",
        "11",
        "--radius",
        "0.5",
    ]);
    // A generous radius yields a denser graph: same seed, fewer rounds
    // than the threshold-radius build (or at least a different, still
    // reproducible run).
    let a = fixed.run();
    let b = fixed.run();
    assert_eq!(to_json(&a), to_json(&b), "fixed-radius runs reproduce");
    assert!(a.completed);
    assert_ne!(
        to_json(&a),
        to_json(&adaptive.run()),
        "the radius knob actually reaches the topology builder"
    );
}

#[test]
fn async_scheduler_runs_end_to_end() {
    let scenario = parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "200",
        "--protocol",
        "advert",
        "--scheduler",
        "async",
        "--seed",
        "42",
        "--drift",
        "0.2",
        "--min-latency",
        "16",
        "--max-latency",
        "128",
    ]);
    let result = scenario.run();
    assert!(result.completed, "async 200-node ring should complete");
    let json = to_json(&result);
    assert!(json.contains("\"scheduler\":\"async\""), "{json}");
    assert!(json.contains("\"virtual_time\":"), "{json}");
    assert!(json.contains("\"virtual_time_to_completion\":"), "{json}");
    assert!(
        !json.contains("\"virtual_time_to_completion\":null"),
        "{json}"
    );

    // The async path is reproducible end to end, like the sync one.
    assert_eq!(to_json(&scenario.run()), json);
}

#[test]
fn sync_results_report_virtual_time_alongside_rounds() {
    let result = parse_run(&["--nodes", "64"]).run();
    assert!(result.completed);
    let json = to_json(&result);
    assert!(json.contains("\"scheduler\":\"sync\""), "{json}");
    // 1024 ticks per round: virtual time mirrors the round count.
    let rounds = result.rounds_to_completion.unwrap() as u64;
    assert!(
        json.contains(&format!("\"virtual_time_to_completion\":{}", rounds * 1024)),
        "{json}"
    );
}

#[test]
fn seed_sweep_emits_one_result_per_distinct_seed() {
    let scenario = parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "40",
        "--seeds",
        "5",
        "--seed",
        "100",
    ]);
    let results = scenario.run_sweep();
    assert_eq!(results.len(), 5, "one result per swept seed");
    let seeds: Vec<u64> = results.iter().map(|r| r.seed).collect();
    assert_eq!(
        seeds,
        vec![100, 101, 102, 103, 104],
        "consecutive distinct seeds"
    );
    // One self-contained JSON line per seed, echoing that seed.
    for result in &results {
        let json = to_json(result);
        assert!(!json.contains('\n'), "sweep output must be line-oriented");
        assert!(
            json.contains(&format!("\"seed\":{}", result.seed)),
            "{json}"
        );
    }
    // Sweeps cover genuinely different executions.
    let distinct_rounds: std::collections::HashSet<_> =
        results.iter().map(|r| r.rounds_to_completion).collect();
    assert!(
        distinct_rounds.len() > 1,
        "5 seeds on a 40-ring should not all finish in identical rounds"
    );
}

#[test]
fn default_sweep_width_is_a_single_seed() {
    let scenario = parse_run(&["--nodes", "30"]);
    assert_eq!(scenario.seeds, 1);
    assert_eq!(scenario.run_sweep().len(), 1);
}

/// The dynamics-disabled fast path must stay bit-for-bit what the engine
/// produced before the dynamics subsystem existed. These literals were
/// captured from the pre-dynamics build; any drift in RNG consumption,
/// round accounting, or serialization shows up here as a diff.
#[test]
fn static_acceptance_output_is_pinned_byte_for_byte() {
    let sync = parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "1000",
        "--protocol",
        "advert",
        "--seed",
        "42",
        "--scheduler",
        "sync",
    ])
    .run();
    assert_eq!(
        to_json(&sync),
        "{\"topology\":\"ring\",\"protocol\":\"advert\",\"scheduler\":\"sync\",\
         \"nodes\":1000,\"messages\":1,\"seed\":42,\"completed\":true,\
         \"rounds_to_completion\":500,\"rounds_executed\":500,\
         \"virtual_time\":512000,\"virtual_time_to_completion\":512000,\
         \"total_connections\":999,\"productive_connections\":999,\
         \"wasted_connections\":0,\"complete_nodes\":1000}"
    );
    let async_ = parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "1000",
        "--protocol",
        "advert",
        "--seed",
        "42",
        "--scheduler",
        "async",
    ])
    .run();
    // The async pin was re-captured when the time-sliced engine became
    // the default execution path (its deterministic schedule interleaves
    // regions, not global time, and it counts dropped proposals); the
    // pre-sliced 890-round output is still pinned against the serial
    // oracle in crates/sim/tests/determinism.rs.
    assert_eq!(
        to_json(&async_),
        "{\"topology\":\"ring\",\"protocol\":\"advert\",\"scheduler\":\"async\",\
         \"nodes\":1000,\"messages\":1,\"seed\":42,\"completed\":true,\
         \"rounds_to_completion\":935,\"rounds_executed\":935,\
         \"virtual_time\":956925,\"virtual_time_to_completion\":956925,\
         \"total_connections\":999,\"productive_connections\":999,\
         \"wasted_connections\":0,\"complete_nodes\":1000,\
         \"dropped_proposals\":1002}"
    );
}

#[test]
fn churn_experiments_reproduce_and_report_dynamics() {
    for scheduler in ["sync", "async"] {
        let scenario = parse_run(&[
            "--topology",
            "ring",
            "--nodes",
            "200",
            "--protocol",
            "advert",
            "--scheduler",
            scheduler,
            "--churn-rate",
            "0.1",
            "--rejoin",
            "keep",
            "--seed",
            "42",
        ]);
        let result = scenario.run();
        assert!(
            result.completed,
            "{scheduler}: churned ring should complete"
        );
        let json = to_json(&result);
        for key in [
            "\"dynamics\":{\"model\":\"churn\"",
            "\"departures\":",
            "\"rejoins\":",
            "\"severed_connections\":",
            "\"peak_alive\":",
            "\"min_alive\":",
            "\"final_alive\":",
            "\"coverage_timeline\":[{\"time\":0,\"alive\":200,",
        ] {
            assert!(json.contains(key), "{scheduler}: JSON missing {key}");
        }
        // Same seed + config reproduces the whole result, timeline and all.
        assert_eq!(to_json(&scenario.run()), json, "{scheduler}");
    }
}

#[test]
fn static_json_carries_no_dynamics_key() {
    let result = parse_run(&["--nodes", "40"]).run();
    assert!(result.dynamics.is_none());
    assert!(!to_json(&result).contains("\"dynamics\""));
}

#[test]
fn fading_and_mobility_run_end_to_end() {
    let fading = parse_run(&[
        "--topology",
        "complete",
        "--nodes",
        "40",
        "--fade-prob",
        "0.2",
        "--seed",
        "5",
    ])
    .run();
    assert!(fading.completed);
    let stats = fading.dynamics.as_ref().expect("fading stats");
    assert_eq!(stats.model, "fading");
    assert!(stats.edge_downs > 0);

    let mobile = parse_run(&[
        "--topology",
        "rgg",
        "--nodes",
        "50",
        "--mobility",
        "--protocol",
        "advert",
        "--seed",
        "5",
    ])
    .run();
    assert!(mobile.completed);
    let stats = mobile.dynamics.as_ref().expect("mobility stats");
    assert_eq!(stats.model, "waypoint");

    let combined = parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "40",
        "--churn-rate",
        "0.05",
        "--fade-prob",
        "0.05",
        "--seed",
        "5",
    ])
    .run();
    let stats = combined.dynamics.as_ref().expect("composite stats");
    assert_eq!(stats.model, "churn+fading");
    assert!(stats.departures > 0 && stats.edge_downs > 0);
}

#[test]
fn threads_flag_does_not_change_results_end_to_end() {
    // The engine is thread-count deterministic; the CLI path (including
    // the available-parallelism clamp) must preserve that.
    for topology in ["ring", "rgg"] {
        for protocol in ["uniform", "advert"] {
            let serial = parse_run(&[
                "--topology",
                topology,
                "--nodes",
                "80",
                "--protocol",
                protocol,
                "--seed",
                "7",
            ])
            .run();
            for threads in ["2", "8"] {
                let sharded = parse_run(&[
                    "--topology",
                    topology,
                    "--nodes",
                    "80",
                    "--protocol",
                    protocol,
                    "--seed",
                    "7",
                    "--threads",
                    threads,
                ])
                .run();
                assert_eq!(
                    serial, sharded,
                    "{protocol} on {topology} diverged at --threads {threads}"
                );
            }
        }
    }
}

#[test]
fn timed_sweep_surfaces_threads_and_wall_time() {
    let scenario = parse_run(&["--nodes", "30", "--seeds", "2", "--threads", "1"]);
    let records: Vec<_> = scenario.sweep_timed_iter().collect();
    assert_eq!(records.len(), 2);
    for (result, meta) in &records {
        assert_eq!(meta.threads, 1);
        assert!(result.completed);
    }
    // The result half matches the untimed sweep exactly.
    let untimed = scenario.run_sweep();
    let timed_results: Vec<_> = records.into_iter().map(|(r, _)| r).collect();
    assert_eq!(untimed, timed_results);
}

#[test]
fn bench_runs_over_the_same_specs_as_run() {
    let bench = BenchScenario {
        scenario: ScenarioBuilder::new()
            .nodes(2000)
            .protocol(ProtocolSpec::Advert)
            .seed(5)
            .finish()
            .unwrap(),
        rounds: 32,
    };
    let report = run_bench(&bench);
    assert_eq!(report.rounds_executed, 32, "budget-capped, far from done");
    assert!(!report.completed);
    // The bench accounting is the same engine the run path drives: a
    // standalone run capped at the same budget reports identical totals.
    let capped = parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "2000",
        "--protocol",
        "advert",
        "--seed",
        "5",
        "--max-rounds",
        "32",
    ])
    .run();
    assert_eq!(report.total_connections, capped.total_connections);
    assert_eq!(report.productive_connections, capped.productive_connections);
    assert_eq!(report.complete_nodes, capped.complete_nodes);
}

#[test]
fn csv_sweeps_emit_one_well_formed_row_per_seed() {
    let scenario = parse_run(&[
        "--nodes",
        "30",
        "--seeds",
        "4",
        "--format",
        "csv",
        "--churn-rate",
        "0.1",
        "--seed",
        "9",
    ]);
    let results = scenario.run_sweep();
    assert_eq!(results.len(), 4);
    let columns = csv_header().split(',').count();
    let meta = RunMeta {
        threads: 1,
        wall_ms: 0,
    };
    for (i, result) in results.iter().enumerate() {
        let id = scenario.with_seed(result.seed).scenario_id();
        let row = run_line_csv(&id, result, &meta);
        assert_eq!(row.split(',').count(), columns, "row {i}: {row}");
        assert!(row.starts_with(&format!("1,{id},ring,uniform,sync,30,1,")));
        assert!(row.contains(&format!(",{},", 9 + i as u64)), "seed echoed");
        assert!(row.contains(",churn,"), "dynamics columns filled");
    }
}
