//! End-to-end tests over the exact code path the `gossip-sim` binary runs:
//! parse args, execute the experiment, serialize JSON.

use gossip_cli::{parse_args, run_experiment, to_json, Command, ExperimentConfig};

fn parse_run(args: &[&str]) -> ExperimentConfig {
    match parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()) {
        Ok(Command::Run(cfg)) => cfg,
        other => panic!("expected a Run command, got {other:?}"),
    }
}

#[test]
fn acceptance_invocation_produces_json_metrics() {
    // Mirrors: gossip-sim --topology ring --nodes 1000 --protocol advert --seed 42
    let cfg = parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "1000",
        "--protocol",
        "advert",
        "--seed",
        "42",
    ]);
    let result = run_experiment(&cfg);
    assert!(result.completed, "1000-node ring should complete");

    let json = to_json(&result);
    for key in [
        "\"rounds_to_completion\":",
        "\"topology\":\"ring\"",
        "\"protocol\":\"advert\"",
        "\"nodes\":1000",
        "\"seed\":42",
        "\"total_connections\":",
        "\"wasted_connections\":",
    ] {
        assert!(json.contains(key), "JSON missing {key}: {json}");
    }
    assert!(!json.contains("\"rounds\":["), "history off by default");
}

#[test]
fn advert_beats_uniform_on_the_acceptance_ring() {
    let advert = run_experiment(&parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "1000",
        "--protocol",
        "advert",
        "--seed",
        "42",
    ]));
    let uniform = run_experiment(&parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "1000",
        "--protocol",
        "uniform",
        "--seed",
        "42",
    ]));
    assert!(advert.completed && uniform.completed);
    assert!(
        advert.rounds_to_completion < uniform.rounds_to_completion,
        "advert {:?} should beat uniform {:?}",
        advert.rounds_to_completion,
        uniform.rounds_to_completion
    );
}

#[test]
fn history_flag_records_per_round_stats() {
    let cfg = parse_run(&[
        "--topology",
        "complete",
        "--nodes",
        "32",
        "--history",
        "--seed",
        "3",
    ]);
    let result = run_experiment(&cfg);
    assert!(result.completed);
    let history = result.rounds.as_ref().expect("--history populates rounds");
    assert_eq!(history.len(), result.rounds_executed);
    let json = to_json(&result);
    assert!(json.contains("\"rounds\":[{\"round\":1,"));

    // The schema is a function of the flag, not the outcome: a run that is
    // complete before round 1 still carries an (empty) rounds array.
    let cfg = parse_run(&["--nodes", "1", "--topology", "complete", "--history"]);
    let result = run_experiment(&cfg);
    assert_eq!(result.rounds_to_completion, Some(0));
    assert!(to_json(&result).contains("\"rounds\":[]"));
}

#[test]
fn every_topology_runs_end_to_end() {
    for topology in [
        "line",
        "ring",
        "grid",
        "complete",
        "rgg",
        "random_geometric",
    ] {
        for protocol in ["uniform", "advert"] {
            let cfg = parse_run(&[
                "--topology",
                topology,
                "--nodes",
                "40",
                "--protocol",
                protocol,
                "--seed",
                "9",
                "--messages",
                "2",
            ]);
            let result = run_experiment(&cfg);
            assert!(
                result.completed,
                "{protocol} on {topology} failed to complete"
            );
        }
    }
}

#[test]
fn experiments_are_reproducible() {
    let cfg = parse_run(&["--topology", "rgg", "--nodes", "60", "--seed", "11"]);
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(to_json(&a), to_json(&b));
}
