//! End-to-end tests over the exact code path the `gossip-sim` binary runs:
//! parse args, execute the experiment, serialize JSON.

use gossip_cli::{
    bench_to_json, csv_header, parse_args, run_bench, run_experiment, run_sweep,
    run_sweep_timed_iter, to_csv_row, to_json, BenchConfig, Command, ExperimentConfig, RunMeta,
};

fn parse_run(args: &[&str]) -> ExperimentConfig {
    match parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()) {
        Ok(Command::Run(cfg)) => cfg,
        other => panic!("expected a Run command, got {other:?}"),
    }
}

#[test]
fn acceptance_invocation_produces_json_metrics() {
    // Mirrors: gossip-sim --topology ring --nodes 1000 --protocol advert --seed 42
    let cfg = parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "1000",
        "--protocol",
        "advert",
        "--seed",
        "42",
    ]);
    let result = run_experiment(&cfg);
    assert!(result.completed, "1000-node ring should complete");

    let json = to_json(&result);
    for key in [
        "\"rounds_to_completion\":",
        "\"topology\":\"ring\"",
        "\"protocol\":\"advert\"",
        "\"nodes\":1000",
        "\"seed\":42",
        "\"total_connections\":",
        "\"wasted_connections\":",
    ] {
        assert!(json.contains(key), "JSON missing {key}: {json}");
    }
    assert!(!json.contains("\"rounds\":["), "history off by default");
}

#[test]
fn advert_beats_uniform_on_the_acceptance_ring() {
    let advert = run_experiment(&parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "1000",
        "--protocol",
        "advert",
        "--seed",
        "42",
    ]));
    let uniform = run_experiment(&parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "1000",
        "--protocol",
        "uniform",
        "--seed",
        "42",
    ]));
    assert!(advert.completed && uniform.completed);
    assert!(
        advert.rounds_to_completion < uniform.rounds_to_completion,
        "advert {:?} should beat uniform {:?}",
        advert.rounds_to_completion,
        uniform.rounds_to_completion
    );
}

#[test]
fn history_flag_records_per_round_stats() {
    let cfg = parse_run(&[
        "--topology",
        "complete",
        "--nodes",
        "32",
        "--history",
        "--seed",
        "3",
    ]);
    let result = run_experiment(&cfg);
    assert!(result.completed);
    let history = result.rounds.as_ref().expect("--history populates rounds");
    assert_eq!(history.len(), result.rounds_executed);
    let json = to_json(&result);
    assert!(json.contains("\"rounds\":[{\"round\":1,"));

    // The schema is a function of the flag, not the outcome: a run that is
    // complete before round 1 still carries an (empty) rounds array.
    let cfg = parse_run(&["--nodes", "1", "--topology", "complete", "--history"]);
    let result = run_experiment(&cfg);
    assert_eq!(result.rounds_to_completion, Some(0));
    assert!(to_json(&result).contains("\"rounds\":[]"));
}

#[test]
fn every_topology_runs_end_to_end() {
    for topology in [
        "line",
        "ring",
        "grid",
        "complete",
        "rgg",
        "random_geometric",
    ] {
        for protocol in ["uniform", "advert"] {
            let cfg = parse_run(&[
                "--topology",
                topology,
                "--nodes",
                "40",
                "--protocol",
                protocol,
                "--seed",
                "9",
                "--messages",
                "2",
            ]);
            let result = run_experiment(&cfg);
            assert!(
                result.completed,
                "{protocol} on {topology} failed to complete"
            );
        }
    }
}

#[test]
fn experiments_are_reproducible() {
    let cfg = parse_run(&["--topology", "rgg", "--nodes", "60", "--seed", "11"]);
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(to_json(&a), to_json(&b));
}

#[test]
fn async_scheduler_runs_end_to_end() {
    let cfg = parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "200",
        "--protocol",
        "advert",
        "--scheduler",
        "async",
        "--seed",
        "42",
        "--drift",
        "0.2",
        "--min-latency",
        "16",
        "--max-latency",
        "128",
    ]);
    let result = run_experiment(&cfg);
    assert!(result.completed, "async 200-node ring should complete");
    let json = to_json(&result);
    assert!(json.contains("\"scheduler\":\"async\""), "{json}");
    assert!(json.contains("\"virtual_time\":"), "{json}");
    assert!(json.contains("\"virtual_time_to_completion\":"), "{json}");
    assert!(
        !json.contains("\"virtual_time_to_completion\":null"),
        "{json}"
    );

    // The async path is reproducible end to end, like the sync one.
    assert_eq!(to_json(&run_experiment(&cfg)), json);
}

#[test]
fn sync_results_report_virtual_time_alongside_rounds() {
    let result = run_experiment(&parse_run(&["--nodes", "64"]));
    assert!(result.completed);
    let json = to_json(&result);
    assert!(json.contains("\"scheduler\":\"sync\""), "{json}");
    // 1024 ticks per round: virtual time mirrors the round count.
    let rounds = result.rounds_to_completion.unwrap() as u64;
    assert!(
        json.contains(&format!("\"virtual_time_to_completion\":{}", rounds * 1024)),
        "{json}"
    );
}

#[test]
fn seed_sweep_emits_one_result_per_distinct_seed() {
    let cfg = parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "40",
        "--seeds",
        "5",
        "--seed",
        "100",
    ]);
    let results = run_sweep(&cfg);
    assert_eq!(results.len(), 5, "one result per swept seed");
    let seeds: Vec<u64> = results.iter().map(|r| r.seed).collect();
    assert_eq!(
        seeds,
        vec![100, 101, 102, 103, 104],
        "consecutive distinct seeds"
    );
    // One self-contained JSON line per seed, echoing that seed.
    for result in &results {
        let json = to_json(result);
        assert!(!json.contains('\n'), "sweep output must be line-oriented");
        assert!(
            json.contains(&format!("\"seed\":{}", result.seed)),
            "{json}"
        );
    }
    // Sweeps cover genuinely different executions.
    let distinct_rounds: std::collections::HashSet<_> =
        results.iter().map(|r| r.rounds_to_completion).collect();
    assert!(
        distinct_rounds.len() > 1,
        "5 seeds on a 40-ring should not all finish in identical rounds"
    );
}

#[test]
fn default_sweep_width_is_a_single_seed() {
    let cfg = parse_run(&["--nodes", "30"]);
    assert_eq!(cfg.seeds, 1);
    assert_eq!(run_sweep(&cfg).len(), 1);
}

/// The dynamics-disabled fast path must stay bit-for-bit what the engine
/// produced before the dynamics subsystem existed. These literals were
/// captured from the pre-dynamics build; any drift in RNG consumption,
/// round accounting, or serialization shows up here as a diff.
#[test]
fn static_acceptance_output_is_pinned_byte_for_byte() {
    let sync = run_experiment(&parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "1000",
        "--protocol",
        "advert",
        "--seed",
        "42",
        "--scheduler",
        "sync",
    ]));
    assert_eq!(
        to_json(&sync),
        "{\"topology\":\"ring\",\"protocol\":\"advert\",\"scheduler\":\"sync\",\
         \"nodes\":1000,\"messages\":1,\"seed\":42,\"completed\":true,\
         \"rounds_to_completion\":500,\"rounds_executed\":500,\
         \"virtual_time\":512000,\"virtual_time_to_completion\":512000,\
         \"total_connections\":999,\"productive_connections\":999,\
         \"wasted_connections\":0,\"complete_nodes\":1000}"
    );
    let async_ = run_experiment(&parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "1000",
        "--protocol",
        "advert",
        "--seed",
        "42",
        "--scheduler",
        "async",
    ]));
    assert_eq!(
        to_json(&async_),
        "{\"topology\":\"ring\",\"protocol\":\"advert\",\"scheduler\":\"async\",\
         \"nodes\":1000,\"messages\":1,\"seed\":42,\"completed\":true,\
         \"rounds_to_completion\":890,\"rounds_executed\":890,\
         \"virtual_time\":911045,\"virtual_time_to_completion\":911045,\
         \"total_connections\":999,\"productive_connections\":999,\
         \"wasted_connections\":0,\"complete_nodes\":1000}"
    );
}

#[test]
fn churn_experiments_reproduce_and_report_dynamics() {
    for scheduler in ["sync", "async"] {
        let cfg = parse_run(&[
            "--topology",
            "ring",
            "--nodes",
            "200",
            "--protocol",
            "advert",
            "--scheduler",
            scheduler,
            "--churn-rate",
            "0.1",
            "--rejoin",
            "keep",
            "--seed",
            "42",
        ]);
        let result = run_experiment(&cfg);
        assert!(
            result.completed,
            "{scheduler}: churned ring should complete"
        );
        let json = to_json(&result);
        for key in [
            "\"dynamics\":{\"model\":\"churn\"",
            "\"departures\":",
            "\"rejoins\":",
            "\"severed_connections\":",
            "\"peak_alive\":",
            "\"min_alive\":",
            "\"final_alive\":",
            "\"coverage_timeline\":[{\"time\":0,\"alive\":200,",
        ] {
            assert!(json.contains(key), "{scheduler}: JSON missing {key}");
        }
        // Same seed + config reproduces the whole result, timeline and all.
        assert_eq!(to_json(&run_experiment(&cfg)), json, "{scheduler}");
    }
}

#[test]
fn static_json_carries_no_dynamics_key() {
    let result = run_experiment(&parse_run(&["--nodes", "40"]));
    assert!(result.dynamics.is_none());
    assert!(!to_json(&result).contains("\"dynamics\""));
}

#[test]
fn fading_and_mobility_run_end_to_end() {
    let fading = run_experiment(&parse_run(&[
        "--topology",
        "complete",
        "--nodes",
        "40",
        "--fade-prob",
        "0.2",
        "--seed",
        "5",
    ]));
    assert!(fading.completed);
    let stats = fading.dynamics.as_ref().expect("fading stats");
    assert_eq!(stats.model, "fading");
    assert!(stats.edge_downs > 0);

    let mobile = run_experiment(&parse_run(&[
        "--topology",
        "rgg",
        "--nodes",
        "50",
        "--mobility",
        "--protocol",
        "advert",
        "--seed",
        "5",
    ]));
    assert!(mobile.completed);
    let stats = mobile.dynamics.as_ref().expect("mobility stats");
    assert_eq!(stats.model, "waypoint");

    let combined = run_experiment(&parse_run(&[
        "--topology",
        "ring",
        "--nodes",
        "40",
        "--churn-rate",
        "0.05",
        "--fade-prob",
        "0.05",
        "--seed",
        "5",
    ]));
    let stats = combined.dynamics.as_ref().expect("composite stats");
    assert_eq!(stats.model, "churn+fading");
    assert!(stats.departures > 0 && stats.edge_downs > 0);
}

#[test]
fn threads_flag_does_not_change_results_end_to_end() {
    // The engine is thread-count deterministic; the CLI path (including
    // the available-parallelism clamp) must preserve that.
    for topology in ["ring", "rgg"] {
        for protocol in ["uniform", "advert"] {
            let serial = run_experiment(&parse_run(&[
                "--topology",
                topology,
                "--nodes",
                "80",
                "--protocol",
                protocol,
                "--seed",
                "7",
            ]));
            for threads in ["2", "8"] {
                let sharded = run_experiment(&parse_run(&[
                    "--topology",
                    topology,
                    "--nodes",
                    "80",
                    "--protocol",
                    protocol,
                    "--seed",
                    "7",
                    "--threads",
                    threads,
                ]));
                assert_eq!(
                    serial, sharded,
                    "{protocol} on {topology} diverged at --threads {threads}"
                );
            }
        }
    }
}

#[test]
fn timed_sweep_surfaces_threads_and_wall_time() {
    let cfg = parse_run(&["--nodes", "30", "--seeds", "2", "--threads", "1"]);
    let records: Vec<_> = run_sweep_timed_iter(&cfg).collect();
    assert_eq!(records.len(), 2);
    for (result, meta) in &records {
        assert_eq!(meta.threads, 1);
        assert!(result.completed);
    }
    // The result half matches the untimed sweep exactly.
    let untimed = run_sweep(&cfg);
    let timed_results: Vec<_> = records.into_iter().map(|(r, _)| r).collect();
    assert_eq!(untimed, timed_results);
}

#[test]
fn bench_runs_end_to_end_and_reports_throughput() {
    let cfg = BenchConfig {
        topology: "ring".to_string(),
        nodes: 2000,
        protocol: "advert".to_string(),
        messages: 1,
        seed: 5,
        threads: 1,
        rounds: 32,
    };
    let report = run_bench(&cfg);
    assert_eq!(report.rounds_executed, 32, "budget-capped, far from done");
    assert!(!report.completed);
    assert!(report.rounds_per_sec > 0.0);
    assert!(report.node_events_per_sec >= report.rounds_per_sec);
    // The accounting totals are seed-deterministic run to run — this is
    // the divergence check the CI smoke job performs across thread
    // counts.
    let again = run_bench(&cfg);
    assert_eq!(report.total_connections, again.total_connections);
    assert_eq!(report.productive_connections, again.productive_connections);
    assert_eq!(report.complete_nodes, again.complete_nodes);

    let json = bench_to_json(&report);
    for key in [
        "\"bench\":\"sync_round_loop\"",
        "\"topology\":\"ring\"",
        "\"nodes\":2000",
        "\"threads\":1",
        "\"round_budget\":32",
        "\"rounds_executed\":32",
        "\"rounds_per_sec\":",
        "\"node_events_per_sec\":",
        "\"wall_ms\":",
        "\"build_ms\":",
        "\"total_connections\":",
    ] {
        assert!(json.contains(key), "bench JSON missing {key}: {json}");
    }
    assert!(!json.contains('\n'), "bench output must be line-oriented");
}

#[test]
fn csv_sweeps_emit_one_well_formed_row_per_seed() {
    let cfg = parse_run(&[
        "--nodes",
        "30",
        "--seeds",
        "4",
        "--format",
        "csv",
        "--churn-rate",
        "0.1",
        "--seed",
        "9",
    ]);
    let results = run_sweep(&cfg);
    assert_eq!(results.len(), 4);
    let columns = csv_header().split(',').count();
    for (i, result) in results.iter().enumerate() {
        let row = to_csv_row(
            result,
            &RunMeta {
                threads: 1,
                wall_ms: 0,
            },
        );
        assert_eq!(row.split(',').count(), columns, "row {i}: {row}");
        assert!(row.starts_with("ring,uniform,sync,30,1,"));
        assert!(row.contains(&format!(",{},", 9 + i as u64)), "seed echoed");
        assert!(row.contains(",churn,"), "dynamics columns filled");
    }
}
