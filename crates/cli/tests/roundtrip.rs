//! Property test: every flag combination the CLI accepts builds a typed
//! [`Scenario`] that round-trips through the spec-file parser unchanged —
//! `flags -> Scenario -> to_spec() -> parse_spec() -> expand()` is the
//! identity. This pins the whole chain: the flag table, the builder, the
//! spec serializer, and the spec parser can only drift together (i.e. not
//! at all).

use gossip_cli::{parse_args, Command};
use gossip_core::Rng;
use gossip_experiments::{parse_spec, Scenario};

fn parse_run(args: &[String]) -> Scenario {
    match parse_args(args) {
        Ok(Command::Run { scenario, .. }) => scenario,
        other => panic!("expected Run for {args:?}, got {other:?}"),
    }
}

fn assert_round_trips(args: &[String]) {
    let scenario = parse_run(args);
    let spec = scenario.to_spec();
    let grid =
        parse_spec(&spec).unwrap_or_else(|e| panic!("emitted spec failed to parse: {e:?}\n{spec}"));
    let cells = grid
        .expand()
        .unwrap_or_else(|e| panic!("emitted spec failed to expand: {e}\n{spec}"));
    assert_eq!(
        cells,
        vec![scenario.clone()],
        "round trip changed the scenario\nflags: {args:?}\nspec:\n{spec}"
    );
    // And the id is stable across the trip (it only reads scenario
    // fields, but pin it explicitly: ids are what grid outputs key on).
    assert_eq!(cells[0].scenario_id(), scenario.scenario_id());
}

/// A random valid flag combination. Fractions are drawn in hundredths so
/// their `Display` form round-trips exactly.
fn random_flags(rng: &mut Rng) -> Vec<String> {
    let mut args: Vec<String> = Vec::new();
    let mut push = |flag: &str, value: String| {
        args.push(flag.to_string());
        if !value.is_empty() {
            args.push(value);
        }
    };
    let pct = |rng: &mut Rng, lo: usize, hi: usize| -> String {
        let v = lo + rng.gen_range(hi - lo);
        format!("0.{v:02}")
    };

    let topologies = [
        "line",
        "ring",
        "grid",
        "complete",
        "rgg",
        "random_geometric",
    ];
    let topology = topologies[rng.gen_range(topologies.len())];
    let is_rgg = topology == "rgg" || topology == "random_geometric";
    push("--topology", topology.to_string());
    push("--nodes", (2 + rng.gen_range(120)).to_string());
    if rng.gen_bool() {
        push(
            "--protocol",
            ["uniform", "advert"][rng.gen_range(2)].to_string(),
        );
    }
    if rng.gen_bool() {
        push("--seed", rng.gen_range(10_000).to_string());
    }
    if rng.gen_bool() {
        push("--seeds", (1 + rng.gen_range(8)).to_string());
    }
    if rng.gen_bool() {
        push("--messages", (1 + rng.gen_range(5)).to_string());
    }
    if rng.gen_bool() {
        push("--max-rounds", (100 + rng.gen_range(10_000)).to_string());
    }
    if is_rgg && rng.gen_bool() {
        push("--radius", pct(rng, 10, 90));
    }

    let async_scheduler = rng.gen_bool();
    if async_scheduler {
        push("--scheduler", "async".to_string());
        if rng.gen_bool() {
            push("--drift", pct(rng, 1, 90));
        }
        if rng.gen_bool() {
            push("--refresh-jitter", pct(rng, 1, 90));
        }
        if rng.gen_bool() {
            let min = 1 + rng.gen_range(100) as u64;
            let max = min + rng.gen_range(400) as u64;
            push("--min-latency", min.to_string());
            push("--max-latency", max.to_string());
        }
    }
    // Both schedulers shard over worker threads now.
    if rng.gen_bool() {
        push("--threads", (1 + rng.gen_range(8)).to_string());
    }

    let mobility = is_rgg && rng.gen_bool();
    if mobility {
        push("--mobility", String::new());
    }
    if rng.gen_bool() {
        push("--churn-rate", pct(rng, 1, 90));
        if rng.gen_bool() {
            push(
                "--rejoin",
                ["keep", "lose", "none"][rng.gen_range(3)].to_string(),
            );
        }
    }
    if !mobility && rng.gen_bool() {
        push("--fade-prob", pct(rng, 1, 90));
    }

    let history = rng.gen_bool();
    if history {
        push("--history", String::new());
    } else if rng.gen_bool() {
        push("--format", "csv".to_string());
    }
    args
}

#[test]
fn every_accepted_flag_combination_round_trips_through_spec_files() {
    let mut rng = Rng::new(0x5bec);
    for _ in 0..400 {
        let args = random_flags(&mut rng);
        assert_round_trips(&args);
    }
}

#[test]
fn the_exhaustive_small_grid_of_flag_combinations_round_trips() {
    for topology in ["line", "ring", "grid", "complete", "rgg"] {
        for protocol in ["uniform", "advert"] {
            for scheduler in ["sync", "async"] {
                let args: Vec<String> = [
                    "--topology",
                    topology,
                    "--protocol",
                    protocol,
                    "--scheduler",
                    scheduler,
                    "--nodes",
                    "48",
                    "--seed",
                    "11",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect();
                assert_round_trips(&args);
            }
        }
    }
}

#[test]
fn defaults_round_trip() {
    assert_round_trips(&[]);
}
