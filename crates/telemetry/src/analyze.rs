//! The offline `analyze` stage: turn emitted run/sweep JSONL lines and
//! trace files into summary statistics — rounds-to-completion
//! distributions with percentiles, advert-vs-uniform speedup tables,
//! dissemination-depth stats from the infection DAG, and per-region
//! balance summaries.
//!
//! Input is line-oriented and self-describing: a line with `"schema"` and
//! `"scenario_id"` is a run line, one with `"trace_schema"` opens a trace
//! stream, one with `"ev"` is a trace event of the currently open stream.
//! Anything else (CSV headers, blank lines) is counted and skipped, so
//! `analyze` accepts whole output directories without ceremony.

use crate::json::{parse, Value};
use crate::metrics::{regions_for, LoadSummary, RegionLoad};

/// One run line's distilled facts.
#[derive(Clone, Debug)]
struct RunRow {
    /// `scenario_id` with the seed suffix stripped — the sweep group.
    group: String,
    protocol: String,
    rounds: Option<u64>,
    /// Membership-overlay counters, present exactly when the line carries
    /// a `membership` object.
    membership: Option<MemRow>,
    /// `dynamics.departures`, when the line carries a dynamics object —
    /// the churn denominator the eviction false-positive rate is read
    /// against.
    departures: Option<u64>,
}

/// The membership counters of one run line.
#[derive(Clone, Copy, Debug)]
struct MemRow {
    suspicions: u64,
    evictions: u64,
    false_positives: u64,
    isolated: u64,
}

/// Accumulator for the trace stream currently being read.
#[derive(Debug)]
struct TraceAccum {
    scenario_id: String,
    nodes: usize,
    messages: usize,
    /// Infection depth per `(message, node)`; `u32::MAX` = not reached.
    /// The first node seen *sending* a message is its source (depth 0).
    depth: Vec<u32>,
    counts: EventCounts,
    connects: RegionLoad,
    transfers: RegionLoad,
    block: usize,
}

/// Tallies of each trace event kind.
#[derive(Clone, Copy, Debug, Default)]
struct EventCounts {
    propose: u64,
    connect: u64,
    reject: u64,
    drop: u64,
    transfer: u64,
    sever: u64,
    mutate: u64,
    boundary: u64,
    join: u64,
    shuffle: u64,
    suspect: u64,
    evict: u64,
    other: u64,
}

impl EventCounts {
    fn total(&self) -> u64 {
        self.propose
            + self.connect
            + self.reject
            + self.drop
            + self.transfer
            + self.sever
            + self.mutate
            + self.boundary
            + self.membership_total()
            + self.other
    }

    /// Events emitted by the membership overlay; zero on traces of
    /// full-view runs, whose report lines are then unchanged.
    fn membership_total(&self) -> u64 {
        self.join + self.shuffle + self.suspect + self.evict
    }
}

/// One finished trace stream's summary.
#[derive(Debug)]
struct TraceStats {
    scenario_id: String,
    counts: EventCounts,
    /// `(message, node)` pairs reached (sources included) out of
    /// `messages × nodes`.
    reached: usize,
    universe: usize,
    depth_max: u32,
    /// Mean infection depth over reached non-source pairs.
    depth_mean: f64,
    connects: LoadSummary,
    transfers: LoadSummary,
}

/// Streaming consumer of analyze input; feed lines, then render the
/// report with [`report`](Self::report).
#[derive(Debug, Default)]
pub struct Analyzer {
    runs: Vec<RunRow>,
    traces: Vec<TraceStats>,
    current: Option<TraceAccum>,
    skipped: u64,
}

/// Strip the trailing `-s<seed>` component a sweep appends to each cell's
/// `scenario_id`, yielding the sweep-group key.
fn strip_seed(scenario_id: &str) -> String {
    if let Some(idx) = scenario_id.rfind("-s") {
        let tail = &scenario_id[idx + 2..];
        if !tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit()) {
            return scenario_id[..idx].to_string();
        }
    }
    scenario_id.to_string()
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl Analyzer {
    /// Consume one input line, classifying it by shape.
    pub fn add_line(&mut self, line: &str) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        let Ok(v) = parse(line) else {
            self.skipped += 1;
            return;
        };
        if v.get("trace_schema").is_some() {
            self.finish_trace();
            let nodes = v.get("nodes").and_then(Value::as_u64).unwrap_or(0) as usize;
            let messages = v.get("messages").and_then(Value::as_u64).unwrap_or(1) as usize;
            self.current = Some(TraceAccum {
                scenario_id: v
                    .get("scenario_id")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string(),
                nodes,
                messages,
                depth: vec![u32::MAX; nodes.saturating_mul(messages)],
                counts: EventCounts::default(),
                connects: RegionLoad::default(),
                transfers: RegionLoad::default(),
                block: nodes.div_ceil(crate::metrics::REGIONS).max(1),
            });
            return;
        }
        if let Some(ev) = v.get("ev").and_then(Value::as_str) {
            let Some(accum) = self.current.as_mut() else {
                self.skipped += 1; // event before any header
                return;
            };
            accum.observe(ev, &v);
            return;
        }
        if v.get("schema").is_some() && v.get("scenario_id").is_some() {
            let scenario_id = v
                .get("scenario_id")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string();
            let membership = v.get("membership").map(|m| {
                let count = |key: &str| m.get(key).and_then(Value::as_u64).unwrap_or(0);
                MemRow {
                    suspicions: count("suspicions"),
                    evictions: count("evictions"),
                    false_positives: count("false_positive_evictions"),
                    isolated: count("isolated_nodes"),
                }
            });
            self.runs.push(RunRow {
                group: strip_seed(&scenario_id),
                protocol: v
                    .get("protocol")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string(),
                rounds: v.get("rounds_to_completion").and_then(Value::as_u64),
                membership,
                departures: v
                    .get("dynamics")
                    .and_then(|d| d.get("departures"))
                    .and_then(Value::as_u64),
            });
            return;
        }
        self.skipped += 1;
    }

    fn finish_trace(&mut self) {
        if let Some(accum) = self.current.take() {
            self.traces.push(accum.finish());
        }
    }

    /// Render the full report. Sections appear only when their inputs do.
    pub fn report(mut self) -> String {
        self.finish_trace();
        let mut out = String::new();

        // Rounds-to-completion distributions, one row per sweep group.
        let mut groups: Vec<String> = self.runs.iter().map(|r| r.group.clone()).collect();
        groups.sort();
        groups.dedup();
        if !groups.is_empty() {
            let width = groups.iter().map(|g| g.len()).max().unwrap().max(8);
            out.push_str("rounds to completion\n");
            out.push_str(&format!(
                "  {:width$}  {:>5} {:>5} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9}\n",
                "scenario", "runs", "done", "min", "p50", "p90", "p99", "max", "mean"
            ));
            for group in &groups {
                let rows: Vec<&RunRow> = self.runs.iter().filter(|r| &r.group == group).collect();
                let mut done: Vec<u64> = rows.iter().filter_map(|r| r.rounds).collect();
                done.sort_unstable();
                if done.is_empty() {
                    out.push_str(&format!(
                        "  {:width$}  {:>5} {:>5}  (no completed runs)\n",
                        group,
                        rows.len(),
                        0
                    ));
                    continue;
                }
                let mean = done.iter().sum::<u64>() as f64 / done.len() as f64;
                out.push_str(&format!(
                    "  {:width$}  {:>5} {:>5} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9.1}\n",
                    group,
                    rows.len(),
                    done.len(),
                    done[0],
                    percentile(&done, 0.5),
                    percentile(&done, 0.9),
                    percentile(&done, 0.99),
                    done[done.len() - 1],
                    mean,
                ));
            }
        }

        // Advert-vs-uniform speedups: pair groups identical but for the
        // protocol token.
        let mut pairs: Vec<(String, Vec<u64>, Vec<u64>)> = Vec::new();
        for group in &groups {
            let rows: Vec<&RunRow> = self.runs.iter().filter(|r| &r.group == group).collect();
            let protocol = rows.first().map(|r| r.protocol.clone()).unwrap_or_default();
            if protocol != "advert" {
                continue;
            }
            let key = group.replacen("-advert-", "-*-", 1);
            let mut advert: Vec<u64> = rows.iter().filter_map(|r| r.rounds).collect();
            let mut uniform: Vec<u64> = self
                .runs
                .iter()
                .filter(|r| {
                    r.protocol == "uniform" && r.group.replacen("-uniform-", "-*-", 1) == key
                })
                .filter_map(|r| r.rounds)
                .collect();
            advert.sort_unstable();
            uniform.sort_unstable();
            if !advert.is_empty() && !uniform.is_empty() {
                pairs.push((key, advert, uniform));
            }
        }
        if !pairs.is_empty() {
            let width = pairs.iter().map(|(k, ..)| k.len()).max().unwrap().max(8);
            out.push_str("\nadvert vs uniform speedup (completed rounds)\n");
            out.push_str(&format!(
                "  {:width$}  {:>10} {:>11} {:>11} {:>12}\n",
                "scenario", "advert_p50", "uniform_p50", "speedup_p50", "speedup_mean"
            ));
            for (key, advert, uniform) in &pairs {
                let (ap50, up50) = (percentile(advert, 0.5), percentile(uniform, 0.5));
                let amean = advert.iter().sum::<u64>() as f64 / advert.len() as f64;
                let umean = uniform.iter().sum::<u64>() as f64 / uniform.len() as f64;
                out.push_str(&format!(
                    "  {:width$}  {:>10} {:>11} {:>10.2}x {:>11.2}x\n",
                    key,
                    ap50,
                    up50,
                    up50 as f64 / ap50 as f64,
                    umean / amean,
                ));
            }
        }

        // Membership-overlay section: one row per sweep group whose lines
        // carry a `membership` object; groups without it never appear, so
        // full-view reports are unchanged.
        let mem_groups: Vec<&String> = groups
            .iter()
            .filter(|g| {
                self.runs
                    .iter()
                    .any(|r| &r.group == *g && r.membership.is_some())
            })
            .collect();
        if !mem_groups.is_empty() {
            let width = mem_groups.iter().map(|g| g.len()).max().unwrap().max(8);
            out.push_str("\nmembership overlay (totals across runs)\n");
            out.push_str(&format!(
                "  {:width$}  {:>5} {:>10} {:>9} {:>9} {:>10} {:>8} {:>8}\n",
                "scenario",
                "runs",
                "suspicions",
                "evictions",
                "false_ev",
                "departures",
                "fp_rate",
                "isolated"
            ));
            for group in mem_groups {
                let rows: Vec<&RunRow> = self
                    .runs
                    .iter()
                    .filter(|r| &r.group == group && r.membership.is_some())
                    .collect();
                let sum = |f: fn(&MemRow) -> u64| -> u64 {
                    rows.iter()
                        .filter_map(|r| r.membership.map(|m| f(&m)))
                        .sum()
                };
                let (suspicions, evictions) = (sum(|m| m.suspicions), sum(|m| m.evictions));
                let false_ev = sum(|m| m.false_positives);
                let departures: u64 = rows.iter().filter_map(|r| r.departures).sum();
                let fp_rate = if evictions == 0 {
                    "-".to_string()
                } else {
                    format!("{:.3}", false_ev as f64 / evictions as f64)
                };
                out.push_str(&format!(
                    "  {:width$}  {:>5} {:>10} {:>9} {:>9} {:>10} {:>8} {:>8}\n",
                    group,
                    rows.len(),
                    suspicions,
                    evictions,
                    false_ev,
                    departures,
                    fp_rate,
                    sum(|m| m.isolated),
                ));
            }
        }

        // Per-trace sections.
        for t in &self.traces {
            let c = &t.counts;
            out.push_str(&format!("\ntrace {}\n", t.scenario_id));
            out.push_str(&format!(
                "  events {} (propose {}, connect {}, reject {}, drop {}, transfer {}, sever {}, mutate {}, boundary {})\n",
                c.total(), c.propose, c.connect, c.reject, c.drop, c.transfer, c.sever, c.mutate, c.boundary
            ));
            if c.membership_total() > 0 {
                out.push_str(&format!(
                    "  membership events: join {}, shuffle {}, suspect {}, evict {}\n",
                    c.join, c.shuffle, c.suspect, c.evict
                ));
            }
            out.push_str(&format!(
                "  dissemination depth: reached {}/{} node-messages, max depth {}, mean depth {:.1}\n",
                t.reached, t.universe, t.depth_max, t.depth_mean
            ));
            let (cn, tr) = (&t.connects, &t.transfers);
            out.push_str(&format!(
                "  region balance ({} regions): connects min {} mean {:.1} max {} imbalance {:.2}; transfers min {} mean {:.1} max {} imbalance {:.2}\n",
                cn.regions, cn.min, cn.mean, cn.max, cn.imbalance, tr.min, tr.mean, tr.max, tr.imbalance
            ));
        }

        if self.skipped > 0 {
            out.push_str(&format!("\nskipped {} unparsable lines\n", self.skipped));
        }
        if out.is_empty() {
            out.push_str("no run lines or trace streams found in input\n");
        }
        out
    }
}

impl TraceAccum {
    fn observe(&mut self, ev: &str, v: &Value) {
        match ev {
            "propose" => self.counts.propose += 1,
            "connect" => {
                self.counts.connect += 1;
                if let Some(i) = v.get("initiator").and_then(Value::as_u64) {
                    let region = (i as usize / self.block).min(crate::metrics::REGIONS - 1);
                    self.connects.add(region, 1);
                }
            }
            "reject" => self.counts.reject += 1,
            "drop" => self.counts.drop += 1,
            "transfer" => {
                self.counts.transfer += 1;
                let from = v.get("from").and_then(Value::as_u64);
                let to = v.get("to").and_then(Value::as_u64);
                let msg = v.get("msg").and_then(Value::as_u64).unwrap_or(0) as usize;
                if let (Some(from), Some(to)) = (from, to) {
                    let region = (from as usize / self.block).min(crate::metrics::REGIONS - 1);
                    self.transfers.add(region, 1);
                    let (from, to) = (from as usize, to as usize);
                    if from < self.nodes && to < self.nodes && msg < self.messages {
                        let fi = msg * self.nodes + from;
                        let ti = msg * self.nodes + to;
                        // First sighting of a sender for this message:
                        // that is the message's source (or the frontier of
                        // a stream that started mid-run) — depth 0.
                        if self.depth[fi] == u32::MAX {
                            self.depth[fi] = 0;
                        }
                        if self.depth[ti] == u32::MAX {
                            self.depth[ti] = self.depth[fi] + 1;
                        }
                    }
                }
            }
            "sever" => self.counts.sever += 1,
            "mutate" => self.counts.mutate += 1,
            "boundary" => self.counts.boundary += 1,
            "join" => self.counts.join += 1,
            "shuffle" => self.counts.shuffle += 1,
            "suspect" => self.counts.suspect += 1,
            "evict" => self.counts.evict += 1,
            _ => self.counts.other += 1,
        }
    }

    fn finish(self) -> TraceStats {
        let mut reached = 0usize;
        let mut depth_max = 0u32;
        let mut depth_sum = 0u64;
        let mut depth_n = 0u64;
        for &d in &self.depth {
            if d == u32::MAX {
                continue;
            }
            reached += 1;
            depth_max = depth_max.max(d);
            if d > 0 {
                depth_sum += d as u64;
                depth_n += 1;
            }
        }
        let regions = regions_for(self.nodes);
        TraceStats {
            scenario_id: self.scenario_id,
            counts: self.counts,
            reached,
            universe: self.depth.len(),
            depth_max,
            depth_mean: if depth_n == 0 {
                0.0
            } else {
                depth_sum as f64 / depth_n as f64
            },
            connects: self.connects.summary(regions),
            transfers: self.transfers.summary(regions),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(group: &str, protocol: &str, seed: u64, rounds: Option<u64>) -> String {
        let rounds = rounds.map_or("null".to_string(), |r| r.to_string());
        format!(
            "{{\"schema\":1,\"scenario_id\":\"{group}-s{seed}\",\"protocol\":\"{protocol}\",\"completed\":true,\"rounds_to_completion\":{rounds}}}"
        )
    }

    #[test]
    fn seed_suffix_stripping_is_conservative() {
        assert_eq!(
            strip_seed("ring-advert-sync-n1000-k1-s42"),
            "ring-advert-sync-n1000-k1"
        );
        assert_eq!(strip_seed("ring-advert-sync"), "ring-advert-sync");
        assert_eq!(strip_seed("grid-s12abc"), "grid-s12abc");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&v, 0.5), 5);
        assert_eq!(percentile(&v, 0.9), 9);
        assert_eq!(percentile(&v, 0.99), 10);
        assert_eq!(percentile(&[7], 0.5), 7);
    }

    #[test]
    fn report_groups_runs_and_computes_speedup() {
        let mut a = Analyzer::default();
        for (seed, rounds) in [(1, 500), (2, 520), (3, 480)] {
            a.add_line(&run_line(
                "ring-advert-sync-n1000-k1",
                "advert",
                seed,
                Some(rounds),
            ));
        }
        for (seed, rounds) in [(1, 1600), (2, 1700), (3, 1500)] {
            a.add_line(&run_line(
                "ring-uniform-sync-n1000-k1",
                "uniform",
                seed,
                Some(rounds),
            ));
        }
        a.add_line("not json at all");
        let report = a.report();
        assert!(report.contains("rounds to completion"), "{report}");
        assert!(report.contains("ring-advert-sync-n1000-k1"), "{report}");
        assert!(report.contains("p50"), "{report}");
        assert!(report.contains("advert vs uniform speedup"), "{report}");
        // p50: advert 500, uniform 1600 → 3.20x.
        assert!(report.contains("3.20x"), "{report}");
        assert!(report.contains("skipped 1 unparsable lines"), "{report}");
    }

    #[test]
    fn trace_depth_follows_the_infection_dag() {
        let mut a = Analyzer::default();
        a.add_line(r#"{"trace_schema":1,"scenario_id":"tiny","nodes":4,"messages":1,"seed":0}"#);
        // 0 -> 1 -> 2, and 1 -> 3: depths 0,1,2,2.
        a.add_line(r#"{"ev":"connect","t":1,"round":1,"initiator":0,"acceptor":1}"#);
        a.add_line(r#"{"ev":"transfer","t":1,"round":1,"from":0,"to":1,"msg":0}"#);
        a.add_line(r#"{"ev":"transfer","t":2,"round":1,"from":1,"to":2,"msg":0}"#);
        a.add_line(r#"{"ev":"transfer","t":3,"round":1,"from":1,"to":3,"msg":0}"#);
        let report = a.report();
        assert!(
            report.contains("reached 4/4 node-messages, max depth 2"),
            "{report}"
        );
        // Mean over non-source reached pairs: (1 + 2 + 2) / 3.
        assert!(report.contains("mean depth 1.7"), "{report}");
        assert!(report.contains("region balance"), "{report}");
    }

    #[test]
    fn membership_lines_get_their_own_section_and_plain_lines_do_not() {
        let mut a = Analyzer::default();
        // One plain line: no membership section may appear for it.
        a.add_line(&run_line(
            "ring-uniform-sync-n50-k1",
            "uniform",
            1,
            Some(90),
        ));
        // Two membership + churn lines in one sweep group.
        for seed in [1u64, 2] {
            a.add_line(&format!(
                "{{\"schema\":1,\"scenario_id\":\"rgg-advert-sync-n50-k1-churn0.01:keep-mem@a5p30sh1pr1-s{seed}\",\
                 \"protocol\":\"advert\",\"completed\":true,\"rounds_to_completion\":70,\
                 \"dynamics\":{{\"model\":\"churn\",\"departures\":4}},\
                 \"membership\":{{\"active_min\":1,\"active_mean\":4.2,\"active_max\":5,\
                 \"isolated_nodes\":0,\"joins\":50,\"shuffles\":100,\"probes\":100,\
                 \"suspicions\":6,\"evictions\":5,\"false_positive_evictions\":1}}}}"
            ));
        }
        let report = a.report();
        assert!(report.contains("membership overlay"), "{report}");
        // Totals over the two runs: 12 suspicions, 10 evictions, 2 false,
        // 8 departures, fp rate 2/10.
        assert!(report.contains("12"), "{report}");
        assert!(report.contains("0.200"), "{report}");
        // The full-view group is absent from the membership table.
        let section = report.split("membership overlay").nth(1).unwrap();
        assert!(!section.contains("ring-uniform"), "{report}");

        // A report with no membership lines has no such section at all.
        let mut plain = Analyzer::default();
        plain.add_line(&run_line(
            "ring-uniform-sync-n50-k1",
            "uniform",
            1,
            Some(90),
        ));
        assert!(!plain.report().contains("membership overlay"));
    }

    #[test]
    fn membership_trace_events_are_tallied() {
        let mut a = Analyzer::default();
        a.add_line(r#"{"trace_schema":1,"scenario_id":"tiny","nodes":4,"messages":1,"seed":0}"#);
        a.add_line(r#"{"ev":"join","t":0,"round":0,"node":0,"peer":1}"#);
        a.add_line(r#"{"ev":"shuffle","t":0,"round":0,"node":1,"peer":2}"#);
        a.add_line(r#"{"ev":"suspect","t":1024,"round":1,"node":1,"peer":3}"#);
        a.add_line(r#"{"ev":"evict","t":2048,"round":2,"node":1,"peer":3}"#);
        let report = a.report();
        assert!(
            report.contains("membership events: join 1, shuffle 1, suspect 1, evict 1"),
            "{report}"
        );

        // Traces without membership events keep their report unchanged.
        let mut plain = Analyzer::default();
        plain.add_line(r#"{"trace_schema":1,"scenario_id":"t2","nodes":4,"messages":1,"seed":0}"#);
        plain.add_line(r#"{"ev":"connect","t":1,"round":1,"initiator":0,"acceptor":1}"#);
        assert!(!plain.report().contains("membership events"));
    }

    #[test]
    fn incomplete_groups_render_without_percentiles() {
        let mut a = Analyzer::default();
        a.add_line(&run_line("line-advert-sync-n9-k1", "advert", 1, None));
        let report = a.report();
        assert!(report.contains("(no completed runs)"), "{report}");
    }

    #[test]
    fn empty_input_says_so() {
        assert!(Analyzer::default().report().contains("no run lines"));
    }
}
