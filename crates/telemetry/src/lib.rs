//! Deterministic telemetry for the gossip engines: trace probes, a
//! hand-rolled metrics registry, and offline analysis of run output.
//!
//! This crate sits at the *bottom* of the workspace dependency graph — it
//! knows nothing about topologies, protocols, or schedulers, only raw node
//! and message ids — so every other crate can depend on it without cycles.
//! Three pieces:
//!
//! - [`Probe`] / [`TraceEvent`] — the observation interface the engines
//!   call at semantic points (connection proposed / accepted / rejected /
//!   severed, message transferred, proposal dropped, mutation applied,
//!   round/slice boundary). The contract is **determinism under
//!   observation**: probes are only ever invoked from the engines' serial
//!   sections (or fed from per-region logs merged in a deterministic
//!   order), never consume engine randomness, and never feed back into the
//!   simulation — so a run's `SimResult` is byte-identical with tracing on
//!   or off, at any thread count, and so is the trace itself.
//! - [`metrics`] — counters, gauges, and log-bucketed histograms, all
//!   hand-rolled (the workspace is dependency-free by design), plus the
//!   fixed-width [`metrics::RegionLoad`] accumulator the sharded engines
//!   use for per-region load-balance accounting.
//! - [`analyze`] — consumes emitted run/sweep JSONL lines and trace files
//!   and produces rounds-to-completion percentile tables,
//!   advert-vs-uniform speedup comparisons, dissemination-depth stats from
//!   the infection DAG, and per-region balance summaries.
//! - [`progress`] — pool-aware sweep progress bookkeeping (done/running/
//!   stolen counts, running-mean ETA) behind the `grid --progress`
//!   heartbeat.
//!
//! [`TraceWriter`] bridges the two worlds: a [`Probe`] that renders every
//! event as one JSONL line (schema-versioned via
//! [`TRACE_SCHEMA_VERSION`]), buffering I/O errors instead of panicking so
//! engines stay infallible and the CLI surfaces the failure cleanly.

pub mod analyze;
pub mod json;
pub mod metrics;
mod probe;
pub mod progress;

pub use probe::{
    BoundaryScope, MemoryProbe, MutateKind, NoopProbe, Probe, TraceEvent, TraceWriter,
    TRACE_SCHEMA_VERSION,
};
