//! The observation interface: trace events, the probe trait, and the
//! JSONL trace writer.

use crate::json::json_str;
use std::io::{self, Write};

/// Version stamp of the trace stream format. Bumped whenever an event's
/// JSON shape changes; the golden-file test in `gossip-experiments` pins
/// the rendering of every variant at the current version.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// What kind of topology mutation a [`TraceEvent::Mutate`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutateKind {
    /// A node departed (powered off / walked away).
    Depart,
    /// A departed node returned.
    Rejoin,
    /// An edge faded out.
    EdgeDown,
    /// A faded edge recovered.
    EdgeUp,
    /// A node's neighborhood was replaced (mobility).
    Rewire,
}

impl MutateKind {
    /// Stable lowercase tag used in the JSON rendering.
    pub fn tag(self) -> &'static str {
        match self {
            MutateKind::Depart => "depart",
            MutateKind::Rejoin => "rejoin",
            MutateKind::EdgeDown => "edge_down",
            MutateKind::EdgeUp => "edge_up",
            MutateKind::Rewire => "rewire",
        }
    }
}

/// Which clock edge a [`TraceEvent::Boundary`] marks: the end of a
/// synchronous round, or the start of an asynchronous slice pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundaryScope {
    /// End of synchronous round `round`.
    Round,
    /// Start of time-slice pass `round` (the slice index).
    Slice,
}

impl BoundaryScope {
    /// Stable lowercase tag used in the JSON rendering.
    pub fn tag(self) -> &'static str {
        match self {
            BoundaryScope::Round => "round",
            BoundaryScope::Slice => "slice",
        }
    }
}

/// One semantic event of a run, as observed by a [`Probe`].
///
/// Every variant carries the virtual time `t` (ticks) and the round (or
/// round-equivalent) it belongs to. Node and message ids are raw `u32`s —
/// this crate deliberately does not know the engine's newtypes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// `from` committed to proposing a connection to `to`.
    Propose {
        t: u64,
        round: u64,
        from: u32,
        to: u32,
    },
    /// A connection formed: `initiator` proposed, `acceptor` accepted.
    Connect {
        t: u64,
        round: u64,
        initiator: u32,
        acceptor: u32,
    },
    /// `from`'s proposal to `to` failed to form a connection (the target
    /// was busy, not listening, or gone by arrival time).
    Reject {
        t: u64,
        round: u64,
        from: u32,
        to: u32,
    },
    /// `from`'s proposal targeted a non-neighbor and was dropped by the
    /// resolver (a protocol bug surfaced in release builds).
    Drop {
        t: u64,
        round: u64,
        from: u32,
        to: u32,
    },
    /// Message `msg` moved from `from` to `to` over a connection.
    Transfer {
        t: u64,
        round: u64,
        from: u32,
        to: u32,
        msg: u32,
    },
    /// An open connection between `a` and `b` was severed by a departure
    /// mid-transfer; nothing moved.
    Sever { t: u64, round: u64, a: u32, b: u32 },
    /// A topology mutation was applied. `peer` is the second endpoint for
    /// edge mutations, absent otherwise.
    Mutate {
        t: u64,
        round: u64,
        kind: MutateKind,
        node: u32,
        peer: Option<u32>,
    },
    /// A clock edge: the end of a synchronous round or the start of an
    /// asynchronous slice pass (see [`BoundaryScope`]).
    Boundary {
        t: u64,
        round: u64,
        scope: BoundaryScope,
    },
    /// Membership: `node` (re)joined the overlay by linking to `peer`.
    Join {
        t: u64,
        round: u64,
        node: u32,
        peer: u32,
    },
    /// Membership: a shuffle step added `peer` to `node`'s passive view.
    Shuffle {
        t: u64,
        round: u64,
        node: u32,
        peer: u32,
    },
    /// Membership: `node`'s probe of `peer` failed; `peer` is now
    /// suspected.
    Suspect {
        t: u64,
        round: u64,
        node: u32,
        peer: u32,
    },
    /// Membership: `node` evicted the unrefuted suspect `peer` from its
    /// active view.
    Evict {
        t: u64,
        round: u64,
        node: u32,
        peer: u32,
    },
}

impl TraceEvent {
    /// Render the event as its one-line JSON form (no trailing newline).
    /// This *is* the trace schema; the golden-file test pins it.
    pub fn to_json(&self) -> String {
        match *self {
            TraceEvent::Propose { t, round, from, to } => {
                format!("{{\"ev\":\"propose\",\"t\":{t},\"round\":{round},\"from\":{from},\"to\":{to}}}")
            }
            TraceEvent::Connect {
                t,
                round,
                initiator,
                acceptor,
            } => format!(
                "{{\"ev\":\"connect\",\"t\":{t},\"round\":{round},\"initiator\":{initiator},\"acceptor\":{acceptor}}}"
            ),
            TraceEvent::Reject { t, round, from, to } => {
                format!("{{\"ev\":\"reject\",\"t\":{t},\"round\":{round},\"from\":{from},\"to\":{to}}}")
            }
            TraceEvent::Drop { t, round, from, to } => {
                format!("{{\"ev\":\"drop\",\"t\":{t},\"round\":{round},\"from\":{from},\"to\":{to}}}")
            }
            TraceEvent::Transfer {
                t,
                round,
                from,
                to,
                msg,
            } => format!(
                "{{\"ev\":\"transfer\",\"t\":{t},\"round\":{round},\"from\":{from},\"to\":{to},\"msg\":{msg}}}"
            ),
            TraceEvent::Sever { t, round, a, b } => {
                format!("{{\"ev\":\"sever\",\"t\":{t},\"round\":{round},\"a\":{a},\"b\":{b}}}")
            }
            TraceEvent::Mutate {
                t,
                round,
                kind,
                node,
                peer,
            } => {
                let kind = kind.tag();
                match peer {
                    Some(p) => format!(
                        "{{\"ev\":\"mutate\",\"t\":{t},\"round\":{round},\"kind\":\"{kind}\",\"node\":{node},\"peer\":{p}}}"
                    ),
                    None => format!(
                        "{{\"ev\":\"mutate\",\"t\":{t},\"round\":{round},\"kind\":\"{kind}\",\"node\":{node}}}"
                    ),
                }
            }
            TraceEvent::Boundary { t, round, scope } => {
                let scope = scope.tag();
                format!("{{\"ev\":\"boundary\",\"t\":{t},\"round\":{round},\"scope\":\"{scope}\"}}")
            }
            TraceEvent::Join {
                t,
                round,
                node,
                peer,
            } => {
                format!("{{\"ev\":\"join\",\"t\":{t},\"round\":{round},\"node\":{node},\"peer\":{peer}}}")
            }
            TraceEvent::Shuffle {
                t,
                round,
                node,
                peer,
            } => {
                format!("{{\"ev\":\"shuffle\",\"t\":{t},\"round\":{round},\"node\":{node},\"peer\":{peer}}}")
            }
            TraceEvent::Suspect {
                t,
                round,
                node,
                peer,
            } => {
                format!("{{\"ev\":\"suspect\",\"t\":{t},\"round\":{round},\"node\":{node},\"peer\":{peer}}}")
            }
            TraceEvent::Evict {
                t,
                round,
                node,
                peer,
            } => {
                format!("{{\"ev\":\"evict\",\"t\":{t},\"round\":{round},\"node\":{node},\"peer\":{peer}}}")
            }
        }
    }
}

/// The observation interface the engines call at semantic points.
///
/// The default implementation is a no-op with `enabled() == false`, which
/// is what lets the engines skip event derivation entirely on the hot
/// path: every emission site is guarded by one `enabled()` check per round
/// or slice. An enabled probe is only ever called from serial engine
/// sections (or fed from deterministically merged per-region logs) and
/// never consumes engine randomness, so enabling one cannot perturb the
/// simulation.
pub trait Probe {
    /// Should the engine derive and deliver events at all?
    fn enabled(&self) -> bool {
        false
    }

    /// Observe one event. Called in deterministic order; must not fail.
    fn record(&mut self, event: &TraceEvent) {
        let _ = event;
    }
}

/// The disabled probe: engines run exactly their untraced hot path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

/// A probe that buffers every event in memory — the determinism tests'
/// instrument of choice (two runs trace identically iff the vectors are
/// equal).
#[derive(Clone, Debug, Default)]
pub struct MemoryProbe {
    /// Every recorded event, in delivery order.
    pub events: Vec<TraceEvent>,
}

impl Probe for MemoryProbe {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: &TraceEvent) {
        self.events.push(*event);
    }
}

/// A probe that renders events as a JSONL stream.
///
/// Engines cannot fail, so `record` never surfaces I/O errors; the first
/// error is latched, further writes are suppressed, and the caller
/// retrieves it via [`finish`](Self::finish) once the run ends. Wrap the
/// inner writer in a `BufWriter` — one syscall per event would dominate
/// small runs.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    events: u64,
    error: Option<io::Error>,
}

impl<W: Write> TraceWriter<W> {
    /// A writer emitting to `out`. No header is written until
    /// [`begin_run`](Self::begin_run).
    pub fn new(out: W) -> Self {
        TraceWriter {
            out,
            events: 0,
            error: None,
        }
    }

    /// Write the header line opening one run's event stream. A file may
    /// hold several runs (a seed sweep traces each seed in sequence); each
    /// starts with its own header.
    pub fn begin_run(&mut self, scenario_id: &str, nodes: usize, messages: usize, seed: u64) {
        let line = format!(
            "{{\"trace_schema\":{TRACE_SCHEMA_VERSION},\"scenario_id\":{},\"nodes\":{nodes},\"messages\":{messages},\"seed\":{seed}}}\n",
            json_str(scenario_id)
        );
        self.write(line.as_bytes());
    }

    /// Events recorded so far (suppressed post-error writes included).
    pub fn events(&self) -> u64 {
        self.events
    }

    fn write(&mut self, bytes: &[u8]) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.out.write_all(bytes) {
            self.error = Some(e);
        }
    }

    /// Flush the stream and surface the first error encountered anywhere
    /// in the run — the clean-CLI-error half of the infallible-engine
    /// contract.
    pub fn finish(mut self) -> io::Result<()> {
        match self.error.take() {
            Some(e) => Err(e),
            None => self.out.flush(),
        }
    }

    /// [`finish`](Self::finish), but hand back the inner writer — the
    /// golden-file tests trace into a `Vec<u8>` and read it back.
    pub fn into_inner(mut self) -> io::Result<W> {
        match self.error.take() {
            Some(e) => Err(e),
            None => {
                self.out.flush()?;
                Ok(self.out)
            }
        }
    }
}

impl<W: Write> Probe for TraceWriter<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: &TraceEvent) {
        self.events += 1;
        let mut line = event.to_json();
        line.push('\n');
        self.write(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_renders_its_pinned_shape() {
        let cases = [
            (
                TraceEvent::Propose {
                    t: 5,
                    round: 1,
                    from: 2,
                    to: 3,
                },
                r#"{"ev":"propose","t":5,"round":1,"from":2,"to":3}"#,
            ),
            (
                TraceEvent::Connect {
                    t: 6,
                    round: 1,
                    initiator: 2,
                    acceptor: 3,
                },
                r#"{"ev":"connect","t":6,"round":1,"initiator":2,"acceptor":3}"#,
            ),
            (
                TraceEvent::Reject {
                    t: 7,
                    round: 1,
                    from: 4,
                    to: 5,
                },
                r#"{"ev":"reject","t":7,"round":1,"from":4,"to":5}"#,
            ),
            (
                TraceEvent::Drop {
                    t: 8,
                    round: 1,
                    from: 4,
                    to: 9,
                },
                r#"{"ev":"drop","t":8,"round":1,"from":4,"to":9}"#,
            ),
            (
                TraceEvent::Transfer {
                    t: 9,
                    round: 1,
                    from: 2,
                    to: 3,
                    msg: 0,
                },
                r#"{"ev":"transfer","t":9,"round":1,"from":2,"to":3,"msg":0}"#,
            ),
            (
                TraceEvent::Sever {
                    t: 10,
                    round: 1,
                    a: 1,
                    b: 2,
                },
                r#"{"ev":"sever","t":10,"round":1,"a":1,"b":2}"#,
            ),
            (
                TraceEvent::Mutate {
                    t: 11,
                    round: 1,
                    kind: MutateKind::Depart,
                    node: 7,
                    peer: None,
                },
                r#"{"ev":"mutate","t":11,"round":1,"kind":"depart","node":7}"#,
            ),
            (
                TraceEvent::Mutate {
                    t: 12,
                    round: 1,
                    kind: MutateKind::EdgeDown,
                    node: 7,
                    peer: Some(8),
                },
                r#"{"ev":"mutate","t":12,"round":1,"kind":"edge_down","node":7,"peer":8}"#,
            ),
            (
                TraceEvent::Boundary {
                    t: 1024,
                    round: 1,
                    scope: BoundaryScope::Round,
                },
                r#"{"ev":"boundary","t":1024,"round":1,"scope":"round"}"#,
            ),
            (
                TraceEvent::Join {
                    t: 1024,
                    round: 1,
                    node: 4,
                    peer: 5,
                },
                r#"{"ev":"join","t":1024,"round":1,"node":4,"peer":5}"#,
            ),
            (
                TraceEvent::Shuffle {
                    t: 2048,
                    round: 2,
                    node: 4,
                    peer: 6,
                },
                r#"{"ev":"shuffle","t":2048,"round":2,"node":4,"peer":6}"#,
            ),
            (
                TraceEvent::Suspect {
                    t: 3072,
                    round: 3,
                    node: 4,
                    peer: 5,
                },
                r#"{"ev":"suspect","t":3072,"round":3,"node":4,"peer":5}"#,
            ),
            (
                TraceEvent::Evict {
                    t: 5120,
                    round: 5,
                    node: 4,
                    peer: 5,
                },
                r#"{"ev":"evict","t":5120,"round":5,"node":4,"peer":5}"#,
            ),
        ];
        for (ev, want) in cases {
            assert_eq!(ev.to_json(), want);
        }
    }

    #[test]
    fn trace_writer_latches_the_first_io_error() {
        struct Failing(usize);
        impl Write for Failing {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Err(io::Error::new(io::ErrorKind::BrokenPipe, "closed"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = TraceWriter::new(Failing(1));
        w.begin_run("x", 2, 1, 0);
        w.record(&TraceEvent::Boundary {
            t: 0,
            round: 0,
            scope: BoundaryScope::Round,
        });
        w.record(&TraceEvent::Boundary {
            t: 1,
            round: 0,
            scope: BoundaryScope::Round,
        });
        assert_eq!(w.events(), 2, "records still counted after the error");
        let err = w.finish().expect_err("the latched error must surface");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn memory_probe_buffers_in_order() {
        let mut p = MemoryProbe::default();
        assert!(p.enabled());
        let a = TraceEvent::Propose {
            t: 1,
            round: 1,
            from: 0,
            to: 1,
        };
        let b = TraceEvent::Reject {
            t: 2,
            round: 1,
            from: 0,
            to: 1,
        };
        p.record(&a);
        p.record(&b);
        assert_eq!(p.events, vec![a, b]);
    }
}
