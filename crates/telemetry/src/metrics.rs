//! A hand-rolled metrics registry: counters, gauges, log-bucketed
//! histograms, and the fixed-width per-region load accumulator the
//! sharded engines feed it from.
//!
//! Everything here is deterministic and allocation-light: names are
//! registered in insertion order (which is how they serialize), histogram
//! buckets are powers of two, and [`RegionLoad`] is a plain `[u64; 64]`
//! so the engines' timing structs stay `Copy`.

use crate::json::{fmt_f64, json_str};

/// The fixed region fan-out of the sharded engines. Mirrors
/// `MATCH_REGIONS` / `EVENT_REGIONS` in the engine crates (asserted equal
/// there at compile time): both are deliberately constants, never a
/// function of the thread count, so per-region counters are as
/// thread-independent as the results themselves.
pub const REGIONS: usize = 64;

/// The number of non-empty regions a fixed 64-way partition of `n` nodes
/// actually produces (fewer than 64 when `n < 64`; see the resolver's
/// block-rounding rule).
pub fn regions_for(n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    n.div_ceil(n.div_ceil(REGIONS))
}

/// Per-region event/connection tallies for one run — the load-balance
/// instrument of the 64-region sharded engines. `Copy` and fixed-size on
/// purpose: it rides inside `PhaseTimings` / `SliceTimings` without
/// changing their semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionLoad {
    /// One tally per fixed region.
    pub counts: [u64; REGIONS],
}

impl Default for RegionLoad {
    fn default() -> Self {
        RegionLoad {
            counts: [0; REGIONS],
        }
    }
}

/// Min/mean/max/imbalance summary of a [`RegionLoad`] over the regions a
/// run actually had.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoadSummary {
    pub regions: usize,
    pub total: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    /// `max / mean` — 1.0 is perfect balance; large values mean one
    /// region is doing most of the work.
    pub imbalance: f64,
}

impl RegionLoad {
    /// Add `n` to region `r`'s tally.
    #[inline]
    pub fn add(&mut self, region: usize, n: u64) {
        self.counts[region] += n;
    }

    /// Sum over all regions.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Summarize the first `regions` tallies (the regions a run of its
    /// size actually populated; see [`regions_for`]).
    pub fn summary(&self, regions: usize) -> LoadSummary {
        let regions = regions.clamp(1, REGIONS);
        let used = &self.counts[..regions];
        let total: u64 = used.iter().sum();
        let mean = total as f64 / regions as f64;
        let max = *used.iter().max().expect("regions >= 1");
        LoadSummary {
            regions,
            total,
            min: *used.iter().min().expect("regions >= 1"),
            max,
            mean,
            imbalance: if total == 0 { 1.0 } else { max as f64 / mean },
        }
    }
}

/// A histogram over power-of-two buckets: bucket 0 holds zeros, bucket
/// `b >= 1` holds values in `[2^(b-1), 2^b)`. Hand-rolled, fixed
/// footprint, exact min/max/sum on the side.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-resolution quantile estimate: the inclusive upper bound of
    /// the bucket containing the `q`-quantile rank, clamped to the exact
    /// min/max. Resolution is a factor of two — what log bucketing buys.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if b == 0 { 0 } else { (1u64 << b) - 1 };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Name → value stores for one run's metrics. Names are registered in
/// insertion order and serialize in that order, so registry JSON is as
/// deterministic as everything else.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl Registry {
    /// Add `by` to counter `name`, registering it at zero on first use.
    pub fn inc(&mut self, name: &str, by: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += by,
            None => self.counters.push((name.to_string(), by)),
        }
    }

    /// Current value of counter `name`.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Set gauge `name` to `v` (last write wins).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        match self.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, g)) => *g = v,
            None => self.gauges.push((name.to_string(), v)),
        }
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Record `v` into histogram `name`, registering it on first use.
    pub fn observe(&mut self, name: &str, v: u64) {
        match self.histograms.iter_mut().find(|(n, _)| n == name) {
            Some((_, h)) => h.record(v),
            None => {
                let mut h = Histogram::default();
                h.record(v);
                self.histograms.push((name.to_string(), h));
            }
        }
    }

    /// Histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Serialize the whole registry as one JSON object, in registration
    /// order: counters as integers, gauges as floats, histograms as
    /// `{count, min, max, mean, p50, p90, p99}` summaries.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}:{v}", json_str(n)));
        }
        s.push_str("},\"gauges\":{");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}:{}", json_str(n), fmt_f64(*v)));
        }
        s.push_str("},\"histograms\":{");
        for (i, (n, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{}:{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                json_str(n),
                h.count(),
                h.min(),
                h.max(),
                fmt_f64(h.mean()),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
            ));
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_load_summary_reports_balance() {
        let mut load = RegionLoad::default();
        for r in 0..4 {
            load.add(r, 10);
        }
        load.add(0, 20);
        let s = load.summary(4);
        assert_eq!(s.regions, 4);
        assert_eq!(s.total, 60);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert!((s.mean - 15.0).abs() < 1e-9);
        assert!((s.imbalance - 2.0).abs() < 1e-9);
        // Regions beyond the used prefix do not drag min to zero.
        assert_eq!(load.summary(64).min, 0, "full-width summary sees empties");
    }

    #[test]
    fn regions_for_matches_the_block_rounding_rule() {
        assert_eq!(regions_for(0), 0);
        assert_eq!(regions_for(1), 1);
        assert_eq!(regions_for(6), 6);
        assert_eq!(regions_for(64), 64);
        assert_eq!(regions_for(1000), 63, "ceil rounding drops a region");
        assert_eq!(regions_for(1 << 20), 64);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1110.0 / 7.0).abs() < 1e-9);
        // p50 of 7 values is the 4th: value 3, bucket [2,4) → upper 3.
        assert_eq!(h.quantile(0.5), 3);
        // Top quantile clamps to the exact max.
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(Histogram::default().quantile(0.5), 0);
    }

    #[test]
    fn registry_round_trips_by_name() {
        let mut reg = Registry::default();
        reg.inc("conns", 2);
        reg.inc("conns", 3);
        reg.set_gauge("ms", 1.5);
        reg.set_gauge("ms", 2.5);
        reg.observe("load", 8);
        assert_eq!(reg.counter("conns"), Some(5));
        assert_eq!(reg.gauge("ms"), Some(2.5));
        assert_eq!(reg.histogram("load").unwrap().count(), 1);
        assert_eq!(reg.counter("missing"), None);
        let json = reg.to_json();
        assert!(json.starts_with("{\"counters\":{\"conns\":5}"));
        assert!(json.contains("\"gauges\":{\"ms\":2.5}"));
        assert!(json.contains("\"load\":{\"count\":1,"));
    }
}
