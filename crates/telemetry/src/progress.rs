//! Pool-aware progress accounting for long sweeps.
//!
//! [`PoolProgress`] is the bookkeeping half of the `grid --progress`
//! heartbeat: it tracks how many cells a run has completed, how much
//! wall-clock time those cells cost, and how much work the cell pool's
//! workers stole from each other, and renders one stderr line per
//! completed cell. Like everything in this crate it knows nothing about
//! scenarios — callers pass opaque labels and cell indices — so the
//! experiment layer can evolve without touching it.
//!
//! The ETA deliberately comes from the **running mean of completed-cell
//! wall times**, divided by the worker count, rather than from
//! `elapsed / done`: grid cells are heterogeneous (a 10⁶-node async cell
//! next to a 100-node sync one), and under a work-stealing pool the
//! elapsed wall clock conflates cells still in flight with cells done.
//! The mean-of-completed estimate is wrong early (the first completed
//! cells are biased toward the cheap ones) but converges as the sweep
//! drains, which is when an ETA matters.

/// Progress bookkeeping for a pool of workers draining a fixed set of
/// cells. Drive it from the pool's sequencer: [`cell_done`] per
/// completion, [`heartbeat`] to render the stderr line.
///
/// [`cell_done`]: PoolProgress::cell_done
/// [`heartbeat`]: PoolProgress::heartbeat
#[derive(Clone, Debug)]
pub struct PoolProgress {
    /// Total cells in the sweep (including any resumed as already done).
    total: usize,
    /// Worker threads draining the pool.
    workers: usize,
    /// Cells completed so far.
    done: usize,
    /// Cells whose work moved between workers via stealing.
    stolen: u64,
    /// Sum of completed-cell wall times, the running-mean numerator.
    completed_wall_ms: u64,
}

impl PoolProgress {
    /// Fresh bookkeeping for a `total`-cell sweep on `workers` workers.
    pub fn new(total: usize, workers: usize) -> Self {
        PoolProgress {
            total,
            workers: workers.max(1),
            done: 0,
            stolen: 0,
            completed_wall_ms: 0,
        }
    }

    /// Record one completed cell and its wall time. Resumed cells replayed
    /// from a checkpoint count here too, seeding the mean with their
    /// recorded wall times.
    pub fn cell_done(&mut self, wall_ms: u64) {
        self.done += 1;
        self.completed_wall_ms += wall_ms;
    }

    /// Update the stolen-cell count (the pool owns the authoritative
    /// atomic counter; this mirrors it for rendering).
    pub fn set_stolen(&mut self, stolen: u64) {
        self.stolen = stolen;
    }

    /// Cells completed so far.
    pub fn done(&self) -> usize {
        self.done
    }

    /// Running mean of completed-cell wall times, in milliseconds.
    /// `None` until the first cell completes.
    pub fn mean_cell_ms(&self) -> Option<f64> {
        (self.done > 0).then(|| self.completed_wall_ms as f64 / self.done as f64)
    }

    /// Estimated seconds to drain the remaining cells: running mean ×
    /// remaining ÷ workers. `None` until the first cell completes.
    pub fn eta_secs(&self) -> Option<f64> {
        let mean_ms = self.mean_cell_ms()?;
        let remaining = (self.total - self.done) as f64;
        Some(mean_ms * remaining / self.workers as f64 / 1e3)
    }

    /// Render one heartbeat line (no trailing newline): done/total, the
    /// completed cell's label, in-flight and stolen counts, elapsed and
    /// mean-based ETA, and each worker's active cell (`-` when idle).
    /// `active[w]` is worker `w`'s current cell index, if any.
    pub fn heartbeat(&self, label: &str, elapsed_secs: f64, active: &[Option<usize>]) -> String {
        let running = active.iter().filter(|slot| slot.is_some()).count();
        let mut line = format!(
            "progress: cell {}/{} done ({label}) running {running} stolen {} \
             elapsed {elapsed_secs:.1}s",
            self.done, self.total, self.stolen
        );
        match self.eta_secs() {
            Some(eta) => line.push_str(&format!(" eta {eta:.1}s")),
            None => line.push_str(" eta ?"),
        }
        if active.len() > 1 {
            line.push_str(" workers [");
            for (w, slot) in active.iter().enumerate() {
                if w > 0 {
                    line.push(' ');
                }
                match slot {
                    Some(cell) => line.push_str(&format!("#{cell}")),
                    None => line.push('-'),
                }
            }
            line.push(']');
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_uses_the_running_mean_of_completed_cells_not_elapsed() {
        let mut progress = PoolProgress::new(10, 2);
        assert_eq!(progress.eta_secs(), None, "no completed cells, no ETA");
        // Two heterogeneous cells: 1s and 9s. The mean is 5s per cell;
        // 8 cells remain over 2 workers -> 20s, regardless of how much
        // wall clock has elapsed.
        progress.cell_done(1000);
        progress.cell_done(9000);
        assert_eq!(progress.mean_cell_ms(), Some(5000.0));
        assert_eq!(progress.eta_secs(), Some(20.0));
        // The serial case divides by one worker.
        let mut serial = PoolProgress::new(10, 1);
        serial.cell_done(1000);
        serial.cell_done(9000);
        assert_eq!(serial.eta_secs(), Some(40.0));
    }

    #[test]
    fn heartbeat_renders_counts_workers_and_steals() {
        let mut progress = PoolProgress::new(4, 3);
        progress.cell_done(2000);
        progress.set_stolen(5);
        let line = progress.heartbeat("ring-advert-sync-n64-k1-s7", 2.0, &[Some(1), None, Some(3)]);
        assert!(line.starts_with("progress: cell 1/4 done (ring-advert-sync-n64-k1-s7)"));
        assert!(line.contains("running 2"), "{line}");
        assert!(line.contains("stolen 5"), "{line}");
        assert!(line.contains("elapsed 2.0s"), "{line}");
        assert!(line.contains("eta 2.0s"), "{line}");
        assert!(line.ends_with("workers [#1 - #3]"), "{line}");
        // A single-worker pool skips the per-worker tail — it would only
        // repeat the label.
        let serial = PoolProgress::new(4, 1);
        let line = serial.heartbeat("x", 0.0, &[Some(2)]);
        assert!(!line.contains("workers"), "{line}");
        assert!(line.contains("eta ?"), "{line}");
    }

    #[test]
    fn resumed_cells_seed_the_mean() {
        let mut progress = PoolProgress::new(8, 4);
        for _ in 0..4 {
            progress.cell_done(500);
        }
        assert_eq!(progress.done(), 4);
        assert_eq!(progress.eta_secs(), Some(0.5));
    }
}
