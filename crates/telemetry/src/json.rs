//! Minimal JSON: string escaping and float formatting for emission, and a
//! tolerant recursive-descent parser for the `analyze` stage's readback of
//! run lines and trace files. Hand-rolled because the workspace is
//! dependency-free by design; tolerant because `analyze` must skip
//! non-JSON lines (CSV output, blank lines) rather than abort a report.

/// Escape `s` as a JSON string literal, quotes included.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float the way the emitters do: integral values without a
/// trailing `.0` would parse back as integers, so keep Rust's shortest
/// round-trip form but pin NaN/infinity to null (JSON has no spelling for
/// them).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value. Objects preserve key order; numbers are `f64`
/// (every quantity the emitters write fits exactly).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse one JSON document. Trailing garbage after the document is an
/// error; surrounding whitespace is fine.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Value::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let start = *pos;
        while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
            *pos += 1;
        }
        out.push_str(
            std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid utf-8".to_string())?,
        );
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        *pos += 4;
                        // Surrogate pairs are not worth the code here: the
                        // emitters never write them. Map lone surrogates
                        // to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("invalid escape `\\{}`", *other as char)),
                }
            }
            Some(_) => unreachable!("scan stopped on quote or backslash"),
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number".to_string())?;
    text.parse::<f64>()
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_run_line_shape() {
        let line = r#"{"schema":1,"scenario_id":"ring-advert","completed":true,"rounds_to_completion":500,"dynamics":null,"history":[1,2.5,-3e2]}"#;
        let v = parse(line).expect("parses");
        assert_eq!(v.get("schema").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.get("scenario_id").and_then(Value::as_str),
            Some("ring-advert")
        );
        assert_eq!(v.get("completed").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("rounds_to_completion").and_then(Value::as_u64),
            Some(500)
        );
        assert_eq!(v.get("dynamics"), Some(&Value::Null));
        let Some(Value::Arr(items)) = v.get("history") else {
            panic!("history must be an array");
        };
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_f64(), Some(-300.0));
        assert_eq!(items[2].as_u64(), None, "negative is not u64");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}";
        let encoded = json_str(original);
        let decoded = parse(&encoded).expect("parses");
        assert_eq!(decoded.as_str(), Some(original));
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn fmt_f64_pins_integral_and_non_finite_forms() {
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(2.5), "2.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }
}
