//! Crash-safe grid checkpointing: one fsync'd JSONL record per completed
//! cell, replayable with `--resume`.
//!
//! A 10k-cell production sweep can run for hours; dying at cell 9,800 and
//! starting over is not acceptable. The contract here:
//!
//! - **Write path** ([`CheckpointWriter`]): after a cell completes, its
//!   record — cell index, `scenario_id`, seed, wall time, and the *exact*
//!   stdout lines the cell emitted — is appended as one JSON line in a
//!   single `write` call, then `fsync`'d before the next record. A
//!   `kill -9` therefore loses at most the record being written, never a
//!   previously acknowledged one.
//! - **Read path** ([`read_checkpoint`]): records are parsed strictly. The
//!   one tolerated defect is a *torn tail* — a final line without its
//!   trailing newline that does not parse, exactly what a crash mid-write
//!   leaves behind — which is dropped with a flag the caller turns into a
//!   warning. Any other malformed or truncated line is a hard error: a
//!   checkpoint that lies about completed work would silently corrupt the
//!   resumed sweep.
//! - **Verification** ([`verify_against`]): before any cell is skipped,
//!   every record is checked against the expanded grid — index in range,
//!   `scenario_id` and seed matching that cell, one line per sweep seed,
//!   no duplicates — so resuming with the wrong spec file (or a stale
//!   checkpoint) fails loudly instead of splicing mismatched results.
//!
//! Because records carry the cell's rendered output lines, `--resume`
//! replays completed cells byte-for-byte: the resumed run's stdout is
//! identical to an uninterrupted run's, which is the property CI enforces.

use crate::spec::Scenario;
use gossip_telemetry::json::{self, Value};

use std::fs::{File, OpenOptions};
use std::io::{self, Write};

/// Version of the checkpoint record format. Bump when fields are added,
/// removed, or renamed.
pub const CHECKPOINT_SCHEMA_VERSION: u64 = 1;

/// One completed grid cell, as appended to (and replayed from) a
/// checkpoint file.
#[derive(Clone, Debug, PartialEq)]
pub struct CellRecord {
    /// Row-major index of the cell in the expanded grid.
    pub cell: usize,
    /// The cell's [`Scenario::scenario_id`] (at its base seed) — the
    /// identity `--resume` verifies before trusting the record.
    pub scenario_id: String,
    /// The cell's base seed (its sweep runs seeds `seed..seed+seeds`).
    pub seed: u64,
    /// Wall-clock cost of the cell, seeding the resumed run's ETA mean.
    pub wall_ms: u64,
    /// The exact stdout lines the cell emitted, in seed order (CSV header
    /// excluded — the emitter owns that).
    pub lines: Vec<String>,
}

impl CellRecord {
    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out =
            String::with_capacity(128 + self.lines.iter().map(String::len).sum::<usize>());
        out.push_str(&format!(
            "{{\"checkpoint\":{CHECKPOINT_SCHEMA_VERSION},\"cell\":{},\"scenario_id\":{},\
             \"seed\":{},\"wall_ms\":{},\"lines\":[",
            self.cell,
            json::json_str(&self.scenario_id),
            self.seed,
            self.wall_ms,
        ));
        for (i, line) in self.lines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::json_str(line));
        }
        out.push_str("]}");
        out
    }

    /// Parse one checkpoint line. Strict: every field must be present and
    /// well-typed, and the schema version must be one this build knows.
    pub fn parse(line: &str) -> Result<CellRecord, String> {
        let value = json::parse(line).map_err(|e| format!("not a JSON record: {e}"))?;
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| format!("missing field '{key}'"))
        };
        let schema = field("checkpoint")?
            .as_u64()
            .ok_or("field 'checkpoint' is not an integer")?;
        if schema != CHECKPOINT_SCHEMA_VERSION {
            return Err(format!(
                "checkpoint schema {schema} is not the supported version \
                 {CHECKPOINT_SCHEMA_VERSION}"
            ));
        }
        let cell = field("cell")?
            .as_u64()
            .ok_or("field 'cell' is not an integer")? as usize;
        let scenario_id = field("scenario_id")?
            .as_str()
            .ok_or("field 'scenario_id' is not a string")?
            .to_string();
        let seed = field("seed")?
            .as_u64()
            .ok_or("field 'seed' is not an integer")?;
        let wall_ms = field("wall_ms")?
            .as_u64()
            .ok_or("field 'wall_ms' is not an integer")?;
        let Some(Value::Arr(raw_lines)) = value.get("lines") else {
            return Err("field 'lines' is missing or not an array".to_string());
        };
        let mut lines = Vec::with_capacity(raw_lines.len());
        for raw in raw_lines {
            lines.push(
                raw.as_str()
                    .ok_or("field 'lines' holds a non-string entry")?
                    .to_string(),
            );
        }
        Ok(CellRecord {
            cell,
            scenario_id,
            seed,
            wall_ms,
            lines,
        })
    }
}

/// Append-only checkpoint file handle. Every [`record`](Self::record) is
/// one `write` call followed by `fsync`, so acknowledged records survive
/// `kill -9` and power loss.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: File,
    path: String,
}

impl CheckpointWriter {
    /// Start a fresh checkpoint. Refuses to overwrite an existing file —
    /// a stale checkpoint is either resumable (`--resume`) or the user's
    /// to delete; silently clobbering one would destroy completed work.
    pub fn create(path: &str) -> io::Result<CheckpointWriter> {
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| match e.kind() {
                io::ErrorKind::AlreadyExists => io::Error::new(
                    e.kind(),
                    format!(
                        "checkpoint file '{path}' already exists; \
                         pass --resume to continue it or remove it to start over"
                    ),
                ),
                _ => io::Error::new(e.kind(), format!("--checkpoint {path}: {e}")),
            })?;
        Ok(CheckpointWriter {
            file,
            path: path.to_string(),
        })
    }

    /// Reopen an existing checkpoint for appending (the `--resume` path).
    pub fn append(path: &str) -> io::Result<CheckpointWriter> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io::Error::new(e.kind(), format!("--checkpoint {path}: {e}")))?;
        Ok(CheckpointWriter {
            file,
            path: path.to_string(),
        })
    }

    /// Durably append one record: a single `write` of the full line, then
    /// `fsync` before returning.
    pub fn record(&mut self, record: &CellRecord) -> io::Result<()> {
        let mut line = record.to_json();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io::Error::new(e.kind(), format!("--checkpoint {}: {e}", self.path)))
    }
}

/// A read-back checkpoint file: the records, plus whether a torn tail (a
/// crash's final partial line) was dropped.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    pub records: Vec<CellRecord>,
    /// True when the file ended in an unparseable line with no trailing
    /// newline — the footprint of a record interrupted mid-write. The
    /// caller should surface a warning; the torn record's cell simply
    /// re-runs.
    pub torn_tail: bool,
}

/// Read and strictly parse a checkpoint file. See the module docs for the
/// torn-tail exception; every other malformed line is an error naming the
/// line number.
pub fn read_checkpoint(path: &str) -> io::Result<Checkpoint> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| io::Error::new(e.kind(), format!("--resume: cannot read '{path}': {e}")))?;
    parse_checkpoint(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("--resume: checkpoint '{path}' is corrupt: {e}"),
        )
    })
}

/// [`read_checkpoint`] on in-memory text (the testable core).
pub fn parse_checkpoint(text: &str) -> Result<Checkpoint, String> {
    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut chunks = text.split_inclusive('\n').enumerate().peekable();
    while let Some((idx, chunk)) = chunks.next() {
        let terminated = chunk.ends_with('\n');
        let line = chunk.trim_end_matches(['\n', '\r']);
        if line.is_empty() {
            continue;
        }
        match CellRecord::parse(line) {
            Ok(record) => records.push(record),
            Err(e) if !terminated && chunks.peek().is_none() => {
                // The one forgivable defect: a torn final line, i.e. a
                // crash caught mid-write. Everything durable precedes it.
                let _ = e;
                torn_tail = true;
            }
            Err(e) => return Err(format!("line {}: {e}", idx + 1)),
        }
    }
    Ok(Checkpoint { records, torn_tail })
}

/// Verify records against the expanded grid and slot them by cell index.
/// Returns one `Option<CellRecord>` per grid cell (`Some` = completed,
/// skip and replay), or a message naming the first mismatch — wrong grid,
/// stale spec, duplicate record, wrong sweep width.
pub fn verify_against(
    records: Vec<CellRecord>,
    scenarios: &[Scenario],
) -> Result<Vec<Option<CellRecord>>, String> {
    let mut slots: Vec<Option<CellRecord>> = vec![None; scenarios.len()];
    for record in records {
        let Some(scenario) = scenarios.get(record.cell) else {
            return Err(format!(
                "record for cell {} but the grid only expands to {} cells \
                 (was the spec changed since the checkpoint was written?)",
                record.cell,
                scenarios.len()
            ));
        };
        let expected = scenario.scenario_id();
        if record.scenario_id != expected {
            return Err(format!(
                "cell {}: checkpoint says '{}' but the grid expands to '{expected}' \
                 (was the spec changed since the checkpoint was written?)",
                record.cell, record.scenario_id
            ));
        }
        if record.seed != scenario.seed {
            return Err(format!(
                "cell {}: checkpoint seed {} does not match the grid's {}",
                record.cell, record.seed, scenario.seed
            ));
        }
        if record.lines.len() != scenario.seeds {
            return Err(format!(
                "cell {}: checkpoint holds {} output line(s) but the cell sweeps {} seed(s)",
                record.cell,
                record.lines.len(),
                scenario.seeds
            ));
        }
        let cell = record.cell;
        if slots[cell].is_some() {
            return Err(format!(
                "cell {cell} is recorded twice — refusing to guess which record to trust"
            ));
        }
        slots[cell] = Some(record);
    }
    Ok(slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioBuilder;
    use crate::Grid;

    fn sample_record(cell: usize) -> CellRecord {
        CellRecord {
            cell,
            scenario_id: format!("ring-uniform-sync-n48-k1-s{}", 7 + cell),
            seed: 7 + cell as u64,
            wall_ms: 12,
            lines: vec![format!("{{\"fake\":\"line for cell {cell}\"}}")],
        }
    }

    #[test]
    fn records_round_trip_through_json() {
        let record = CellRecord {
            cell: 3,
            scenario_id: "ring-advert-sync-n64-k1-s7".to_string(),
            seed: 7,
            wall_ms: 1234,
            lines: vec![
                "{\"schema\":1,\"x\":1}".to_string(),
                "{\"schema\":1,\"quote\\\"\":2}".to_string(),
            ],
        };
        let line = record.to_json();
        assert!(!line.contains('\n'), "records must be line-oriented");
        assert_eq!(CellRecord::parse(&line).unwrap(), record);
    }

    #[test]
    fn parse_rejects_malformed_records() {
        assert!(CellRecord::parse("not json").is_err());
        assert!(CellRecord::parse("{\"cell\":1}").is_err(), "missing fields");
        let good = sample_record(0).to_json();
        // Truncation anywhere inside the line breaks the JSON.
        assert!(CellRecord::parse(&good[..good.len() / 2]).is_err());
        // A wrong schema version is rejected even if well-formed.
        let wrong = good.replace("\"checkpoint\":1", "\"checkpoint\":99");
        assert!(CellRecord::parse(&wrong).unwrap_err().contains("schema"));
    }

    #[test]
    fn torn_tail_is_dropped_everything_else_is_fatal() {
        let a = sample_record(0).to_json();
        let b = sample_record(1).to_json();

        // A final line cut mid-record (no trailing newline): the crash
        // footprint. Dropped, flagged.
        let torn = format!("{a}\n{}", &b[..b.len() / 2]);
        let checkpoint = parse_checkpoint(&torn).unwrap();
        assert_eq!(checkpoint.records, vec![sample_record(0)]);
        assert!(checkpoint.torn_tail);

        // The same truncation with a trailing newline is a corrupt file,
        // not a crash footprint.
        let truncated_mid = format!("{}\n{b}\n", &a[..a.len() / 2]);
        let err = parse_checkpoint(&truncated_mid).unwrap_err();
        assert!(err.contains("line 1"), "{err}");

        // Garbage in the middle is fatal and names its line.
        let garbage = format!("{a}\nxyzzy\n{b}\n");
        let err = parse_checkpoint(&garbage).unwrap_err();
        assert!(err.contains("line 2"), "{err}");

        // A clean file parses fully; a last line merely missing its
        // newline but parsing fine is accepted, not treated as torn.
        let clean = format!("{a}\n{b}");
        let checkpoint = parse_checkpoint(&clean).unwrap();
        assert_eq!(checkpoint.records.len(), 2);
        assert!(!checkpoint.torn_tail);

        // Empty file: nothing done yet, nothing wrong.
        let empty = parse_checkpoint("").unwrap();
        assert!(empty.records.is_empty() && !empty.torn_tail);
    }

    #[test]
    fn verification_catches_grid_mismatches() {
        let mut base = ScenarioBuilder::new();
        base.set("nodes", "48").set("seed", "7");
        let cells = Grid::new(base)
            .axis("seed", ["7", "8", "9"])
            .expand()
            .unwrap();

        let good = CellRecord {
            cell: 1,
            scenario_id: cells[1].scenario_id(),
            seed: 8,
            wall_ms: 1,
            lines: vec!["line".to_string()],
        };
        let slots = verify_against(vec![good.clone()], &cells).unwrap();
        assert_eq!(slots.len(), 3);
        assert!(slots[0].is_none() && slots[2].is_none());
        assert_eq!(slots[1], Some(good.clone()));

        // Out-of-range cell index.
        let mut bad = good.clone();
        bad.cell = 9;
        assert!(verify_against(vec![bad], &cells)
            .unwrap_err()
            .contains("only expands to 3"));

        // Identity mismatch (stale spec).
        let mut bad = good.clone();
        bad.scenario_id = "grid-advert-sync-n48-k1-s8".to_string();
        assert!(verify_against(vec![bad], &cells)
            .unwrap_err()
            .contains("spec changed"));

        // Seed mismatch.
        let mut bad = good.clone();
        bad.seed = 77;
        assert!(verify_against(vec![bad], &cells)
            .unwrap_err()
            .contains("seed"));

        // Wrong sweep width.
        let mut bad = good.clone();
        bad.lines.push("extra".to_string());
        assert!(verify_against(vec![bad], &cells)
            .unwrap_err()
            .contains("2 output line(s)"));

        // Duplicate records.
        assert!(verify_against(vec![good.clone(), good], &cells)
            .unwrap_err()
            .contains("twice"));
    }
}
