//! Parameter grids: named axes expanded into [`Scenario`] cells.
//!
//! A [`Grid`] is a base [`ScenarioBuilder`] plus an ordered list of
//! [`Axis`]s, each a `key = v1, v2, …` list over the shared assignment
//! vocabulary ([`crate::ASSIGNMENTS`]). [`Grid::expand`] produces the
//! cross product as fully validated scenarios in a **documented
//! deterministic order**: axes nest in declaration order with the *last*
//! axis varying fastest (row-major odometer), and within each cell the
//! seed sweep (`seeds`) runs innermost. So a spec with
//!
//! ```text
//! [axis]
//! topology = ring, rgg
//! protocol = uniform, advert
//! ```
//!
//! expands to `ring/uniform`, `ring/advert`, `rgg/uniform`, `rgg/advert`
//! — the same order a nest of `for` loops over the axes top-to-bottom
//! would visit, which is what makes grid output diffable against scripted
//! standalone runs.
//!
//! Every cell is stamped with a stable [`Scenario::scenario_id`], and each
//! cell's [`SimResult`](gossip_sim::SimResult) is byte-identical to the
//! same scenario run standalone: expansion only *assigns fields*; the
//! execution path is [`Scenario::run`] either way. A grid-wide test and a
//! CI smoke job enforce that equivalence.

use crate::spec::{assignment, Scenario, ScenarioBuilder, SpecError};

/// One named axis: a key from the shared assignment vocabulary and the
/// values it sweeps over (as spec-format strings, exactly what `key =
/// v1, v2` carries in a spec file or `--axis key=v1,v2` on the CLI).
#[derive(Clone, Debug, PartialEq)]
pub struct Axis {
    pub key: String,
    pub values: Vec<String>,
}

/// Expansion failure: which cell (as its `key=value` assignments), if the
/// problem is cell-specific, and the structured errors.
#[derive(Clone, Debug, PartialEq)]
pub struct GridExpandError {
    /// `key=value` assignments of the failing cell; `None` for grid-level
    /// problems (bad axis keys, empty value lists, base-scenario errors).
    pub cell: Option<String>,
    pub errors: Vec<SpecError>,
}

impl std::fmt::Display for GridExpandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let joined = crate::spec::join_errors(&self.errors);
        match &self.cell {
            Some(cell) => write!(f, "grid cell [{cell}]: {joined}"),
            None => write!(f, "{joined}"),
        }
    }
}

impl std::error::Error for GridExpandError {}

/// A parameter grid: base scenario assignments plus sweep axes. Expansion
/// order is documented on the [module](crate::grid).
#[derive(Clone, Debug)]
pub struct Grid {
    /// Assignments shared by every cell. Axis assignments override base
    /// assignments for the same key.
    pub base: ScenarioBuilder,
    axes: Vec<Axis>,
}

impl Grid {
    /// A grid over `base`, with no axes yet (a one-cell grid: just the
    /// base scenario).
    pub fn new(base: ScenarioBuilder) -> Self {
        Grid {
            base,
            axes: Vec::new(),
        }
    }

    /// Append an axis. Declaration order is expansion order (last axis
    /// fastest). Key and value validation happens in
    /// [`expand`](Self::expand), so axes accumulate freely like builder
    /// assignments do.
    pub fn axis<S: Into<String>>(
        mut self,
        key: impl Into<String>,
        values: impl IntoIterator<Item = S>,
    ) -> Self {
        self.push_axis(Axis {
            key: key.into(),
            values: values.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// [`axis`](Self::axis) by mutable reference.
    pub fn push_axis(&mut self, axis: Axis) {
        self.axes.push(axis);
    }

    /// The declared axes, in expansion order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Number of cells the grid expands to (product of axis lengths; 1
    /// with no axes).
    pub fn cells(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Expand the cross product into validated scenarios, in the
    /// documented order. Fails on the first invalid axis (unknown or
    /// non-axis key, empty or duplicate axis) or invalid cell, carrying
    /// the cell's assignments so the user can see exactly which
    /// combination broke.
    pub fn expand(&self) -> Result<Vec<Scenario>, GridExpandError> {
        let mut grid_errors = Vec::new();
        for (i, axis) in self.axes.iter().enumerate() {
            match assignment(&axis.key) {
                None => grid_errors.push(SpecError::UnknownKey {
                    key: axis.key.clone(),
                }),
                Some(def) if !def.run || !def.axis => grid_errors.push(SpecError::Conflict {
                    reason: format!("'{}' cannot be a grid axis", axis.key),
                }),
                Some(_) => {}
            }
            if axis.values.is_empty() {
                grid_errors.push(SpecError::Conflict {
                    reason: format!("axis '{}' has no values", axis.key),
                });
            }
            if self.axes[..i].iter().any(|prev| prev.key == axis.key) {
                grid_errors.push(SpecError::Conflict {
                    reason: format!("axis '{}' is declared twice", axis.key),
                });
            }
        }
        // Assignment errors already sitting in the base apply to every
        // cell; report them once at grid level rather than blaming the
        // first cell. (Cross-field conflicts can depend on axis values,
        // so those still surface per-cell below.)
        grid_errors.extend_from_slice(self.base.errors());
        if !grid_errors.is_empty() {
            return Err(GridExpandError {
                cell: None,
                errors: grid_errors,
            });
        }

        let total = self.cells();
        let mut scenarios = Vec::with_capacity(total);
        for cell in 0..total {
            // Row-major odometer: the last axis has stride 1.
            let mut stride = total;
            let mut builder = self.base.clone();
            let mut cell_desc = Vec::with_capacity(self.axes.len());
            for axis in &self.axes {
                stride /= axis.values.len();
                let value = &axis.values[(cell / stride) % axis.values.len()];
                builder.set(&axis.key, value);
                cell_desc.push(format!("{}={}", axis.key, value));
            }
            match builder.finish() {
                Ok(scenario) => scenarios.push(scenario),
                Err(errors) => {
                    return Err(GridExpandError {
                        cell: (!cell_desc.is_empty()).then(|| cell_desc.join(", ")),
                        errors,
                    })
                }
            }
        }
        Ok(scenarios)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_row_major_with_the_last_axis_fastest() {
        let grid = Grid::new(ScenarioBuilder::new())
            .axis("topology", ["ring", "line"])
            .axis("protocol", ["uniform", "advert"]);
        assert_eq!(grid.cells(), 4);
        let cells = grid.expand().unwrap();
        let order: Vec<(&str, &str)> = cells
            .iter()
            .map(|s| (s.topology.name(), s.protocol.name()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("ring", "uniform"),
                ("ring", "advert"),
                ("line", "uniform"),
                ("line", "advert"),
            ]
        );
    }

    #[test]
    fn axis_values_override_base_assignments() {
        let mut base = ScenarioBuilder::new();
        base.set("topology", "complete").set("nodes", "24");
        let cells = Grid::new(base)
            .axis("topology", ["ring", "grid"])
            .expand()
            .unwrap();
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|s| s.nodes == 24));
        assert_eq!(cells[0].topology.name(), "ring");
        assert_eq!(cells[1].topology.name(), "grid");
    }

    #[test]
    fn an_axisless_grid_is_one_cell() {
        let cells = Grid::new(ScenarioBuilder::new()).expand().unwrap();
        assert_eq!(cells, vec![Scenario::default()]);
    }

    #[test]
    fn bad_axes_are_rejected_at_grid_level() {
        let err = Grid::new(ScenarioBuilder::new())
            .axis("frobnicate", ["1"])
            .expand()
            .unwrap_err();
        assert_eq!(err.cell, None);
        assert!(err.to_string().contains("frobnicate"), "{err}");

        let err = Grid::new(ScenarioBuilder::new())
            .axis("format", ["json", "csv"])
            .expand()
            .unwrap_err();
        assert!(err.to_string().contains("cannot be a grid axis"), "{err}");

        let err = Grid::new(ScenarioBuilder::new())
            .axis("topology", Vec::<String>::new())
            .expand()
            .unwrap_err();
        assert!(err.to_string().contains("no values"), "{err}");

        let err = Grid::new(ScenarioBuilder::new())
            .axis("seed", ["1"])
            .axis("seed", ["2"])
            .expand()
            .unwrap_err();
        assert!(err.to_string().contains("declared twice"), "{err}");
    }

    #[test]
    fn bad_base_assignments_are_grid_level_not_first_cell() {
        let mut base = ScenarioBuilder::new();
        base.set("nodes", "many");
        let err = Grid::new(base)
            .axis("topology", ["ring", "grid"])
            .expand()
            .unwrap_err();
        assert_eq!(err.cell, None, "base errors apply to every cell");
        assert!(err.to_string().contains("'many'"), "{err}");
    }

    #[test]
    fn bad_cells_report_their_assignments() {
        let err = Grid::new(ScenarioBuilder::new())
            .axis("topology", ["ring", "rgg"])
            .axis("radius", ["0.3"])
            .expand()
            .unwrap_err();
        // radius=0.3 over topology=ring is the invalid combination.
        assert_eq!(err.cell.as_deref(), Some("topology=ring, radius=0.3"));
        assert!(err.to_string().contains("requires topology rgg"), "{err}");
    }

    #[test]
    fn every_cell_gets_a_distinct_scenario_id() {
        let cells = Grid::new(ScenarioBuilder::new())
            .axis("topology", ["ring", "grid"])
            .axis("scheduler", ["sync", "async"])
            .axis("seed", ["1", "2", "3"])
            .expand()
            .unwrap();
        let ids: std::collections::HashSet<String> =
            cells.iter().map(|s| s.scenario_id()).collect();
        assert_eq!(ids.len(), cells.len(), "ids must be unique per cell");
    }
}
