//! The `soak` regression harness: re-run committed bench baselines and
//! fail when throughput regresses.
//!
//! The repo pins engine throughput in `BENCH_*.json` trajectory files —
//! one JSON line per captured bench run. Those numbers rot silently: a
//! perf regression that slips into the round loop shows up in nobody's
//! unit test. `soak` closes the loop deterministically on the *scenario*
//! side (what runs is reconstructed exactly from the baseline line; a
//! self-check compares scenario ids) and statistically on the *timing*
//! side (N iterations, mean/min/stddev, a relative tolerance absorbing
//! machine noise).
//!
//! The metric compared is the one the baseline's engine family headlines:
//! `events_per_sec` for the sliced async event loop, `node_events_per_sec`
//! for the sync round loop. A baseline regresses when the **mean** of the
//! re-measured samples falls below `baseline × (1 − tolerance)` — the mean
//! rather than the min, so one descheduled iteration does not fail CI, and
//! the min is still reported for eyeballing variance.

use crate::bench::{run_bench, BenchScenario, EnginePhases};
use crate::spec::{join_errors, Scenario, ScenarioBuilder};
use gossip_telemetry::json::{self, fmt_f64};

/// Version of the emitted soak line format.
pub const SOAK_SCHEMA_VERSION: u64 = 1;

/// One baseline to re-measure: the reconstructed bench invocation, the
/// identity it must reproduce, and the recorded throughput to compare
/// against.
#[derive(Clone, Debug, PartialEq)]
pub struct Baseline {
    pub bench: BenchScenario,
    /// The `scenario_id` stamped on the baseline line (and re-derived from
    /// the reconstruction as a self-check).
    pub scenario_id: String,
    /// Which throughput field this baseline pins.
    pub metric: &'static str,
    /// The recorded value of that field.
    pub value: f64,
}

/// Knobs of one soak invocation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SoakConfig {
    /// Re-measurement iterations per baseline.
    pub iterations: usize,
    /// Relative slack: regressed iff `mean < baseline × (1 − tolerance)`.
    pub tolerance: f64,
}

/// What re-measuring one baseline found.
#[derive(Clone, Debug, PartialEq)]
pub struct SoakOutcome {
    pub scenario_id: String,
    pub metric: &'static str,
    /// The committed value.
    pub baseline: f64,
    /// Mean / min / stddev of the re-measured samples.
    pub mean: f64,
    pub min: f64,
    pub stddev: f64,
    /// Did the mean fall below the tolerated floor?
    pub regressed: bool,
}

/// Reduce re-measured samples against a baseline. Pure, so the regression
/// rule is unit-testable without timing anything.
pub fn summarize(
    scenario_id: &str,
    metric: &'static str,
    baseline: f64,
    samples: &[f64],
    tolerance: f64,
) -> SoakOutcome {
    assert!(!samples.is_empty(), "a soak measures at least one sample");
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let variance = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
    SoakOutcome {
        scenario_id: scenario_id.to_string(),
        metric,
        baseline,
        mean,
        min,
        stddev: variance.sqrt(),
        regressed: mean < baseline * (1.0 - tolerance),
    }
}

/// Serialize one soak outcome as a JSON line (no trailing newline).
pub fn soak_line_json(outcome: &SoakOutcome, config: &SoakConfig) -> String {
    format!(
        "{{\"soak\":{SOAK_SCHEMA_VERSION},\"scenario_id\":{},\"metric\":{},\
         \"baseline\":{},\"mean\":{},\"min\":{},\"stddev\":{},\
         \"iterations\":{},\"tolerance\":{},\"regressed\":{}}}",
        json::json_str(&outcome.scenario_id),
        json::json_str(outcome.metric),
        fmt_f64(outcome.baseline),
        fmt_f64(outcome.mean),
        fmt_f64(outcome.min),
        fmt_f64(outcome.stddev),
        config.iterations,
        fmt_f64(config.tolerance),
        outcome.regressed,
    )
}

/// Re-measure one baseline: `iterations` fresh bench runs, reduced by
/// [`summarize`].
pub fn soak_one(baseline: &Baseline, config: &SoakConfig) -> SoakOutcome {
    let samples: Vec<f64> = (0..config.iterations.max(1))
        .map(|_| {
            let report = run_bench(&baseline.bench);
            match &report.phases {
                EnginePhases::Async(s) => s.events_per_sec,
                EnginePhases::Sync(_) => report.node_events_per_sec,
            }
        })
        .collect();
    summarize(
        &baseline.scenario_id,
        baseline.metric,
        baseline.value,
        &samples,
        config.tolerance,
    )
}

/// Parse the async timing segment of a scenario id —
/// `async@d{drift}j{jitter}l{min}:{max}` — back into its four numbers.
fn parse_async_timing(id: &str) -> Option<(f64, f64, u64, u64)> {
    let rest = &id[id.find("-async@d")? + "-async@d".len()..];
    let (drift, rest) = rest.split_once('j')?;
    let (jitter, rest) = rest.split_once('l')?;
    let (min, rest) = rest.split_once(':')?;
    let max = rest.split('-').next()?;
    Some((
        drift.parse().ok()?,
        jitter.parse().ok()?,
        min.parse().ok()?,
        max.parse().ok()?,
    ))
}

/// Reconstruct the bench invocation a baseline line describes. The
/// builder is fed from the line's structured fields (topology, nodes,
/// protocol, messages, seed, threads, round budget) plus the async timing
/// parsed back out of the `scenario_id`; the reconstruction is then
/// verified by re-deriving the id — any field the line does not carry
/// (an rgg radius, dynamics) surfaces as a loud mismatch instead of a
/// silently different benchmark.
pub fn parse_baseline_line(line: &str) -> Result<Baseline, String> {
    let value = json::parse(line).map_err(|e| format!("not a JSON bench line: {e}"))?;
    let field = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| format!("missing field '{key}'"))
    };
    let str_field = |key: &str| -> Result<&str, String> {
        field(key)?
            .as_str()
            .ok_or_else(|| format!("field '{key}' is not a string"))
    };
    let num_field = |key: &str| -> Result<u64, String> {
        field(key)?
            .as_u64()
            .ok_or_else(|| format!("field '{key}' is not an integer"))
    };

    let scenario_id = str_field("scenario_id")?.to_string();
    let bench_kind = str_field("bench")?;
    let metric = match bench_kind {
        "async_event_loop" => "events_per_sec",
        "sync_round_loop" => "node_events_per_sec",
        other => return Err(format!("unknown bench kind '{other}'")),
    };
    let value_recorded = field(metric)?
        .as_f64()
        .ok_or_else(|| format!("field '{metric}' is not a number"))?;

    let mut builder = ScenarioBuilder::new();
    builder
        .set("topology", str_field("topology")?)
        .set("nodes", &num_field("nodes")?.to_string())
        .set("protocol", str_field("protocol")?)
        .set("messages", &num_field("messages")?.to_string())
        .set("seed", &num_field("seed")?.to_string())
        .set("threads", &num_field("threads")?.to_string());
    if let Some(rest) = scenario_id.strip_prefix("rgg@r") {
        let radius = rest.split('-').next().unwrap_or_default();
        builder.set("radius", radius);
    }
    if bench_kind == "async_event_loop" {
        let (drift, jitter, min, max) = parse_async_timing(&scenario_id).ok_or_else(|| {
            format!("cannot parse async timing out of scenario_id '{scenario_id}'")
        })?;
        builder
            .set("scheduler", "async")
            .set("drift", &drift.to_string())
            .set("refresh-jitter", &jitter.to_string())
            .set("min-latency", &min.to_string())
            .set("max-latency", &max.to_string());
    }
    let scenario: Scenario = builder.finish().map_err(|e| join_errors(&e))?;

    // The self-check: a reconstruction that does not re-derive the
    // recorded id is benchmarking something else.
    let derived = scenario.scenario_id();
    if derived != scenario_id {
        return Err(format!(
            "cannot reconstruct this baseline: its scenario_id is '{scenario_id}' \
             but the line's fields rebuild '{derived}' \
             (dynamics and capped scenarios are not soak-able)"
        ));
    }

    Ok(Baseline {
        bench: BenchScenario {
            scenario,
            rounds: num_field("round_budget")? as usize,
        },
        scenario_id,
        metric,
        value: value_recorded,
    })
}

/// Parse a `BENCH_*.json` trajectory file into soak-able baselines, plus
/// warnings for duplicate scenario ids (the **last** line wins — a
/// trajectory file appends newest-last, and the newest capture reflects
/// the current code). Blank lines are skipped; anything else malformed is
/// an error naming its line.
pub fn parse_baselines(text: &str) -> Result<(Vec<Baseline>, Vec<String>), String> {
    let mut baselines: Vec<Baseline> = Vec::new();
    let mut warnings = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let baseline = parse_baseline_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        if let Some(existing) = baselines
            .iter_mut()
            .find(|b| b.scenario_id == baseline.scenario_id)
        {
            warnings.push(format!(
                "duplicate baseline for '{}' (line {}); keeping the newest",
                baseline.scenario_id,
                idx + 1
            ));
            *existing = baseline;
        } else {
            baselines.push(baseline);
        }
    }
    Ok((baselines, warnings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::bench_to_json;
    use crate::spec::{ProtocolSpec, SchedulerSpec};

    #[test]
    fn summarize_applies_the_tolerance_to_the_mean() {
        let ok = summarize("id", "events_per_sec", 100.0, &[95.0, 85.0], 0.2);
        assert_eq!(ok.mean, 90.0);
        assert_eq!(ok.min, 85.0);
        assert_eq!(ok.stddev, 5.0);
        assert!(!ok.regressed, "mean 90 >= floor 80");

        let bad = summarize("id", "events_per_sec", 100.0, &[79.0, 79.0], 0.2);
        assert!(bad.regressed, "mean 79 < floor 80");

        // Zero tolerance is an exact floor.
        assert!(summarize("id", "m", 100.0, &[99.9], 0.0).regressed);
        assert!(!summarize("id", "m", 100.0, &[100.0], 0.0).regressed);
    }

    #[test]
    fn soak_lines_carry_the_verdict() {
        let outcome = summarize(
            "ring-uniform-sync-n8-k1-s1",
            "node_events_per_sec",
            10.0,
            &[9.0],
            0.05,
        );
        let line = soak_line_json(
            &outcome,
            &SoakConfig {
                iterations: 1,
                tolerance: 0.05,
            },
        );
        assert!(line.starts_with("{\"soak\":1,\"scenario_id\":\"ring-uniform-sync-n8-k1-s1\""));
        assert!(
            line.contains("\"metric\":\"node_events_per_sec\""),
            "{line}"
        );
        assert!(line.contains("\"baseline\":10"), "{line}");
        assert!(line.contains("\"regressed\":true"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn baselines_round_trip_through_real_bench_lines() {
        // Capture a real (tiny) bench line for each engine family and
        // reconstruct it; the reconstruction must rebuild the same
        // scenario, not merely parse.
        let sync = BenchScenario {
            scenario: Scenario::builder()
                .nodes(64)
                .protocol(ProtocolSpec::Advert)
                .seed(7)
                .finish()
                .unwrap(),
            rounds: 8,
        };
        let line = bench_to_json(&run_bench(&sync));
        let baseline = parse_baseline_line(&line).unwrap();
        assert_eq!(baseline.bench, sync);
        assert_eq!(baseline.metric, "node_events_per_sec");
        assert!(baseline.value > 0.0);

        let timing = gossip_core::TimingConfig {
            drift: 0.1,
            refresh_jitter: 0.25,
            min_latency: 32,
            max_latency: 256,
        };
        let async_bench = BenchScenario {
            scenario: Scenario::builder()
                .nodes(64)
                .async_scheduler(timing)
                .seed(7)
                .finish()
                .unwrap(),
            rounds: 8,
        };
        let line = bench_to_json(&run_bench(&async_bench));
        let baseline = parse_baseline_line(&line).unwrap();
        assert_eq!(baseline.bench, async_bench);
        assert_eq!(baseline.metric, "events_per_sec");
        let SchedulerSpec::Async { timing: t, .. } = baseline.bench.scenario.scheduler else {
            panic!("async baseline must reconstruct an async scheduler");
        };
        assert_eq!(t, timing);
    }

    #[test]
    fn duplicate_scenario_ids_warn_and_keep_the_newest() {
        let bench = BenchScenario {
            scenario: Scenario::builder().nodes(32).seed(3).finish().unwrap(),
            rounds: 4,
        };
        let line = bench_to_json(&run_bench(&bench));
        // The same id twice with different recorded values: last wins.
        let newer = {
            // Rewrite the recorded metric so the two lines differ.
            let report = run_bench(&bench);
            let mut outcome = bench_to_json(&report);
            let needle = "\"node_events_per_sec\":";
            let at = outcome.find(needle).unwrap() + needle.len();
            let end = outcome[at..].find([',', '}']).unwrap() + at;
            outcome.replace_range(at..end, "123456.0");
            outcome
        };
        let text = format!("{line}\n{newer}\n");
        let (baselines, warnings) = parse_baselines(&text).unwrap();
        assert_eq!(baselines.len(), 1);
        assert_eq!(warnings.len(), 1);
        assert!(
            warnings[0].contains("duplicate baseline"),
            "{}",
            warnings[0]
        );
        assert_eq!(baselines[0].value, 123456.0);
    }

    #[test]
    fn malformed_baselines_name_their_line() {
        let err = parse_baselines("\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        // A bench line whose fields cannot rebuild its id is refused.
        let bench = BenchScenario {
            scenario: Scenario::builder().nodes(32).seed(3).finish().unwrap(),
            rounds: 4,
        };
        let line = bench_to_json(&run_bench(&bench));
        let lying = line.replace("-s3", "-s4");
        let err = parse_baseline_line(&lying).unwrap_err();
        assert!(err.contains("cannot reconstruct"), "{err}");
    }

    #[test]
    fn soak_one_measures_and_compares() {
        let bench = BenchScenario {
            scenario: Scenario::builder().nodes(64).seed(1).finish().unwrap(),
            rounds: 4,
        };
        let baseline = Baseline {
            bench,
            scenario_id: "ring-uniform-sync-n64-k1-s1".to_string(),
            metric: "node_events_per_sec",
            value: 1.0, // any real machine beats 1 node-event/sec
        };
        let outcome = soak_one(
            &baseline,
            &SoakConfig {
                iterations: 2,
                tolerance: 0.5,
            },
        );
        assert!(!outcome.regressed, "mean {} vs floor 0.5", outcome.mean);
        assert!(outcome.min <= outcome.mean);
        assert!(outcome.stddev >= 0.0);
    }
}
