//! Output emission: the one-line-per-run JSON and CSV serializers, shared
//! by `run`, `grid`, and `bench` so the three front-ends cannot drift.
//!
//! Serialization is hand-rolled: the workspace is dependency-free by
//! design (simulation state is flat integers, so a JSON writer is ~40
//! lines), which keeps builds hermetic.
//!
//! Every emitted line is versioned: a `schema` field (JSON) / column (CSV)
//! carries [`SCHEMA_VERSION`], and a `scenario_id` stamps the cell
//! identity ([`Scenario::scenario_id`]), so concatenated outputs from
//! different invocations remain self-describing. The deterministic
//! [`to_json`] core — the serialization regression pins assert on — is
//! unversioned and timing-free; the emitter wraps it with the line-level
//! metadata.

use crate::spec::{OutputFormat, Scenario};
use gossip_sim::SimResult;

use std::io::{self, Write};

/// Version of the emitted line format. Bump when fields are added,
/// removed, or renamed in run/grid/bench output lines.
pub const SCHEMA_VERSION: u64 = 1;

/// Execution-side metadata of one run, reported next to the (seed-
/// deterministic) [`SimResult`]: the worker-thread count actually used
/// and the wall-clock time the run took. Kept out of `SimResult` so
/// result equality stays meaningful for determinism tests — two runs are
/// "the same run" regardless of how fast the hardware was that day.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunMeta {
    /// Worker threads after the [`crate::effective_threads`] clamp.
    pub threads: usize,
    /// Wall-clock duration of the run, in milliseconds.
    pub wall_ms: u64,
}

/// Serialize the deterministic core of a result as a single JSON object.
/// This is a pure function of the [`SimResult`] — no schema version, no
/// scenario id, no timing — so byte-for-byte regression pins on it stay
/// stable across line-format revisions.
pub fn to_json(result: &SimResult) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    json_str(&mut out, "topology", &result.topology);
    out.push(',');
    json_str(&mut out, "protocol", &result.protocol);
    out.push(',');
    json_str(&mut out, "scheduler", &result.scheduler);
    out.push(',');
    json_num(&mut out, "nodes", result.nodes as u64);
    out.push(',');
    json_num(&mut out, "messages", result.messages as u64);
    out.push(',');
    json_num(&mut out, "seed", result.seed);
    out.push(',');
    out.push_str(&format!("\"completed\":{}", result.completed));
    out.push(',');
    match result.rounds_to_completion {
        Some(r) => json_num(&mut out, "rounds_to_completion", r as u64),
        None => out.push_str("\"rounds_to_completion\":null"),
    }
    out.push(',');
    json_num(&mut out, "rounds_executed", result.rounds_executed as u64);
    out.push(',');
    json_num(&mut out, "virtual_time", result.virtual_time);
    out.push(',');
    match result.virtual_time_to_completion {
        Some(t) => json_num(&mut out, "virtual_time_to_completion", t),
        None => out.push_str("\"virtual_time_to_completion\":null"),
    }
    out.push(',');
    json_num(
        &mut out,
        "total_connections",
        result.total_connections as u64,
    );
    out.push(',');
    json_num(
        &mut out,
        "productive_connections",
        result.productive_connections as u64,
    );
    out.push(',');
    json_num(
        &mut out,
        "wasted_connections",
        result.wasted_connections as u64,
    );
    out.push(',');
    json_num(&mut out, "complete_nodes", result.complete_nodes as u64);
    // Emitted only when nonzero — like `dynamics`, absence is the normal
    // case, and conditional emission keeps clean static runs serializing
    // byte-identically to pre-counter builds (the serialization pins rely
    // on that).
    if result.dropped_proposals > 0 {
        out.push(',');
        json_num(&mut out, "dropped_proposals", result.dropped_proposals);
    }
    if let Some(d) = &result.dynamics {
        out.push_str(",\"dynamics\":{");
        json_str(&mut out, "model", &d.model);
        out.push(',');
        json_num(&mut out, "departures", d.departures as u64);
        out.push(',');
        json_num(&mut out, "rejoins", d.rejoins as u64);
        out.push(',');
        json_num(&mut out, "edge_downs", d.edge_downs as u64);
        out.push(',');
        json_num(&mut out, "edge_ups", d.edge_ups as u64);
        out.push(',');
        json_num(&mut out, "rewires", d.rewires as u64);
        out.push(',');
        json_num(
            &mut out,
            "severed_connections",
            d.severed_connections as u64,
        );
        out.push(',');
        json_num(&mut out, "peak_alive", d.peak_alive as u64);
        out.push(',');
        json_num(&mut out, "min_alive", d.min_alive as u64);
        out.push(',');
        json_num(&mut out, "final_alive", d.final_alive as u64);
        out.push_str(",\"coverage_timeline\":[");
        for (i, p) in d.coverage_timeline.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_num(&mut out, "time", p.time);
            out.push(',');
            json_num(&mut out, "alive", p.alive as u64);
            out.push(',');
            json_num(&mut out, "informed_alive", p.informed_alive as u64);
            out.push('}');
        }
        out.push_str("]}");
    }
    if let Some(m) = &result.membership {
        out.push_str(",\"membership\":{");
        json_num(&mut out, "active_min", m.active_min as u64);
        out.push(',');
        // f64 via Display: shortest round-trip representation, stable
        // across platforms for the deterministic engine's values.
        out.push_str(&format!("\"active_mean\":{}", m.active_mean));
        out.push(',');
        json_num(&mut out, "active_max", m.active_max as u64);
        out.push(',');
        json_num(&mut out, "isolated_nodes", m.isolated_nodes as u64);
        out.push(',');
        json_num(&mut out, "joins", m.joins);
        out.push(',');
        json_num(&mut out, "shuffles", m.shuffles);
        out.push(',');
        json_num(&mut out, "probes", m.probes);
        out.push(',');
        json_num(&mut out, "suspicions", m.suspicions);
        out.push(',');
        json_num(&mut out, "evictions", m.evictions);
        out.push(',');
        json_num(
            &mut out,
            "false_positive_evictions",
            m.false_positive_evictions,
        );
        out.push('}');
    }
    if let Some(rounds) = &result.rounds {
        out.push_str(",\"rounds\":[");
        for (i, r) in rounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_num(&mut out, "round", r.round as u64);
            out.push(',');
            json_num(&mut out, "connections", r.connections as u64);
            out.push(',');
            json_num(&mut out, "productive", r.productive as u64);
            out.push(',');
            json_num(&mut out, "complete_nodes", r.complete_nodes as u64);
            out.push(',');
            json_num(&mut out, "messages_held", r.messages_held as u64);
            out.push('}');
        }
        out.push(']');
    }
    out.push('}');
    out
}

/// One emitted JSON line: schema version and scenario id leading, the
/// deterministic [`to_json`] body in the middle, execution metadata
/// (threads, wall time) trailing.
pub fn run_line_json(scenario_id: &str, result: &SimResult, meta: &RunMeta) -> String {
    let mut out = String::with_capacity(640);
    out.push('{');
    json_num(&mut out, "schema", SCHEMA_VERSION);
    out.push(',');
    json_str(&mut out, "scenario_id", scenario_id);
    out.push(',');
    let body = to_json(result);
    out.push_str(&body[1..body.len() - 1]);
    out.push(',');
    json_num(&mut out, "threads", meta.threads as u64);
    out.push(',');
    json_num(&mut out, "wall_ms", meta.wall_ms);
    out.push('}');
    out
}

/// The header row for CSV output. The column set is fixed — dynamics and
/// membership columns are simply empty on runs that used neither — so
/// outputs from different configs concatenate and load uniformly in
/// plotting tools.
pub fn csv_header() -> &'static str {
    "schema,scenario_id,topology,protocol,scheduler,nodes,messages,seed,\
     completed,rounds_to_completion,rounds_executed,virtual_time,\
     virtual_time_to_completion,total_connections,productive_connections,\
     wasted_connections,complete_nodes,dropped_proposals,dynamics_model,\
     departures,rejoins,edge_downs,edge_ups,rewires,severed_connections,\
     peak_alive,min_alive,final_alive,mem_active_min,mem_active_mean,\
     mem_active_max,mem_isolated_nodes,mem_joins,mem_shuffles,mem_probes,\
     mem_suspicions,mem_evictions,mem_false_positive_evictions,threads,\
     wall_ms"
}

/// Serialize one run as a CSV row matching [`csv_header`]. Absent values
/// (an uncompleted run's completion columns, dynamics columns of a static
/// run) serialize as empty cells. Names and scenario ids are
/// comma/quote-free by construction, so no quoting is needed.
pub fn run_line_csv(scenario_id: &str, result: &SimResult, meta: &RunMeta) -> String {
    fn opt(v: Option<u64>) -> String {
        v.map(|v| v.to_string()).unwrap_or_default()
    }
    let d = result.dynamics.as_ref();
    let mut fields: Vec<String> = vec![
        SCHEMA_VERSION.to_string(),
        scenario_id.to_string(),
        result.topology.clone(),
        result.protocol.clone(),
        result.scheduler.clone(),
        result.nodes.to_string(),
        result.messages.to_string(),
        result.seed.to_string(),
        result.completed.to_string(),
        opt(result.rounds_to_completion.map(|r| r as u64)),
        result.rounds_executed.to_string(),
        result.virtual_time.to_string(),
        opt(result.virtual_time_to_completion),
        result.total_connections.to_string(),
        result.productive_connections.to_string(),
        result.wasted_connections.to_string(),
        result.complete_nodes.to_string(),
        result.dropped_proposals.to_string(),
    ];
    fields.push(d.map(|d| d.model.clone()).unwrap_or_default());
    for value in [
        d.map(|d| d.departures),
        d.map(|d| d.rejoins),
        d.map(|d| d.edge_downs),
        d.map(|d| d.edge_ups),
        d.map(|d| d.rewires),
        d.map(|d| d.severed_connections),
        d.map(|d| d.peak_alive),
        d.map(|d| d.min_alive),
        d.map(|d| d.final_alive),
    ] {
        fields.push(opt(value.map(|v| v as u64)));
    }
    let m = result.membership.as_ref();
    fields.push(opt(m.map(|m| m.active_min as u64)));
    fields.push(m.map(|m| m.active_mean.to_string()).unwrap_or_default());
    fields.push(opt(m.map(|m| m.active_max as u64)));
    fields.push(opt(m.map(|m| m.isolated_nodes as u64)));
    for value in [
        m.map(|m| m.joins),
        m.map(|m| m.shuffles),
        m.map(|m| m.probes),
        m.map(|m| m.suspicions),
        m.map(|m| m.evictions),
        m.map(|m| m.false_positive_evictions),
    ] {
        fields.push(opt(value));
    }
    fields.push(meta.threads.to_string());
    fields.push(meta.wall_ms.to_string());
    fields.join(",")
}

/// Streams run lines in one format to one writer: CSV emits its header
/// before the first row, JSON needs none. `run`, sweeps, and grids all
/// emit through this, which is what makes a grid cell's line byte-
/// comparable (modulo wall time) to the standalone run of the same
/// scenario.
pub struct Emitter<W: Write> {
    format: OutputFormat,
    out: W,
    header_written: bool,
}

impl<W: Write> Emitter<W> {
    pub fn new(format: OutputFormat, out: W) -> Self {
        Emitter {
            format,
            out,
            header_written: false,
        }
    }

    /// Emit one run line. The scenario id is stamped from `scenario` with
    /// the **result's** seed, so every line of a sweep carries the
    /// identity of the exact cell it ran.
    pub fn emit(
        &mut self,
        scenario: &Scenario,
        result: &SimResult,
        meta: &RunMeta,
    ) -> io::Result<()> {
        let id = scenario.with_seed(result.seed).scenario_id();
        match self.format {
            OutputFormat::Json => writeln!(self.out, "{}", run_line_json(&id, result, meta)),
            OutputFormat::Csv => {
                if !self.header_written {
                    self.header_written = true;
                    writeln!(self.out, "{}", csv_header())?;
                }
                writeln!(self.out, "{}", run_line_csv(&id, result, meta))
            }
        }
    }

    /// Emit one **pre-rendered** run line. This is how the parallel grid
    /// pool streams its buffered cells and how `--resume` replays
    /// checkpointed ones: cells render their lines off-thread (or read
    /// them back from the checkpoint file), and the sequencer funnels
    /// them through the emitter so the CSV header discipline — one
    /// header, before the first row, wherever the row came from — still
    /// holds.
    pub fn emit_rendered(&mut self, line: &str) -> io::Result<()> {
        if self.format == OutputFormat::Csv && !self.header_written {
            self.header_written = true;
            writeln!(self.out, "{}", csv_header())?;
        }
        writeln!(self.out, "{line}")
    }

    /// The wrapped writer, back.
    pub fn into_inner(self) -> W {
        self.out
    }
}

pub(crate) fn json_str(out: &mut String, key: &str, value: &str) {
    // Names and ids are ASCII identifiers; escape the JSON specials
    // anyway so the writer is safe for future string fields.
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn json_num(out: &mut String, key: &str, value: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioBuilder;

    #[test]
    fn json_escapes_specials() {
        let mut out = String::new();
        json_str(&mut out, "k", "a\"b\\c\nd");
        assert_eq!(out, r#""k":"a\"b\\c\nd""#);
    }

    #[test]
    fn run_lines_carry_schema_id_and_metadata() {
        let scenario = ScenarioBuilder::new().nodes(16).finish().unwrap();
        let result = scenario.run();
        let meta = RunMeta {
            threads: 3,
            wall_ms: 12,
        };
        let id = scenario.scenario_id();
        let line = run_line_json(&id, &result, &meta);
        assert!(line.starts_with(&format!(
            "{{\"schema\":{SCHEMA_VERSION},\"scenario_id\":\"{id}\","
        )));
        assert!(line.ends_with(",\"threads\":3,\"wall_ms\":12}"), "{line}");
        // The deterministic core is embedded verbatim.
        let core = to_json(&result);
        assert!(line.contains(&core[1..core.len() - 1]));

        let row = run_line_csv(&id, &result, &meta);
        assert_eq!(
            row.split(',').count(),
            csv_header().split(',').count(),
            "{row}"
        );
        assert!(row.starts_with(&format!("{SCHEMA_VERSION},{id},ring,")));
    }

    #[test]
    fn membership_object_appears_only_on_overlay_runs() {
        use crate::spec::MembershipSpec;
        // Full-view default: the run JSON is byte-identical to the
        // pre-membership serialization — no membership key at all.
        let full = ScenarioBuilder::new().nodes(32).finish().unwrap();
        let full_json = to_json(&full.run());
        assert!(!full_json.contains("membership"), "{full_json}");

        // The same scenario with the overlay on: a membership object with
        // the overlay counters, placed before any rounds array.
        let overlay = ScenarioBuilder::new()
            .nodes(32)
            .membership(MembershipSpec::HyParView {
                active: 5,
                passive: 30,
                shuffle_period: 1,
                probe_period: 1,
            })
            .finish()
            .unwrap();
        let result = overlay.run();
        let json = to_json(&result);
        assert!(json.contains("\"membership\":{\"active_min\":"), "{json}");
        assert!(json.contains("\"false_positive_evictions\":"), "{json}");

        // CSV rows stay aligned with the header in both shapes.
        let meta = RunMeta {
            threads: 1,
            wall_ms: 0,
        };
        for (scenario, result) in [(&full, full.run()), (&overlay, result)] {
            let row = run_line_csv(&scenario.scenario_id(), &result, &meta);
            assert_eq!(
                row.split(',').count(),
                csv_header().split(',').count(),
                "{row}"
            );
        }
    }

    #[test]
    fn emitter_writes_csv_header_once() {
        let scenario = ScenarioBuilder::new()
            .nodes(12)
            .seeds(2)
            .output(crate::OutputFormat::Csv, false)
            .finish()
            .unwrap();
        let mut emitter = Emitter::new(scenario.output.format, Vec::<u8>::new());
        for (result, meta) in scenario.sweep_timed_iter() {
            emitter.emit(&scenario, &result, &meta).unwrap();
        }
        let out = String::from_utf8(emitter.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "header + one row per seed");
        assert_eq!(lines[0], csv_header());
        assert!(lines[1].contains("-s1,") || lines[1].contains("-s1"));
        assert_eq!(
            out.matches("schema,").count(),
            1,
            "header appears exactly once"
        );
    }
}
