//! Engine benchmarking over the same typed specs as `run` and `grid`:
//! time the engine over a fixed round budget rather than running to
//! completion, so a 10^6-node topology benches in seconds even though its
//! gossip would take hundreds of thousands of rounds to finish. The
//! scenario's scheduler spec picks the engine: sync specs bench the
//! sharded round loop (per-round phase breakdown), async specs bench the
//! time-sliced event loop (per-slice execute/merge/sweep breakdown plus
//! event throughput).

use crate::emit::{json_num, json_str};
use crate::spec::{Scenario, SchedulerSpec};
use gossip_sim::{AsyncScheduler, SimConfig, SliceTimings, SyncScheduler};
use gossip_telemetry::metrics::{regions_for, LoadSummary, Registry};

use std::time::Instant;

/// Version of the bench line format, independent of the run/grid
/// [`SCHEMA_VERSION`](crate::emit::SCHEMA_VERSION) (which stays at 1 —
/// run and grid lines are unchanged). Version 2 added the `phase_ms`
/// per-phase timing breakdown; version 3 added the `region_load`
/// balance summary (plus, for sync, the confined/boundary proposal
/// split of the sharded resolver).
pub const BENCH_SCHEMA_VERSION: u64 = 3;

/// One bench invocation: a [`Scenario`] (built by the same
/// [`ScenarioBuilder`](crate::ScenarioBuilder) as every other front-end,
/// so bench configs cannot drift from run configs) plus the round budget.
/// The scenario's scheduler spec picks the engine under the stopwatch —
/// sync benches the round loop, async benches the sliced event loop —
/// and contributes its thread count (and, for async, its timing model).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchScenario {
    pub scenario: Scenario,
    /// Round budget: the engine runs exactly this many rounds (or fewer
    /// if gossip completes first).
    pub rounds: usize,
}

/// Default bench round budget.
pub const DEFAULT_BENCH_ROUNDS: usize = 64;

/// What one bench invocation measured.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    pub scenario_id: String,
    pub topology: String,
    pub nodes: usize,
    pub protocol: String,
    pub messages: usize,
    pub seed: u64,
    /// Worker threads after the [`crate::effective_threads`] clamp.
    pub threads: usize,
    /// The configured round budget.
    pub round_budget: usize,
    /// Rounds the engine actually executed (< budget iff gossip
    /// completed early).
    pub rounds_executed: usize,
    pub completed: bool,
    /// Time to build the topology (excluded from throughput).
    pub build_ms: u64,
    /// Wall-clock time of the simulation itself.
    pub wall_ms: u64,
    /// Simulated rounds per second of wall time.
    pub rounds_per_sec: f64,
    /// `nodes × rounds` per second of wall time — the per-node sweep
    /// throughput, comparable across topology sizes.
    pub node_events_per_sec: f64,
    /// Deterministic accounting totals: any serial-vs-parallel (or
    /// build-to-build) divergence shows up as a mismatch here.
    pub total_connections: usize,
    pub productive_connections: usize,
    pub complete_nodes: usize,
    /// Per-phase wall time of whichever engine ran, summed over
    /// rounds (sync) or slice passes (async). The phases account for
    /// essentially all of `wall_ms`; comparing breakdowns across
    /// `--threads` shows which phases a thread count actually buys down.
    pub phases: EnginePhases,
    /// How evenly the engine's fixed 64-region partition was loaded:
    /// connections per region under the sync resolver, events per
    /// region under the sliced event loop. Thread-independent (the
    /// partition is), so imbalance here is a property of the topology,
    /// not of the machine.
    pub region_load: LoadSummary,
}

/// The engine-specific half of a [`BenchReport`]: which loop ran and its
/// phase breakdown.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EnginePhases {
    /// The sharded synchronous round loop.
    Sync(PhaseMs),
    /// The time-sliced asynchronous event loop.
    Async(SliceMs),
}

impl EnginePhases {
    /// The `"bench"` discriminator stamped on the JSON line.
    pub fn bench_name(&self) -> &'static str {
        match self {
            EnginePhases::Sync(_) => "sync_round_loop",
            EnginePhases::Async(_) => "async_event_loop",
        }
    }
}

/// Per-phase wall-clock milliseconds of the synchronous round loop
/// (engine [`gossip_sim::PhaseTimings`], converted for reporting).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseMs {
    /// Phase 1: advertisement refresh.
    pub advertise: f64,
    /// Phase 2: scan + intent decision.
    pub decide: f64,
    /// Phase 3: connection matching.
    pub matching: f64,
    /// Phase 4: push-pull transfer.
    pub transfer: f64,
    /// Proposals the sharded resolver settled entirely inside one
    /// region, summed over rounds.
    pub confined_proposals: u64,
    /// Proposals deferred to the serial boundary sweep (both endpoints
    /// in different regions) — the serial-fraction instrument.
    pub boundary_proposals: u64,
}

impl From<gossip_sim::PhaseTimings> for PhaseMs {
    fn from(t: gossip_sim::PhaseTimings) -> Self {
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        PhaseMs {
            advertise: ms(t.advertise),
            decide: ms(t.decide),
            matching: ms(t.matching),
            transfer: ms(t.transfer),
            confined_proposals: t.confined_proposals,
            boundary_proposals: t.boundary_proposals,
        }
    }
}

/// Per-phase wall-clock milliseconds of the time-sliced event loop
/// (engine [`SliceTimings`], converted for reporting), plus its event
/// throughput — the async analogue of rounds/sec, and the number CI and
/// `BENCH_async_*.json` baselines compare across thread counts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SliceMs {
    /// Parallel region execution across all slice passes.
    pub execute: f64,
    /// Serial log merge + accounting replay.
    pub merge: f64,
    /// Serial boundary sweep (cross-region events and mutations).
    pub sweep: f64,
    /// Slice passes taken.
    pub slices: u64,
    /// Events executed (each event counted once, where it ran).
    pub events: u64,
    /// `events / wall seconds` of the simulation.
    pub events_per_sec: f64,
}

impl SliceMs {
    fn new(t: SliceTimings, wall_secs: f64) -> Self {
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        SliceMs {
            execute: ms(t.execute),
            merge: ms(t.merge),
            sweep: ms(t.sweep),
            slices: t.slices,
            events: t.events,
            events_per_sec: t.events as f64 / wall_secs.max(1e-9),
        }
    }
}

/// Run one engine benchmark: build the topology (timed separately), run
/// the scenario's scheduler for the configured round budget (async specs
/// interpret it as the equivalent virtual-time cap), and report
/// throughput plus the deterministic accounting totals.
pub fn run_bench(bench: &BenchScenario) -> BenchReport {
    let scenario = &bench.scenario;
    let threads = scenario.scheduler.effective_threads();

    let building = Instant::now();
    let (topology, _geometry) = scenario.topology.build(scenario.nodes, scenario.seed);
    let build_ms = building.elapsed().as_millis() as u64;

    let protocol = scenario.protocol.build();
    let sources = scenario.sources();
    let sim_cfg = SimConfig {
        max_rounds: bench.rounds,
        record_rounds: false,
    };
    let running = Instant::now();
    let (result, phases, region_load) = match &scenario.scheduler {
        SchedulerSpec::Sync { .. } => {
            let scheduler = SyncScheduler::with_threads(threads);
            let (result, timings) = scheduler.run_with_timings(
                &topology,
                protocol.as_ref(),
                &sources,
                scenario.seed,
                &sim_cfg,
            );
            let load = timings
                .connections_by_region
                .summary(regions_for(scenario.nodes));
            (result, EnginePhases::Sync(timings.into()), load)
        }
        SchedulerSpec::Async { timing, .. } => {
            let scheduler = AsyncScheduler {
                timing: *timing,
                threads,
            };
            let (result, timings) = scheduler.run_with_slice_timings(
                &topology,
                protocol.as_ref(),
                &sources,
                scenario.seed,
                &sim_cfg,
            );
            let secs = running.elapsed().as_secs_f64();
            let load = timings
                .events_by_region
                .summary(regions_for(scenario.nodes));
            (
                result,
                EnginePhases::Async(SliceMs::new(timings, secs)),
                load,
            )
        }
    };
    let wall = running.elapsed();

    let secs = wall.as_secs_f64().max(1e-9);
    BenchReport {
        scenario_id: scenario.scenario_id(),
        topology: result.topology.clone(),
        nodes: scenario.nodes,
        protocol: scenario.protocol.name().to_string(),
        messages: scenario.messages,
        seed: scenario.seed,
        threads,
        round_budget: bench.rounds,
        rounds_executed: result.rounds_executed,
        completed: result.completed,
        build_ms,
        wall_ms: wall.as_millis() as u64,
        rounds_per_sec: result.rounds_executed as f64 / secs,
        node_events_per_sec: (result.rounds_executed as f64 * scenario.nodes as f64) / secs,
        total_connections: result.total_connections,
        productive_connections: result.productive_connections,
        complete_nodes: result.complete_nodes,
        phases,
        region_load,
    }
}

impl BenchReport {
    /// Flatten this report into a [`Registry`] — the typed metrics view
    /// of a bench line: accounting totals as counters, throughput and
    /// phase times as gauges, the per-region load summary as a
    /// histogram-free counter set. Downstream tools aggregating many
    /// bench runs can merge registries instead of re-parsing JSON.
    pub fn registry(&self) -> Registry {
        let mut reg = Registry::default();
        reg.inc("rounds_executed", self.rounds_executed as u64);
        reg.inc("total_connections", self.total_connections as u64);
        reg.inc("productive_connections", self.productive_connections as u64);
        reg.inc("complete_nodes", self.complete_nodes as u64);
        reg.set_gauge("wall_ms", self.wall_ms as f64);
        reg.set_gauge("rounds_per_sec", self.rounds_per_sec);
        reg.set_gauge("node_events_per_sec", self.node_events_per_sec);
        match &self.phases {
            EnginePhases::Sync(p) => {
                reg.set_gauge("phase_ms.advertise", p.advertise);
                reg.set_gauge("phase_ms.decide", p.decide);
                reg.set_gauge("phase_ms.match", p.matching);
                reg.set_gauge("phase_ms.transfer", p.transfer);
                reg.inc("confined_proposals", p.confined_proposals);
                reg.inc("boundary_proposals", p.boundary_proposals);
            }
            EnginePhases::Async(s) => {
                reg.set_gauge("phase_ms.execute", s.execute);
                reg.set_gauge("phase_ms.merge", s.merge);
                reg.set_gauge("phase_ms.sweep", s.sweep);
                reg.inc("slices", s.slices);
                reg.inc("events", s.events);
                reg.set_gauge("events_per_sec", s.events_per_sec);
            }
        }
        reg.inc("region_load.total", self.region_load.total);
        reg.inc("region_load.min", self.region_load.min);
        reg.inc("region_load.max", self.region_load.max);
        reg.set_gauge("region_load.imbalance", self.region_load.imbalance);
        reg
    }
}

/// Serialize a bench report as one JSON line, shaped for appending to
/// `BENCH_*.json` trajectory files. Versioned by [`BENCH_SCHEMA_VERSION`]
/// and stamped with the same `scenario_id` as run/grid lines.
pub fn bench_to_json(report: &BenchReport) -> String {
    let mut out = String::with_capacity(640);
    out.push('{');
    json_num(&mut out, "schema", BENCH_SCHEMA_VERSION);
    out.push(',');
    json_str(&mut out, "bench", report.phases.bench_name());
    out.push(',');
    json_str(&mut out, "scenario_id", &report.scenario_id);
    out.push(',');
    json_str(&mut out, "topology", &report.topology);
    out.push(',');
    json_num(&mut out, "nodes", report.nodes as u64);
    out.push(',');
    json_str(&mut out, "protocol", &report.protocol);
    out.push(',');
    json_num(&mut out, "messages", report.messages as u64);
    out.push(',');
    json_num(&mut out, "seed", report.seed);
    out.push(',');
    json_num(&mut out, "threads", report.threads as u64);
    out.push(',');
    json_num(&mut out, "round_budget", report.round_budget as u64);
    out.push(',');
    json_num(&mut out, "rounds_executed", report.rounds_executed as u64);
    out.push(',');
    out.push_str(&format!("\"completed\":{}", report.completed));
    out.push(',');
    json_num(&mut out, "build_ms", report.build_ms);
    out.push(',');
    json_num(&mut out, "wall_ms", report.wall_ms);
    out.push(',');
    match &report.phases {
        EnginePhases::Sync(p) => out.push_str(&format!(
            "\"phase_ms\":{{\"advertise\":{:.2},\"decide\":{:.2},\"match\":{:.2},\"transfer\":{:.2}}},\
             \"confined_proposals\":{},\"boundary_proposals\":{}",
            p.advertise, p.decide, p.matching, p.transfer, p.confined_proposals,
            p.boundary_proposals
        )),
        EnginePhases::Async(s) => out.push_str(&format!(
            "\"phase_ms\":{{\"execute\":{:.2},\"merge\":{:.2},\"sweep\":{:.2}}},\
             \"slices\":{},\"events\":{},\"events_per_sec\":{:.2}",
            s.execute, s.merge, s.sweep, s.slices, s.events, s.events_per_sec
        )),
    }
    out.push(',');
    let rl = &report.region_load;
    out.push_str(&format!(
        "\"region_load\":{{\"regions\":{},\"total\":{},\"min\":{},\"max\":{},\"mean\":{:.2},\"imbalance\":{:.2}}}",
        rl.regions, rl.total, rl.min, rl.max, rl.mean, rl.imbalance
    ));
    out.push(',');
    out.push_str(&format!(
        "\"rounds_per_sec\":{:.2},\"node_events_per_sec\":{:.2}",
        report.rounds_per_sec, report.node_events_per_sec
    ));
    out.push(',');
    json_num(
        &mut out,
        "total_connections",
        report.total_connections as u64,
    );
    out.push(',');
    json_num(
        &mut out,
        "productive_connections",
        report.productive_connections as u64,
    );
    out.push(',');
    json_num(&mut out, "complete_nodes", report.complete_nodes as u64);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ProtocolSpec, ScenarioBuilder};

    #[test]
    fn bench_runs_end_to_end_and_reports_throughput() {
        let bench = BenchScenario {
            scenario: ScenarioBuilder::new()
                .nodes(2000)
                .protocol(ProtocolSpec::Advert)
                .seed(5)
                .finish()
                .unwrap(),
            rounds: 32,
        };
        let report = run_bench(&bench);
        assert_eq!(report.rounds_executed, 32, "budget-capped, far from done");
        assert!(!report.completed);
        assert!(report.rounds_per_sec > 0.0);
        assert!(report.node_events_per_sec >= report.rounds_per_sec);
        // The accounting totals are seed-deterministic run to run — this
        // is the divergence check the CI smoke job performs across thread
        // counts.
        let again = run_bench(&bench);
        assert_eq!(report.total_connections, again.total_connections);
        assert_eq!(report.productive_connections, again.productive_connections);
        assert_eq!(report.complete_nodes, again.complete_nodes);

        assert!(matches!(report.phases, EnginePhases::Sync(_)));
        // Every connection lands in exactly one region tally.
        assert_eq!(report.region_load.total, report.total_connections as u64);
        assert_eq!(report.region_load.regions, 63, "2000 nodes -> 63 regions");
        let json = bench_to_json(&report);
        for key in [
            "\"schema\":3",
            "\"bench\":\"sync_round_loop\"",
            "\"scenario_id\":\"ring-advert-sync-n2000-k1-s5\"",
            "\"topology\":\"ring\"",
            "\"nodes\":2000",
            "\"threads\":1",
            "\"round_budget\":32",
            "\"rounds_executed\":32",
            "\"phase_ms\":{\"advertise\":",
            "\"decide\":",
            "\"match\":",
            "\"transfer\":",
            "\"confined_proposals\":",
            "\"boundary_proposals\":",
            "\"region_load\":{\"regions\":63,",
            "\"imbalance\":",
            "\"rounds_per_sec\":",
            "\"node_events_per_sec\":",
            "\"wall_ms\":",
            "\"build_ms\":",
            "\"total_connections\":",
        ] {
            assert!(json.contains(key), "bench JSON missing {key}: {json}");
        }
        assert!(!json.contains('\n'), "bench output must be line-oriented");

        let reg = report.registry();
        assert_eq!(
            reg.counter("total_connections"),
            Some(report.total_connections as u64)
        );
        assert_eq!(
            reg.counter("region_load.total"),
            Some(report.region_load.total)
        );
        assert!(reg.gauge("phase_ms.match").is_some());
    }

    #[test]
    fn async_bench_reports_slice_phases_and_event_throughput() {
        let scenario = ScenarioBuilder::new()
            .nodes(2000)
            .protocol(ProtocolSpec::Advert)
            .async_scheduler(gossip_core::time::TimingConfig::default())
            .seed(5)
            .finish()
            .unwrap();
        let bench = BenchScenario {
            scenario,
            rounds: 32,
        };
        let report = run_bench(&bench);
        assert!(!report.completed, "budget-capped, far from done");
        let EnginePhases::Async(slice) = report.phases else {
            panic!("async spec must bench the sliced event loop");
        };
        assert!(slice.slices > 0);
        assert!(slice.events > 0, "a capped run still executes events");
        assert!(slice.events_per_sec > 0.0);
        // Accounting totals are seed-deterministic run to run — the same
        // divergence check CI performs across async thread counts.
        let again = run_bench(&bench);
        assert_eq!(report.total_connections, again.total_connections);
        assert_eq!(report.complete_nodes, again.complete_nodes);

        // Region pops account for every event except serial sweep
        // executions.
        assert!(report.region_load.total <= slice.events);
        assert!(report.region_load.total > 0);

        let json = bench_to_json(&report);
        for key in [
            "\"schema\":3",
            "\"bench\":\"async_event_loop\"",
            "\"phase_ms\":{\"execute\":",
            "\"merge\":",
            "\"sweep\":",
            "\"slices\":",
            "\"events\":",
            "\"events_per_sec\":",
            "\"region_load\":{\"regions\":63,",
        ] {
            assert!(json.contains(key), "async bench JSON missing {key}: {json}");
        }
        assert!(!json.contains('\n'), "bench output must be line-oriented");

        let reg = report.registry();
        assert_eq!(reg.counter("events"), Some(slice.events));
        assert!(reg.gauge("events_per_sec").is_some());
    }
}
