//! Parallel grid execution: a work-stealing cell pool with ordered
//! emission.
//!
//! Grid cells are **independent by construction** — each is a pure
//! function of its scenario (PR 5's byte-identity contract), so the only
//! obstacle to running them concurrently is the output contract: grid
//! stdout must stay byte-identical to the serial grid, i.e. one line per
//! run in row-major cell order with the seed sweep innermost. The design
//! here splits those concerns:
//!
//! - **Workers** (`StealQueues`) pull cell indices from per-worker
//!   contiguous ranges of the pending list; a worker that drains its own
//!   range steals the back half of the fullest other range (two locks,
//!   taken in index order, so concurrent thieves cannot deadlock). Cells
//!   are coarse — whole simulations, milliseconds to minutes each — so a
//!   `Mutex` per range costs nothing and keeps the pool `std`-only.
//! - **The sequencer** (the caller's thread) receives completed cells
//!   over a channel in *completion* order, but releases their rendered
//!   lines in *cell* order: out-of-order completions buffer in their slot
//!   until the gap before them fills. Completion order is where the
//!   nondeterminism of scheduling goes to die; it never reaches stdout.
//!
//! The sequencer is also where checkpointing and progress live, precisely
//! because it is the one serial point: checkpoint records append (fsync'd)
//! in completion order as results arrive, and the heartbeat renders from
//! one consistent view of done/running/stolen counts.
//!
//! The global `--cores` budget partitions between the two levels of
//! parallelism: with cells that themselves run sharded engines
//! (`--threads T`), the pool spawns `max(1, cores / T)` cell workers so
//! the total worker-thread footprint stays within the budget
//! ([`worker_count`]). Oversubscription beyond the machine is allowed —
//! cells block on nothing, so extra workers merely time-slice.

use crate::checkpoint::{CellRecord, CheckpointWriter};
use crate::emit::{run_line_csv, run_line_json, Emitter};
use crate::spec::{OutputFormat, Scenario};
use gossip_telemetry::progress::PoolProgress;

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

/// Sentinel for "worker has no active cell" in the activity table.
const IDLE: usize = usize::MAX;

/// The rendered output of one completed cell: its stdout lines (one per
/// sweep seed, CSV header excluded), its stderr warnings, and its wall
/// time. This is the unit the sequencer buffers, checkpoints, and
/// releases in cell order.
#[derive(Clone, Debug, PartialEq)]
pub struct CellOutput {
    /// Exact emitted lines, in seed order.
    pub lines: Vec<String>,
    /// Warnings to surface on stderr (incomplete runs), in seed order.
    pub warnings: Vec<String>,
    /// Wall-clock cost of the whole cell sweep.
    pub wall_ms: u64,
}

/// Run one grid cell — the full seed sweep — and render its output lines
/// exactly as the serial grid would have emitted them. Pure with respect
/// to the pool: no shared state, no I/O, safe to call from any worker.
pub fn run_cell(scenario: &Scenario) -> CellOutput {
    let started = Instant::now();
    let mut lines = Vec::with_capacity(scenario.seeds);
    let mut warnings = Vec::new();
    for (result, meta) in scenario.sweep_timed_iter() {
        let id = scenario.with_seed(result.seed).scenario_id();
        if !result.completed {
            warnings.push(format!(
                "{id}: gossip did not complete within {} rounds",
                result.rounds_executed
            ));
        }
        lines.push(match scenario.output.format {
            OutputFormat::Json => run_line_json(&id, &result, &meta),
            OutputFormat::Csv => run_line_csv(&id, &result, &meta),
        });
    }
    CellOutput {
        lines,
        warnings,
        wall_ms: started.elapsed().as_millis() as u64,
    }
}

/// How many cell workers a global core budget affords: the budget divided
/// by the *widest* cell's inner thread count (so `workers × threads ≤
/// cores` even on heterogeneous grids), at least one, and never more than
/// there are pending cells.
pub fn worker_count(cores: usize, scenarios: &[Scenario], pending: usize) -> usize {
    let widest = scenarios
        .iter()
        .map(|s| s.scheduler.effective_threads())
        .max()
        .unwrap_or(1)
        .max(1);
    (cores / widest).max(1).min(pending.max(1))
}

/// What one pooled grid execution did, for the caller's summary line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolSummary {
    /// Cell workers the core budget afforded.
    pub workers: usize,
    /// Cells that moved between workers via stealing.
    pub stolen: u64,
    /// Cells replayed from the checkpoint instead of re-run.
    pub resumed: usize,
}

/// Per-worker contiguous ranges over the pending-cell list, with
/// back-half stealing. Invariant: until popped by [`next`](Self::next),
/// every pending cell is inside exactly one range — moves between ranges
/// happen with both endpoints locked, so work is never lost. (A worker
/// *may* conclude the pool is empty while a thief holds freshly stolen
/// cells; those cells belong to the thief, which is alive and will run
/// them — the cost is a little tail parallelism, never correctness.)
struct StealQueues {
    /// Cell indices still to run, partitioned contiguously by `ranges`.
    pending: Vec<usize>,
    /// Half-open `(next, end)` window into `pending` per worker.
    ranges: Vec<Mutex<(usize, usize)>>,
    /// Cells moved between workers, for the heartbeat.
    stolen: AtomicU64,
    /// Cooperative cancellation (the sequencer hit an I/O error).
    aborted: AtomicBool,
}

impl StealQueues {
    fn new(pending: Vec<usize>, workers: usize) -> Self {
        let len = pending.len();
        let ranges = (0..workers)
            .map(|w| Mutex::new((w * len / workers, (w + 1) * len / workers)))
            .collect();
        StealQueues {
            pending,
            ranges,
            stolen: AtomicU64::new(0),
            aborted: AtomicBool::new(false),
        }
    }

    fn stolen(&self) -> u64 {
        self.stolen.load(Ordering::Relaxed)
    }

    fn abort(&self) {
        self.aborted.store(true, Ordering::Relaxed);
    }

    /// Worker `w`'s next cell: from its own range, else stolen. `None`
    /// when the pool is drained (or aborted).
    fn next(&self, w: usize) -> Option<usize> {
        loop {
            if self.aborted.load(Ordering::Relaxed) {
                return None;
            }
            {
                let mut own = self.ranges[w].lock().unwrap();
                if own.0 < own.1 {
                    let cell = self.pending[own.0];
                    own.0 += 1;
                    return Some(cell);
                }
            }
            if !self.steal_into(w) {
                return None;
            }
        }
    }

    /// Steal the back half of the fullest other range into `w`'s (empty)
    /// range. Returns false when no other range has visible work.
    fn steal_into(&self, w: usize) -> bool {
        loop {
            let victim = (0..self.ranges.len())
                .filter(|&v| v != w)
                .map(|v| {
                    let r = self.ranges[v].lock().unwrap();
                    (r.1 - r.0, v)
                })
                .max();
            let Some((remaining, v)) = victim else {
                return false; // single-worker pool: nobody to steal from
            };
            if remaining == 0 {
                return false;
            }
            // Lock both ranges in index order — the global order that
            // keeps two concurrent thieves deadlock-free — then re-check:
            // the victim may have drained between the scan and the lock.
            let (lo, hi) = (w.min(v), w.max(v));
            let lo_guard = self.ranges[lo].lock().unwrap();
            let hi_guard = self.ranges[hi].lock().unwrap();
            let (mut own, mut vict) = if w < v {
                (lo_guard, hi_guard)
            } else {
                (hi_guard, lo_guard)
            };
            let len = vict.1 - vict.0;
            if len == 0 {
                continue; // drained under us; rescan for another victim
            }
            let take = len - len / 2; // ceil half, off the tail
            *own = (vict.1 - take, vict.1);
            vict.1 -= take;
            self.stolen.fetch_add(take as u64, Ordering::Relaxed);
            return true;
        }
    }
}

/// Execute an expanded grid on a work-stealing cell pool, streaming its
/// output lines to `out` in row-major cell order — byte-identical to the
/// serial grid at any `cores` value.
///
/// `resumed` carries the checkpoint replay: one slot per cell, `Some` for
/// cells already completed (their recorded lines are emitted verbatim in
/// place, never re-run). Pass an empty vec for a fresh run. `checkpoint`,
/// when present, receives one fsync'd record per newly completed cell, in
/// completion order. With `progress`, a per-cell heartbeat (done/total,
/// running/stolen counts, running-mean ETA, per-worker active cell) goes
/// to stderr.
pub fn execute_grid<W: Write>(
    scenarios: &[Scenario],
    cores: usize,
    resumed: Vec<Option<CellRecord>>,
    mut checkpoint: Option<CheckpointWriter>,
    progress: bool,
    out: &mut W,
) -> io::Result<PoolSummary> {
    assert!(
        !scenarios.is_empty(),
        "an expanded grid always has at least one cell"
    );
    assert!(cores >= 1, "the core budget needs at least one core");
    let total = scenarios.len();
    assert!(
        resumed.is_empty() || resumed.len() == total,
        "resume slots must cover the grid exactly"
    );

    // Slot table: resumed cells start filled (warning-free — their
    // warnings were surfaced by the original run).
    let mut slots: Vec<Option<CellOutput>> = if resumed.is_empty() {
        (0..total).map(|_| None).collect()
    } else {
        resumed
            .into_iter()
            .map(|record| {
                record.map(|r| CellOutput {
                    lines: r.lines,
                    warnings: Vec::new(),
                    wall_ms: r.wall_ms,
                })
            })
            .collect()
    };
    let resumed_count = slots.iter().filter(|s| s.is_some()).count();
    let pending: Vec<usize> = (0..total).filter(|&i| slots[i].is_none()).collect();
    let pending_count = pending.len();
    let workers = worker_count(cores, scenarios, pending_count);

    let mut emitter = Emitter::new(scenarios[0].output.format, out);
    let mut tracker = PoolProgress::new(total, workers);
    for slot in slots.iter().flatten() {
        tracker.cell_done(slot.wall_ms); // seed the ETA mean
    }
    let started = Instant::now();

    // Release the resumed prefix before any worker starts: replayed lines
    // are ready now, and an all-resumed grid never spawns a thread.
    let mut next_emit = 0usize;
    flush_ready(&mut emitter, &mut slots, &mut next_emit)?;
    if pending_count == 0 {
        return Ok(PoolSummary {
            workers: 0,
            stolen: 0,
            resumed: resumed_count,
        });
    }

    let queues = StealQueues::new(pending, workers);
    let active: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(IDLE)).collect();
    let (tx, rx) = mpsc::channel::<(usize, CellOutput)>();

    let outcome = std::thread::scope(|scope| -> io::Result<()> {
        for w in 0..workers {
            let tx = tx.clone();
            let queues = &queues;
            let active = &active;
            scope.spawn(move || {
                while let Some(cell) = queues.next(w) {
                    active[w].store(cell, Ordering::Relaxed);
                    let output = run_cell(&scenarios[cell]);
                    active[w].store(IDLE, Ordering::Relaxed);
                    if tx.send((cell, output)).is_err() {
                        return; // sequencer bailed; stop quietly
                    }
                }
            });
        }
        drop(tx);

        // The sequencer: checkpoint in completion order, emit in cell
        // order, heartbeat per completion.
        let mut sequence = |slots: &mut Vec<Option<CellOutput>>,
                            next_emit: &mut usize,
                            emitter: &mut Emitter<&mut W>,
                            tracker: &mut PoolProgress|
         -> io::Result<()> {
            for _ in 0..pending_count {
                let Ok((cell, output)) = rx.recv() else {
                    break; // every worker exited (all sends done)
                };
                if let Some(writer) = checkpoint.as_mut() {
                    writer.record(&CellRecord {
                        cell,
                        scenario_id: scenarios[cell].scenario_id(),
                        seed: scenarios[cell].seed,
                        wall_ms: output.wall_ms,
                        lines: output.lines.clone(),
                    })?;
                }
                tracker.cell_done(output.wall_ms);
                tracker.set_stolen(queues.stolen());
                slots[cell] = Some(output);
                flush_ready(emitter, slots, next_emit)?;
                if progress {
                    let snapshot: Vec<Option<usize>> = active
                        .iter()
                        .map(|a| {
                            let v = a.load(Ordering::Relaxed);
                            (v != IDLE).then_some(v)
                        })
                        .collect();
                    eprintln!(
                        "{}",
                        tracker.heartbeat(
                            &scenarios[cell].scenario_id(),
                            started.elapsed().as_secs_f64(),
                            &snapshot,
                        )
                    );
                }
            }
            Ok(())
        };
        let run = sequence(&mut slots, &mut next_emit, &mut emitter, &mut tracker);
        if run.is_err() {
            // Stop workers from burning cores on output nobody will read.
            queues.abort();
        }
        run
    });
    outcome?;

    debug_assert_eq!(next_emit, total, "every cell must have been released");
    Ok(PoolSummary {
        workers,
        stolen: queues.stolen(),
        resumed: resumed_count,
    })
}

/// Release the longest ready prefix: emit each filled slot at the cursor,
/// surface its warnings, and advance. Slots are `take`n so buffered
/// output frees as soon as it is flushed.
fn flush_ready<W: Write>(
    emitter: &mut Emitter<W>,
    slots: &mut [Option<CellOutput>],
    next_emit: &mut usize,
) -> io::Result<()> {
    while *next_emit < slots.len() {
        let Some(cell) = slots[*next_emit].take() else {
            break;
        };
        for line in &cell.lines {
            emitter.emit_rendered(line)?;
        }
        for warning in &cell.warnings {
            eprintln!("warning: {warning}");
        }
        *next_emit += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioBuilder;

    #[test]
    fn worker_count_partitions_the_core_budget_by_the_widest_cell() {
        let narrow = ScenarioBuilder::new().finish().unwrap(); // threads = 1
        let narrow = std::slice::from_ref(&narrow);
        assert_eq!(worker_count(1, narrow, 10), 1);
        assert_eq!(worker_count(4, narrow, 10), 4);
        assert_eq!(worker_count(4, narrow, 2), 2, "capped at pending");
        assert_eq!(worker_count(4, narrow, 0), 1, "degenerate but nonzero");
        // Inner threads shrink the cell-level parallelism. (The builder's
        // thread count is clamped to this machine's parallelism when the
        // cell runs, so derive the expectation from the same clamp.)
        let wide = ScenarioBuilder::new().sync_scheduler(4).finish().unwrap();
        let widest = wide.scheduler.effective_threads();
        let wide = std::slice::from_ref(&wide);
        assert_eq!(worker_count(8, wide, 10), (8 / widest).min(10));
        assert_eq!(worker_count(1, wide, 10), 1, "budget below one cell");
    }

    #[test]
    fn steal_queues_hand_out_every_cell_exactly_once() {
        for workers in [1usize, 2, 3, 7] {
            let queues = StealQueues::new((0..20).collect(), workers);
            let seen = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let queues = &queues;
                    let seen = &seen;
                    scope.spawn(move || {
                        while let Some(cell) = queues.next(w) {
                            seen.lock().unwrap().push(cell);
                        }
                    });
                }
            });
            let mut seen = seen.into_inner().unwrap();
            seen.sort_unstable();
            assert_eq!(seen, (0..20).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn stealing_moves_work_and_counts_it() {
        // Two workers, all cells in worker 0's range: worker 1 must steal
        // everything it runs.
        let queues = StealQueues::new((0..8).collect(), 2);
        {
            // Rig the split: give worker 0 the whole list.
            let mut r0 = queues.ranges[0].lock().unwrap();
            let mut r1 = queues.ranges[1].lock().unwrap();
            *r0 = (0, 8);
            *r1 = (8, 8);
        }
        assert_eq!(queues.next(1), Some(4), "stole the back half [4, 8)");
        assert_eq!(queues.stolen(), 4);
        // Worker 0 still owns the front half.
        assert_eq!(queues.next(0), Some(0));
    }

    #[test]
    fn abort_drains_the_pool() {
        let queues = StealQueues::new((0..4).collect(), 1);
        assert_eq!(queues.next(0), Some(0));
        queues.abort();
        assert_eq!(queues.next(0), None, "aborted pools hand out nothing");
    }

    #[test]
    fn run_cell_renders_the_sweep_in_seed_order_with_ids() {
        let scenario = ScenarioBuilder::new().nodes(16).seeds(2).finish().unwrap();
        let output = run_cell(&scenario);
        assert_eq!(output.lines.len(), 2);
        assert!(output.lines[0].contains("\"scenario_id\":\"ring-uniform-sync-n16-k1-s1\""));
        assert!(output.lines[1].contains("-s2\""));
        assert!(output.warnings.is_empty(), "16-node ring completes");
    }
}
