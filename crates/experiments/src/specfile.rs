//! The dependency-free spec-file format: `key = value` assignments in
//! three sections, describing a whole grid (or a single scenario) in one
//! file — enough to reproduce an entire paper figure with `gossip-sim
//! grid --spec FILE`.
//!
//! ```text
//! # Advert vs uniform across ring and rgg, both schedulers.
//! [scenario]            # base assignments, shared by every cell
//! nodes = 512
//! seed = 42
//! seeds = 5
//!
//! [axis]                # each line is one sweep axis, in nesting order
//! topology = ring, rgg
//! protocol = uniform, advert
//! scheduler = sync, async
//!
//! [output]              # how lines leave the process
//! format = csv
//! ```
//!
//! Rules: blank lines and `#` comments (full-line or trailing) are
//! ignored; section headers are `[scenario]`, `[axis]`, or `[output]`;
//! assignments before any header belong to `[scenario]`. `[scenario]` and
//! `[output]` lines assign one value to a key from the shared vocabulary
//! ([`crate::ASSIGNMENTS`]); `[axis]` lines give a comma-separated value
//! list and declare the grid's axes in nesting order (see
//! [`crate::Grid`] for the expansion order). A file with no `[axis]`
//! section describes a single scenario — exactly what
//! [`Scenario::to_spec`](crate::Scenario::to_spec) emits, which is the
//! round-trip the test suite pins.

use crate::grid::{Axis, Grid};
use crate::spec::{assignment, ScenarioBuilder, SpecError};

#[derive(Clone, Copy, PartialEq)]
enum Section {
    Scenario,
    Axis,
    Output,
}

/// Parse a spec file into a [`Grid`] (axisless files yield a one-cell
/// grid). Accumulates **all** syntax and assignment errors rather than
/// stopping at the first; cross-field validation then happens in
/// [`Grid::expand`].
pub fn parse_spec(text: &str) -> Result<Grid, Vec<SpecError>> {
    let mut builder = ScenarioBuilder::new();
    let mut axes: Vec<Axis> = Vec::new();
    let mut errors: Vec<SpecError> = Vec::new();
    let mut section = Section::Scenario;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(at) => &raw[..at],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = match name.trim() {
                "scenario" => Section::Scenario,
                "axis" => Section::Axis,
                "output" => Section::Output,
                other => {
                    errors.push(SpecError::UnknownSection {
                        line: line_no,
                        name: other.to_string(),
                    });
                    continue;
                }
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            errors.push(SpecError::Malformed {
                line: line_no,
                text: line.to_string(),
            });
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        if key.is_empty() || value.is_empty() {
            errors.push(SpecError::Malformed {
                line: line_no,
                text: line.to_string(),
            });
            continue;
        }
        match section {
            Section::Scenario | Section::Output => {
                // Keys outside the run scope (the bench-only round
                // budget) must not silently vanish into the builder.
                if assignment(key).is_some_and(|def| !def.run) {
                    errors.push(SpecError::Conflict {
                        reason: format!(
                            "spec line {line_no}: '{key}' is bench-only and has no effect \
                             in a spec file"
                        ),
                    });
                } else {
                    builder.set(key, value);
                }
            }
            Section::Axis => {
                axes.push(Axis {
                    key: key.to_string(),
                    values: value.split(',').map(|v| v.trim().to_string()).collect(),
                });
            }
        }
    }

    if !errors.is_empty() {
        return Err(errors);
    }
    let mut grid = Grid::new(builder);
    for axis in axes {
        grid.push_axis(axis);
    }
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Scenario;

    #[test]
    fn a_full_spec_parses_into_a_grid() {
        let grid = parse_spec(
            "# paper figure\n\
             [scenario]\n\
             nodes = 64      # small cells\n\
             seed = 7\n\
             \n\
             [axis]\n\
             topology = ring, grid\n\
             protocol = uniform, advert\n\
             scheduler = sync, async\n\
             \n\
             [output]\n\
             format = csv\n",
        )
        .expect("valid spec");
        assert_eq!(grid.cells(), 8);
        let cells = grid.expand().unwrap();
        assert_eq!(cells.len(), 8);
        assert!(cells.iter().all(|s| s.nodes == 64 && s.seed == 7));
        assert_eq!(
            cells[0].output.format,
            crate::OutputFormat::Csv,
            "output section applies to every cell"
        );
        // First cell: all axes at their first value.
        assert_eq!(cells[0].topology.name(), "ring");
        assert_eq!(cells[0].protocol.name(), "uniform");
        assert_eq!(cells[0].scheduler.name(), "sync");
        // Last axis (scheduler) varies fastest.
        assert_eq!(cells[1].scheduler.name(), "async");
        assert_eq!(cells[1].topology.name(), "ring");
    }

    #[test]
    fn assignments_before_any_header_are_scenario_assignments() {
        let grid = parse_spec("nodes = 32\ntopology = grid\n").unwrap();
        let cells = grid.expand().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].nodes, 32);
        assert_eq!(cells[0].topology.name(), "grid");
    }

    #[test]
    fn syntax_errors_accumulate_with_line_numbers() {
        let errors = parse_spec(
            "[scenario]\n\
             nodes 64\n\
             [warp]\n\
             topology = ring\n\
             = 5\n",
        )
        .unwrap_err();
        assert_eq!(errors.len(), 3, "{errors:?}");
        assert!(matches!(errors[0], SpecError::Malformed { line: 2, .. }));
        assert!(matches!(
            errors[1],
            SpecError::UnknownSection { line: 3, .. }
        ));
        assert!(matches!(errors[2], SpecError::Malformed { line: 5, .. }));
    }

    #[test]
    fn bench_only_keys_are_rejected_rather_than_dropped() {
        let errors = parse_spec("[scenario]\nrounds = 50\n").unwrap_err();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].to_string().contains("bench-only"), "{errors:?}");
    }

    #[test]
    fn bad_assignments_surface_at_expand_time() {
        let grid = parse_spec("[scenario]\nnodes = many\n").unwrap();
        let err = grid.expand().unwrap_err();
        assert!(err.to_string().contains("'many'"), "{err}");
    }

    #[test]
    fn scenario_to_spec_round_trips() {
        let mut builder = ScenarioBuilder::new();
        builder
            .set("topology", "rgg")
            .set("radius", "0.25")
            .set("nodes", "80")
            .set("protocol", "advert")
            .set("scheduler", "async")
            .set("drift", "0.2")
            .set("min-latency", "16")
            .set("max-latency", "128")
            .set("seed", "9")
            .set("seeds", "3")
            .set("churn-rate", "0.1")
            .set("rejoin", "lose")
            .set("format", "json")
            .set("history", "true");
        let scenario = builder.finish().expect("valid scenario");
        let spec = scenario.to_spec();
        let reparsed = parse_spec(&spec).expect("emitted specs parse");
        assert_eq!(reparsed.expand().unwrap(), vec![scenario]);
    }

    #[test]
    fn the_default_scenario_round_trips_too() {
        let scenario = Scenario::default();
        let cells = parse_spec(&scenario.to_spec()).unwrap().expand().unwrap();
        assert_eq!(cells, vec![scenario]);
    }
}
