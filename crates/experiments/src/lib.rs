//! Typed, library-first experiment API for mobile telephone model gossip.
//!
//! Every experiment in the source paper (Newport, PODC 2017) — and its
//! asynchronous and dynamic follow-ups — is one point in a grid: topology
//! × protocol × scheduler × dynamics × seed. This crate makes that space
//! a first-class, typed value instead of a pile of CLI strings:
//!
//! - **Specs** ([`spec`]): [`TopologySpec`], [`ProtocolSpec`],
//!   [`SchedulerSpec`], [`DynamicsSpec`], and [`OutputSpec`] compose into
//!   a validated [`Scenario`] via [`ScenarioBuilder`], which accumulates
//!   structured [`SpecError`]s instead of failing fast. A scenario owns
//!   its whole execution: [`Scenario::run`] builds the topology, sources,
//!   dynamics, and scheduler, and [`Scenario::sweep_timed_iter`] streams
//!   a multi-seed sweep.
//! - **Grids** ([`grid`]): [`Axis`] lists over the shared `key = value`
//!   vocabulary ([`ASSIGNMENTS`]) expand — in a documented deterministic
//!   order — into scenario cells, each stamped with a stable
//!   [`Scenario::scenario_id`]. A grid cell's result is byte-identical to
//!   the same scenario run standalone, by construction and by test.
//! - **Spec files** ([`specfile`]): a dependency-free, section-based
//!   `key = value` format ([`parse_spec`]) so one file reproduces an
//!   entire paper figure; [`Scenario::to_spec`] writes the same format
//!   back (round-trip enforced by tests).
//! - **Emission** ([`emit`]): the one-JSON-line / one-CSV-row-per-run
//!   serializers behind an [`Emitter`], versioned with a `schema` field,
//!   shared by run, grid, and bench front-ends.
//! - **Bench** ([`mod@bench`]): fixed-round-budget engine timing over the
//!   same scenario specs, so benchmarks cannot drift from experiments.
//! - **Parallel execution** ([`pool`]): a work-stealing cell pool that
//!   runs independent grid cells concurrently under a global core budget
//!   while a sequencer keeps stdout byte-identical to the serial grid;
//!   [`checkpoint`] makes long sweeps crash-safe (fsync'd per-cell JSONL
//!   records, verified replay on `--resume`).
//! - **Soak** ([`soak`]): re-measure committed `BENCH_*.json` baselines
//!   and fail on throughput regressions beyond a tolerance.
//!
//! The `gossip-sim` binary is a thin flag-parsing front-end over this
//! crate; any downstream tool can drive the identical experiment surface
//! without shelling out.

pub mod bench;
pub mod checkpoint;
pub mod emit;
pub mod grid;
pub mod pool;
pub mod soak;
pub mod spec;
pub mod specfile;

pub use bench::{
    bench_to_json, run_bench, BenchReport, BenchScenario, EnginePhases, PhaseMs, SliceMs,
    BENCH_SCHEMA_VERSION, DEFAULT_BENCH_ROUNDS,
};
pub use checkpoint::{
    parse_checkpoint, read_checkpoint, verify_against, CellRecord, Checkpoint, CheckpointWriter,
    CHECKPOINT_SCHEMA_VERSION,
};
pub use emit::{
    csv_header, run_line_csv, run_line_json, to_json, Emitter, RunMeta, SCHEMA_VERSION,
};
pub use grid::{Axis, Grid, GridExpandError};
pub use pool::{execute_grid, run_cell, worker_count, CellOutput, PoolSummary};
pub use soak::{
    parse_baselines, soak_line_json, soak_one, summarize, Baseline, SoakConfig, SoakOutcome,
    SOAK_SCHEMA_VERSION,
};
pub use spec::{
    assignment, effective_threads, join_errors, AssignmentDef, ChurnSpec, DynamicsSpec,
    MembershipSpec, OutputFormat, OutputSpec, ProtocolSpec, Scenario, ScenarioBuilder,
    SchedulerSpec, SpecError, TopologySpec, ASSIGNMENTS, SOURCES_SEED_SALT, TOPOLOGY_SEED_SALT,
};
pub use specfile::parse_spec;
