//! Typed experiment specifications and the [`ScenarioBuilder`].
//!
//! A [`Scenario`] is one fully validated point in the experiment space the
//! papers explore: topology × protocol × scheduler × dynamics × seed. Its
//! fields are enums and structs, not strings — `TopologySpec::Rgg {
//! radius }` instead of `topology: "rgg"` — so downstream code (the CLI,
//! grids, future Byzantine/tag-budget axes) extends the space by adding
//! variants, not by teaching every front-end a new magic string.
//!
//! Construction goes through [`ScenarioBuilder`], which accepts both typed
//! setters and stringly `key = value` assignments (the shared vocabulary of
//! CLI flags, spec files, and grid axes — see [`ASSIGNMENTS`]) and
//! **accumulates** structured [`SpecError`]s instead of failing on the
//! first problem, so a user fixing a spec sees every mistake at once.

use gossip_core::{NodeId, RggGeometry, Rng, TimingConfig, Topology};
use gossip_dynamics::{
    Churn, CompositeDynamics, DynamicsModel, EdgeFading, RejoinPolicy, Waypoint,
    DEFAULT_MEAN_DOWNTIME_ROUNDS, DEFAULT_SPEED_PER_ROUND,
};
use gossip_protocols::GossipProtocol;
use gossip_sim::{
    default_round_cap, random_sources, AsyncScheduler, MembershipConfig, Scheduler, SimConfig,
    SimResult, SyncScheduler,
};
use gossip_telemetry::{NoopProbe, Probe};

use crate::emit::RunMeta;
use std::time::Instant;

/// Seed salt for topology construction, preserved from the original CLI so
/// every randomized topology (and therefore every pinned result) is
/// byte-identical across the refactor.
pub const TOPOLOGY_SEED_SALT: u64 = 0x7090;

/// Seed salt for source placement; same preservation story as
/// [`TOPOLOGY_SEED_SALT`].
pub const SOURCES_SEED_SALT: u64 = 0x50_0c_e5;

/// A structured specification error. The builder accumulates these —
/// every bad assignment and cross-field conflict in one pass — and each
/// variant keeps the offending key/value so front-ends can point at the
/// exact flag, spec-file line, or axis entry that caused it.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// `key`'s value is not in its accepted set of names.
    UnknownValue {
        key: String,
        value: String,
        expected: String,
    },
    /// `key`'s value does not parse as its type.
    BadValue {
        key: String,
        value: String,
        expected: &'static str,
    },
    /// `key`'s value parsed but fails a range or semantic check.
    OutOfRange { key: String, reason: String },
    /// Two assignments that cannot hold together.
    Conflict { reason: String },
    /// An assignment key that does not exist.
    UnknownKey { key: String },
    /// A spec-file line that is not a section header, an assignment, or a
    /// comment.
    Malformed { line: usize, text: String },
    /// A spec-file section header that is not `[scenario]`, `[axis]`, or
    /// `[output]`.
    UnknownSection { line: usize, name: String },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnknownValue {
                key,
                value,
                expected,
            } => write!(f, "{key}: unknown value '{value}' (expected one of {expected})"),
            SpecError::BadValue {
                key,
                value,
                expected,
            } => write!(f, "{key}: '{value}' is not {expected}"),
            SpecError::OutOfRange { key, reason } => write!(f, "{key}: {reason}"),
            SpecError::Conflict { reason } => write!(f, "{reason}"),
            SpecError::UnknownKey { key } => write!(f, "unknown key '{key}'"),
            SpecError::Malformed { line, text } => {
                write!(f, "spec line {line}: expected 'key = value', got '{text}'")
            }
            SpecError::UnknownSection { line, name } => write!(
                f,
                "spec line {line}: unknown section '[{name}]' (expected [scenario], [axis], or [output])"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Join a batch of spec errors into one human-readable message.
pub fn join_errors(errors: &[SpecError]) -> String {
    errors
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join("; ")
}

/// The topology family of a scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TopologySpec {
    /// Path graph.
    Line,
    /// Cycle graph.
    Ring,
    /// Near-square 4-neighbor lattice.
    Grid,
    /// Complete graph.
    Complete,
    /// Random geometric graph. `radius: None` uses the adaptive builder
    /// (start at the connectivity threshold, grow until connected);
    /// `Some(r)` fixes the connection radius exactly, connected or not.
    Rgg { radius: Option<f64> },
}

impl TopologySpec {
    /// Canonical names, in the order help text lists them. The historical
    /// alias `random_geometric` is accepted by [`parse`](Self::parse) but
    /// normalized to `rgg` everywhere else, so emitted results always
    /// round-trip through one canonical name.
    pub const NAMES: &'static [&'static str] = &["line", "ring", "grid", "complete", "rgg"];

    /// Parse a topology name, normalizing the `random_geometric` alias.
    pub fn parse(name: &str) -> Option<TopologySpec> {
        match name {
            "line" => Some(TopologySpec::Line),
            "ring" => Some(TopologySpec::Ring),
            "grid" => Some(TopologySpec::Grid),
            "complete" => Some(TopologySpec::Complete),
            "rgg" | "random_geometric" => Some(TopologySpec::Rgg { radius: None }),
            _ => None,
        }
    }

    /// The canonical name (radius-independent).
    pub fn name(&self) -> &'static str {
        match self {
            TopologySpec::Line => "line",
            TopologySpec::Ring => "ring",
            TopologySpec::Grid => "grid",
            TopologySpec::Complete => "complete",
            TopologySpec::Rgg { .. } => "rgg",
        }
    }

    /// Is this a random geometric graph (the only family with an
    /// embedding, and therefore the only one mobility and `radius` apply
    /// to)?
    pub fn is_rgg(&self) -> bool {
        matches!(self, TopologySpec::Rgg { .. })
    }

    /// Build the topology for a run with seed `seed`. Randomized
    /// topologies draw from a stream forked off the run seed
    /// ([`TOPOLOGY_SEED_SALT`]), so the whole experiment stays a pure
    /// function of the scenario.
    pub fn build(&self, nodes: usize, seed: u64) -> (Topology, Option<RggGeometry>) {
        match self {
            TopologySpec::Line => (Topology::line(nodes), None),
            TopologySpec::Ring => (Topology::ring(nodes), None),
            TopologySpec::Grid => (Topology::grid(nodes), None),
            TopologySpec::Complete => (Topology::complete(nodes), None),
            TopologySpec::Rgg { radius } => {
                let mut rng = Rng::new(seed ^ TOPOLOGY_SEED_SALT);
                let (topo, geometry) = match radius {
                    None => Topology::random_geometric_with_geometry(nodes, &mut rng),
                    Some(r) => Topology::random_geometric_fixed_radius(nodes, *r, &mut rng),
                };
                (topo, Some(geometry))
            }
        }
    }
}

/// The gossip protocol of a scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProtocolSpec {
    /// Blind uniform random spread.
    Uniform,
    /// Advertisement-guided (productive) gossip.
    Advert,
}

impl ProtocolSpec {
    /// Canonical names, in the order help text lists them — aliased to
    /// the protocol crate's own registry so the two cannot drift (a test
    /// checks [`parse`](Self::parse) covers every entry).
    pub const NAMES: &'static [&'static str] = gossip_protocols::PROTOCOL_NAMES;

    /// Parse a protocol name.
    pub fn parse(name: &str) -> Option<ProtocolSpec> {
        match name {
            "uniform" => Some(ProtocolSpec::Uniform),
            "advert" => Some(ProtocolSpec::Advert),
            _ => None,
        }
    }

    /// The canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolSpec::Uniform => "uniform",
            ProtocolSpec::Advert => "advert",
        }
    }

    /// Instantiate the protocol, through the protocol crate's own
    /// registry.
    pub fn build(&self) -> Box<dyn GossipProtocol> {
        gossip_protocols::by_name(self.name())
            .expect("ProtocolSpec names are a subset of the protocol registry")
    }
}

/// The execution model of a scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SchedulerSpec {
    /// Synchronized rounds, optionally sharded over worker threads
    /// (thread count never changes results, only throughput).
    Sync { threads: usize },
    /// Event-driven virtual time with the given drift/latency
    /// distributions, executed by the time-sliced engine — optionally
    /// sharded over worker threads (thread count never changes results,
    /// only throughput).
    Async {
        timing: TimingConfig,
        threads: usize,
    },
}

impl SchedulerSpec {
    /// Canonical names, in the order help text lists them.
    pub const NAMES: &'static [&'static str] = &["sync", "async"];

    /// The canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerSpec::Sync { .. } => "sync",
            SchedulerSpec::Async { .. } => "async",
        }
    }

    /// Worker threads this spec will actually run with, after the
    /// [`effective_threads`] clamp.
    pub fn effective_threads(&self) -> usize {
        match self {
            SchedulerSpec::Sync { threads } | SchedulerSpec::Async { threads, .. } => {
                effective_threads(*threads).0
            }
        }
    }

    /// Instantiate the scheduler (thread count clamped to the machine).
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulerSpec::Sync { threads } => {
                Box::new(SyncScheduler::with_threads(effective_threads(*threads).0))
            }
            SchedulerSpec::Async { timing, threads } => Box::new(AsyncScheduler {
                timing: *timing,
                threads: effective_threads(*threads).0,
            }),
        }
    }
}

/// Clamp a requested thread count to the machine's available parallelism.
/// Returns the effective count and, when clamping occurred, a warning for
/// the user. Results never depend on the clamp — the engine is
/// deterministic at any thread count — only throughput does.
pub fn effective_threads(requested: usize) -> (usize, Option<String>) {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if requested > available {
        (
            available,
            Some(format!(
                "--threads {requested} exceeds the machine's available parallelism; \
                 capping at {available} (results are identical, only throughput changes)"
            )),
        )
    } else {
        (requested, None)
    }
}

/// The churn half of a [`DynamicsSpec`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnSpec {
    /// Per-round departure probability, in `(0, 1)`.
    pub rate: f64,
    /// What a rejoining node remembers.
    pub rejoin: RejoinPolicy,
}

impl ChurnSpec {
    /// The churn model this spec builds (downtime uses the shared
    /// default).
    pub fn model(&self) -> Churn {
        Churn {
            rate: self.rate,
            rejoin: self.rejoin,
            mean_downtime: DEFAULT_MEAN_DOWNTIME_ROUNDS,
        }
    }
}

/// How (and whether) the network mutates mid-run. Any validated subset of
/// the three models composes; the merged mutation stream stays
/// seed-deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct DynamicsSpec {
    /// Node churn, if enabled.
    pub churn: Option<ChurnSpec>,
    /// Per-round edge fade probability, if fading is enabled.
    pub fade_prob: Option<f64>,
    /// Random-waypoint mobility over the RGG embedding.
    pub mobility: bool,
}

impl DynamicsSpec {
    /// Does this spec leave the topology frozen?
    pub fn is_static(&self) -> bool {
        self.churn.is_none() && self.fade_prob.is_none() && !self.mobility
    }

    /// The fading model implied by the spec, if fading is enabled.
    pub fn fading_model(&self) -> Option<EdgeFading> {
        self.fade_prob.map(|fade_prob| EdgeFading {
            fade_prob,
            mean_downtime: 1.0,
        })
    }

    /// Build the composite dynamics model: churn, fading, and mobility
    /// merged into one time-ordered mutation stream. `None` when static.
    pub fn build(&self, geometry: Option<&RggGeometry>) -> Option<Box<dyn DynamicsModel>> {
        let mut parts: Vec<Box<dyn DynamicsModel>> = Vec::new();
        if let Some(churn) = &self.churn {
            parts.push(Box::new(churn.model()));
        }
        if let Some(fading) = self.fading_model() {
            parts.push(Box::new(fading));
        }
        if self.mobility {
            let geometry = geometry
                .expect("spec validation only admits mobility with an RGG topology")
                .clone();
            parts.push(Box::new(Waypoint {
                geometry,
                speed: DEFAULT_SPEED_PER_ROUND,
            }));
        }
        match parts.len() {
            0 => None,
            1 => parts.pop(),
            _ => Some(Box::new(CompositeDynamics { parts })),
        }
    }
}

/// Which neighborhoods the protocol gossips over.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum MembershipSpec {
    /// Full knowledge: every node gossips over its complete underlay
    /// neighbor list, exactly as in pre-membership builds. The default —
    /// it adds no membership state and serializes nothing extra.
    #[default]
    Full,
    /// Discovered neighborhoods: a bounded HyParView-style partial view
    /// (symmetric active view + passive reservoir, refreshed by
    /// deterministic shuffles) with SWIM-style probe → suspect → evict
    /// failure detection, ticked at round/slice boundaries. The protocol
    /// then sees only each node's active view.
    HyParView {
        /// Active (gossip) view capacity per node.
        active: usize,
        /// Passive (reservoir) view capacity per node.
        passive: usize,
        /// Ticks between shuffle rounds (1 = every round).
        shuffle_period: u64,
        /// Ticks between failure-detector probes (1 = every round).
        probe_period: u64,
    },
}

impl MembershipSpec {
    /// Canonical names, in the order help text lists them.
    pub const NAMES: &'static [&'static str] = &["full", "hyparview"];

    /// The canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            MembershipSpec::Full => "full",
            MembershipSpec::HyParView { .. } => "hyparview",
        }
    }

    /// Does this spec gossip over the full underlay (no overlay state)?
    pub fn is_full(&self) -> bool {
        matches!(self, MembershipSpec::Full)
    }

    /// The engine-level membership config, `None` for full knowledge.
    pub fn to_config(&self) -> Option<MembershipConfig> {
        match *self {
            MembershipSpec::Full => None,
            MembershipSpec::HyParView {
                active,
                passive,
                shuffle_period,
                probe_period,
            } => Some(MembershipConfig {
                active_size: active,
                passive_size: passive,
                shuffle_period,
                probe_period,
            }),
        }
    }
}

/// How results leave the process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OutputFormat {
    /// One self-contained JSON object per run.
    Json,
    /// A header row plus one CSV row per run.
    Csv,
}

impl OutputFormat {
    /// Canonical names, in the order help text lists them.
    pub const NAMES: &'static [&'static str] = &["json", "csv"];

    /// Parse a format name.
    pub fn parse(name: &str) -> Option<OutputFormat> {
        match name {
            "json" => Some(OutputFormat::Json),
            "csv" => Some(OutputFormat::Csv),
            _ => None,
        }
    }

    /// The canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            OutputFormat::Json => "json",
            OutputFormat::Csv => "csv",
        }
    }
}

/// Output shape of a scenario's runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutputSpec {
    pub format: OutputFormat,
    /// Include per-round stats in the JSON (`rounds` array).
    pub history: bool,
}

impl Default for OutputSpec {
    fn default() -> Self {
        OutputSpec {
            format: OutputFormat::Json,
            history: false,
        }
    }
}

/// One fully validated experiment: a point in the topology × protocol ×
/// scheduler × dynamics × seed space, plus execution and output knobs.
/// Built via [`ScenarioBuilder`]; every instance that exists has passed
/// cross-field validation.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    pub topology: TopologySpec,
    pub nodes: usize,
    pub protocol: ProtocolSpec,
    pub scheduler: SchedulerSpec,
    pub messages: usize,
    pub seed: u64,
    /// Number of consecutive seeds to sweep, starting at `seed`.
    pub seeds: usize,
    /// Round cap; `None` uses [`gossip_sim::default_round_cap`].
    pub max_rounds: Option<usize>,
    pub dynamics: DynamicsSpec,
    pub membership: MembershipSpec,
    pub output: OutputSpec,
}

impl Default for Scenario {
    fn default() -> Self {
        ScenarioBuilder::new()
            .finish()
            .expect("the default scenario is valid")
    }
}

impl Scenario {
    /// A builder seeded with the defaults.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// This scenario with a different run seed (how sweeps and grids stamp
    /// per-run identity).
    pub fn with_seed(&self, seed: u64) -> Scenario {
        Scenario {
            seed,
            ..self.clone()
        }
    }

    /// Does this scenario run over a mutating network?
    pub fn is_dynamic(&self) -> bool {
        !self.dynamics.is_static()
    }

    /// The engine config implied by the scenario.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            max_rounds: self.max_rounds.unwrap_or(default_round_cap(self.nodes)),
            record_rounds: self.output.history,
        }
    }

    /// Source placement for this scenario's seed (salt preserved from the
    /// original CLI, so results are byte-identical across the refactor).
    pub fn sources(&self) -> Vec<NodeId> {
        random_sources(
            self.nodes,
            self.messages,
            &mut Rng::new(self.seed ^ SOURCES_SEED_SALT),
        )
    }

    /// The **stable cell identity** of this scenario, stamped on every
    /// emitted run line. Every result-affecting field appears — topology
    /// (with an explicit radius as `rgg@rR`), protocol, scheduler (async
    /// includes its timing distributions), nodes, messages, round cap,
    /// dynamics, seed — while execution-only knobs (thread count, output
    /// format) are excluded, so two runs with equal ids are the same
    /// deterministic experiment by construction.
    pub fn scenario_id(&self) -> String {
        let mut id = String::with_capacity(64);
        match &self.topology {
            TopologySpec::Rgg { radius: Some(r) } => {
                id.push_str("rgg@r");
                id.push_str(&r.to_string());
            }
            t => id.push_str(t.name()),
        }
        id.push('-');
        id.push_str(self.protocol.name());
        match &self.scheduler {
            SchedulerSpec::Sync { .. } => id.push_str("-sync"),
            // `threads` is execution-only (never changes results), so it
            // stays out of the id just like the sync thread count.
            SchedulerSpec::Async { timing, .. } => {
                id.push_str(&format!(
                    "-async@d{}j{}l{}:{}",
                    timing.drift, timing.refresh_jitter, timing.min_latency, timing.max_latency
                ));
            }
        }
        id.push_str(&format!("-n{}-k{}", self.nodes, self.messages));
        if let Some(cap) = self.max_rounds {
            id.push_str(&format!("-cap{cap}"));
        }
        if let Some(churn) = &self.dynamics.churn {
            id.push_str(&format!("-churn{}:{}", churn.rate, churn.rejoin.name()));
        }
        if let Some(fade) = self.dynamics.fade_prob {
            id.push_str(&format!("-fade{fade}"));
        }
        if self.dynamics.mobility {
            id.push_str("-mobility");
        }
        if let MembershipSpec::HyParView {
            active,
            passive,
            shuffle_period,
            probe_period,
        } = &self.membership
        {
            id.push_str(&format!(
                "-mem@a{active}p{passive}sh{shuffle_period}pr{probe_period}"
            ));
        }
        id.push_str(&format!("-s{}", self.seed));
        id
    }

    /// Run this scenario end to end for its own seed (ignoring the sweep
    /// width; see [`sweep_timed_iter`](Self::sweep_timed_iter)). Static
    /// configs take the dynamics-free fast path, whose output is
    /// bit-for-bit that of pre-dynamics builds.
    pub fn run(&self) -> SimResult {
        self.run_probed(&mut NoopProbe)
    }

    /// [`run`](Self::run) under observation: every semantic event of the
    /// run — proposals, connections, rejections, transfers, mutations,
    /// round/slice boundaries — is reported to `probe` in one
    /// deterministic order. The probe never consumes engine randomness,
    /// so the returned [`SimResult`] is byte-identical to an unprobed
    /// run of the same scenario at any thread count.
    pub fn run_probed(&self, probe: &mut dyn Probe) -> SimResult {
        let (topology, geometry) = self.topology.build(self.nodes, self.seed);
        let protocol = self.protocol.build();
        let scheduler = self.scheduler.build();
        let sources = self.sources();
        let sim_cfg = self.sim_config();
        match (
            self.dynamics.build(geometry.as_ref()),
            self.membership.to_config(),
        ) {
            (None, None) => scheduler.run_probed(
                &topology,
                protocol.as_ref(),
                &sources,
                self.seed,
                &sim_cfg,
                probe,
            ),
            (Some(dynamics), None) => scheduler.run_dynamic_probed(
                &topology,
                dynamics.as_ref(),
                protocol.as_ref(),
                &sources,
                self.seed,
                &sim_cfg,
                probe,
            ),
            (None, Some(membership)) => scheduler.run_membership_probed(
                &topology,
                &membership,
                protocol.as_ref(),
                &sources,
                self.seed,
                &sim_cfg,
                probe,
            ),
            (Some(dynamics), Some(membership)) => scheduler.run_dynamic_membership_probed(
                &topology,
                dynamics.as_ref(),
                &membership,
                protocol.as_ref(),
                &sources,
                self.seed,
                &sim_cfg,
                probe,
            ),
        }
    }

    /// Run the configured sweep lazily: `seeds` consecutive seeds starting
    /// at `seed`, each a fully independent experiment (randomized
    /// topologies and source placement are re-drawn per seed), yielded in
    /// seed order with per-run wall-clock metadata — so consumers can
    /// stream one output line per run without buffering the sweep.
    pub fn sweep_timed_iter(&self) -> impl Iterator<Item = (SimResult, RunMeta)> + '_ {
        let threads = self.scheduler.effective_threads();
        (0..self.seeds as u64).map(move |offset| {
            let one = self.with_seed(self.seed.wrapping_add(offset));
            let started = Instant::now();
            let result = one.run();
            let meta = RunMeta {
                threads,
                wall_ms: started.elapsed().as_millis() as u64,
            };
            (result, meta)
        })
    }

    /// [`sweep_timed_iter`](Self::sweep_timed_iter) without the metadata,
    /// collected.
    pub fn run_sweep(&self) -> Vec<SimResult> {
        self.sweep_timed_iter().map(|(result, _)| result).collect()
    }

    /// Serialize this scenario as a spec file ([`crate::parse_spec`]
    /// reads it back to an equal scenario — the round-trip property the
    /// test suite enforces). Scheduler-irrelevant knobs (async timing
    /// under a sync scheduler) do not survive the typed spec, so they
    /// never appear here either.
    pub fn to_spec(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("[scenario]\n");
        let mut kv = |key: &str, value: String| {
            out.push_str(key);
            out.push_str(" = ");
            out.push_str(&value);
            out.push('\n');
        };
        kv("topology", self.topology.name().to_string());
        if let TopologySpec::Rgg { radius: Some(r) } = &self.topology {
            kv("radius", r.to_string());
        }
        kv("nodes", self.nodes.to_string());
        kv("protocol", self.protocol.name().to_string());
        kv("scheduler", self.scheduler.name().to_string());
        match &self.scheduler {
            SchedulerSpec::Sync { threads } => kv("threads", threads.to_string()),
            SchedulerSpec::Async { timing, threads } => {
                kv("threads", threads.to_string());
                kv("drift", timing.drift.to_string());
                kv("refresh-jitter", timing.refresh_jitter.to_string());
                kv("min-latency", timing.min_latency.to_string());
                kv("max-latency", timing.max_latency.to_string());
            }
        }
        kv("messages", self.messages.to_string());
        kv("seed", self.seed.to_string());
        kv("seeds", self.seeds.to_string());
        if let Some(cap) = self.max_rounds {
            kv("max-rounds", cap.to_string());
        }
        if let Some(churn) = &self.dynamics.churn {
            kv("churn-rate", churn.rate.to_string());
            kv("rejoin", churn.rejoin.name().to_string());
        }
        if let Some(fade) = self.dynamics.fade_prob {
            kv("fade-prob", fade.to_string());
        }
        if self.dynamics.mobility {
            kv("mobility", "true".to_string());
        }
        if let MembershipSpec::HyParView {
            active,
            passive,
            shuffle_period,
            probe_period,
        } = &self.membership
        {
            kv("membership", "hyparview".to_string());
            kv("active-view", active.to_string());
            kv("passive-view", passive.to_string());
            kv("shuffle-period", shuffle_period.to_string());
            kv("probe-period", probe_period.to_string());
        }
        out.push_str("\n[output]\n");
        out.push_str(&format!("format = {}\n", self.output.format.name()));
        if self.output.history {
            out.push_str("history = true\n");
        }
        out
    }
}

/// One entry of the shared assignment vocabulary: a canonical key, its
/// value shape, and its help text. CLI flags (`--key value`), spec-file
/// assignments (`key = value`), and grid axes (`key = v1, v2`) all speak
/// exactly this table, so the parser, the spec format, and the generated
/// help text cannot diverge.
#[derive(Clone, Copy, Debug)]
pub struct AssignmentDef {
    /// Canonical key (CLI flag name without the `--`).
    pub key: &'static str,
    /// Value placeholder for help text; `None` marks a boolean switch
    /// (spec files write `key = true`, the CLI just passes the flag).
    pub metavar: Option<&'static str>,
    /// Help text; embedded newlines become aligned continuation lines.
    pub help: &'static str,
    /// Accepted by `run`/`grid` (everything except the bench-only round
    /// budget).
    pub run: bool,
    /// Accepted by the `bench` subcommand.
    pub bench: bool,
    /// Usable as a grid axis (output knobs are not: a grid streams one
    /// format).
    pub axis: bool,
}

/// The shared assignment table. Order is the order help text lists flags.
pub const ASSIGNMENTS: &[AssignmentDef] = &[
    AssignmentDef {
        key: "topology",
        metavar: Some("line|ring|grid|complete|rgg"),
        help: "topology family [default: ring]\n(rgg = random_geometric)",
        run: true,
        bench: true,
        axis: true,
    },
    AssignmentDef {
        key: "nodes",
        metavar: Some("N"),
        help: "number of nodes [default: 100]",
        run: true,
        bench: true,
        axis: true,
    },
    AssignmentDef {
        key: "protocol",
        metavar: Some("uniform|advert"),
        help: "gossip protocol [default: uniform]",
        run: true,
        bench: true,
        axis: true,
    },
    AssignmentDef {
        key: "scheduler",
        metavar: Some("sync|async"),
        help: "execution model: synchronized rounds\nor event-driven virtual time [default: sync]",
        run: true,
        bench: true,
        axis: true,
    },
    AssignmentDef {
        key: "messages",
        metavar: Some("K"),
        help: "rumors to spread (>64 uses\nhashed advertisement tags) [default: 1]",
        run: true,
        bench: true,
        axis: true,
    },
    AssignmentDef {
        key: "seed",
        metavar: Some("S"),
        help: "RNG seed [default: 1]",
        run: true,
        bench: true,
        axis: true,
    },
    AssignmentDef {
        key: "seeds",
        metavar: Some("N"),
        help: "sweep N consecutive seeds starting at\nseed, one output line each [default: 1]",
        run: true,
        bench: false,
        axis: true,
    },
    AssignmentDef {
        key: "max-rounds",
        metavar: Some("R"),
        help: "round cap; the async scheduler reads it\nas the equivalent virtual-time cap\n[default: 100 + 60*N]",
        run: true,
        bench: false,
        axis: true,
    },
    AssignmentDef {
        key: "threads",
        metavar: Some("T"),
        help: "shard the sync round loop / sliced async\nevent loop over T worker threads (results\nare identical at any thread count; capped\nat the machine's available parallelism)\n[default: 1]",
        run: true,
        bench: true,
        axis: true,
    },
    AssignmentDef {
        key: "radius",
        metavar: Some("F"),
        help: "rgg only: fix the connection radius\ninstead of growing it to the connectivity\nthreshold (may disconnect the graph)",
        run: true,
        bench: true,
        axis: true,
    },
    AssignmentDef {
        key: "drift",
        metavar: Some("F"),
        help: "async: max relative clock drift,\n0 <= F < 1 [default: 0.1]",
        run: true,
        bench: true,
        axis: true,
    },
    AssignmentDef {
        key: "refresh-jitter",
        metavar: Some("F"),
        help: "async: per-refresh advertisement interval\njitter, 0 <= F < 1 [default: 0.25]",
        run: true,
        bench: true,
        axis: true,
    },
    AssignmentDef {
        key: "min-latency",
        metavar: Some("T"),
        help: "async: min connect/transfer latency in\nticks (1024 ticks = 1 round) [default: 32]",
        run: true,
        bench: true,
        axis: true,
    },
    AssignmentDef {
        key: "max-latency",
        metavar: Some("T"),
        help: "async: max connect/transfer latency in\nticks [default: 256]",
        run: true,
        bench: true,
        axis: true,
    },
    AssignmentDef {
        key: "churn-rate",
        metavar: Some("F"),
        help: "nodes churn: depart with per-round\nprobability F (geometric lifetimes),\n0 < F < 1 [default: off]",
        run: true,
        bench: false,
        axis: true,
    },
    AssignmentDef {
        key: "rejoin",
        metavar: Some("keep|lose|none"),
        help: "what a churned node remembers when it\nrejoins; 'none' means departed nodes\nnever return (requires churn-rate)\n[default: keep]",
        run: true,
        bench: false,
        axis: true,
    },
    AssignmentDef {
        key: "fade-prob",
        metavar: Some("F"),
        help: "edges flap: fade with per-round\nprobability F, 0 < F < 1 [default: off]",
        run: true,
        bench: false,
        axis: true,
    },
    AssignmentDef {
        key: "mobility",
        metavar: None,
        help: "random-waypoint mobility: nodes walk the\nunit square and re-derive radius edges\n(rgg topology only; incompatible\nwith fade-prob)",
        run: true,
        bench: false,
        axis: true,
    },
    AssignmentDef {
        key: "membership",
        metavar: Some("full|hyparview"),
        help: "neighborhoods the protocol gossips over:\nthe full underlay neighbor list, or a\nbounded HyParView-style partial view with\nSWIM-style failure detection [default: full]",
        run: true,
        bench: false,
        axis: true,
    },
    AssignmentDef {
        key: "active-view",
        metavar: Some("N"),
        help: "membership: active (gossip) view capacity\nper node (requires membership hyparview)\n[default: 5]",
        run: true,
        bench: false,
        axis: true,
    },
    AssignmentDef {
        key: "passive-view",
        metavar: Some("N"),
        help: "membership: passive reservoir capacity\nper node (requires membership hyparview)\n[default: 30]",
        run: true,
        bench: false,
        axis: true,
    },
    AssignmentDef {
        key: "shuffle-period",
        metavar: Some("R"),
        help: "membership: rounds between view shuffles\n(requires membership hyparview) [default: 1]",
        run: true,
        bench: false,
        axis: true,
    },
    AssignmentDef {
        key: "probe-period",
        metavar: Some("R"),
        help: "membership: rounds between failure-detector\nprobes (requires membership hyparview)\n[default: 1]",
        run: true,
        bench: false,
        axis: true,
    },
    AssignmentDef {
        key: "format",
        metavar: Some("json|csv"),
        help: "output format; csv emits a header row\nplus one row per run [default: json]",
        run: true,
        bench: false,
        axis: false,
    },
    AssignmentDef {
        key: "history",
        metavar: None,
        help: "include per-round stats in the JSON",
        run: true,
        bench: false,
        axis: false,
    },
    AssignmentDef {
        key: "rounds",
        metavar: Some("R"),
        help: "bench round budget: the engine runs\nexactly this many rounds (or fewer if\ngossip completes first) [default: 64]",
        run: false,
        bench: true,
        axis: false,
    },
];

/// Look up an assignment key in [`ASSIGNMENTS`].
pub fn assignment(key: &str) -> Option<&'static AssignmentDef> {
    ASSIGNMENTS.iter().find(|def| def.key == key)
}

/// Internal scheduler selector before the builder assembles a
/// [`SchedulerSpec`].
#[derive(Clone, Copy, Debug, PartialEq)]
enum SchedulerKind {
    Sync,
    Async,
}

/// Accumulating builder for [`Scenario`]s. Setters never fail; every
/// problem — unparseable values, out-of-range numbers, cross-field
/// conflicts — lands in the error list that [`finish`](Self::finish)
/// returns in one batch.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    topology: TopologySpec,
    radius: Option<f64>,
    nodes: usize,
    protocol: ProtocolSpec,
    scheduler: SchedulerKind,
    threads: usize,
    timing: TimingConfig,
    messages: usize,
    seed: u64,
    seeds: usize,
    max_rounds: Option<usize>,
    churn_rate: Option<f64>,
    rejoin: Option<RejoinPolicy>,
    fade_prob: Option<f64>,
    mobility: bool,
    membership_hyparview: bool,
    active_view: Option<usize>,
    passive_view: Option<usize>,
    shuffle_period: Option<usize>,
    probe_period: Option<usize>,
    format: OutputFormat,
    history: bool,
    bench_rounds: Option<usize>,
    errors: Vec<SpecError>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioBuilder {
    /// A builder holding the default scenario: 100-node ring, uniform
    /// gossip, synchronous serial scheduler, one message, seed 1.
    pub fn new() -> Self {
        ScenarioBuilder {
            topology: TopologySpec::Ring,
            radius: None,
            nodes: 100,
            protocol: ProtocolSpec::Uniform,
            scheduler: SchedulerKind::Sync,
            threads: 1,
            timing: TimingConfig::default(),
            messages: 1,
            seed: 1,
            seeds: 1,
            max_rounds: None,
            churn_rate: None,
            rejoin: None,
            fade_prob: None,
            mobility: false,
            membership_hyparview: false,
            active_view: None,
            passive_view: None,
            shuffle_period: None,
            probe_period: None,
            format: OutputFormat::Json,
            history: false,
            bench_rounds: None,
            errors: Vec::new(),
        }
    }

    // ---- typed setters -------------------------------------------------

    pub fn topology(mut self, topology: TopologySpec) -> Self {
        // An Rgg spec carries its radius authoritatively — including
        // `None` (the adaptive builder), which must clear any radius set
        // earlier rather than silently surviving it.
        if let TopologySpec::Rgg { radius } = topology {
            self.radius = radius;
        }
        self.topology = topology;
        self
    }

    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    pub fn protocol(mut self, protocol: ProtocolSpec) -> Self {
        self.protocol = protocol;
        self
    }

    pub fn sync_scheduler(mut self, threads: usize) -> Self {
        self.scheduler = SchedulerKind::Sync;
        self.threads = threads;
        self
    }

    pub fn async_scheduler(mut self, timing: TimingConfig) -> Self {
        self.scheduler = SchedulerKind::Async;
        self.timing = timing;
        self
    }

    pub fn messages(mut self, messages: usize) -> Self {
        self.messages = messages;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn seeds(mut self, seeds: usize) -> Self {
        self.seeds = seeds;
        self
    }

    pub fn max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    pub fn churn(mut self, rate: f64, rejoin: RejoinPolicy) -> Self {
        self.churn_rate = Some(rate);
        self.rejoin = Some(rejoin);
        self
    }

    pub fn fading(mut self, fade_prob: f64) -> Self {
        self.fade_prob = Some(fade_prob);
        self
    }

    pub fn mobility(mut self, mobility: bool) -> Self {
        self.mobility = mobility;
        self
    }

    pub fn membership(mut self, membership: MembershipSpec) -> Self {
        match membership {
            MembershipSpec::Full => {
                self.membership_hyparview = false;
                self.active_view = None;
                self.passive_view = None;
                self.shuffle_period = None;
                self.probe_period = None;
            }
            MembershipSpec::HyParView {
                active,
                passive,
                shuffle_period,
                probe_period,
            } => {
                self.membership_hyparview = true;
                self.active_view = Some(active);
                self.passive_view = Some(passive);
                self.shuffle_period = Some(shuffle_period as usize);
                self.probe_period = Some(probe_period as usize);
            }
        }
        self
    }

    pub fn output(mut self, format: OutputFormat, history: bool) -> Self {
        self.format = format;
        self.history = history;
        self
    }

    /// The bench-only round budget, if `rounds` was assigned (consumed by
    /// the bench front-end; ignored by [`finish`](Self::finish)).
    pub fn bench_rounds(&self) -> Option<usize> {
        self.bench_rounds
    }

    /// The assignment errors accumulated so far (cross-field conflicts
    /// are only discovered in [`finish`](Self::finish)). Grids use this
    /// to report bad *base* assignments once, at grid level, instead of
    /// misattributing them to the first expanded cell.
    pub fn errors(&self) -> &[SpecError] {
        &self.errors
    }

    // ---- stringly assignment (the shared key = value vocabulary) -------

    /// Apply one `key = value` assignment from the shared vocabulary
    /// ([`ASSIGNMENTS`]). Boolean keys take `true`/`false`. Never fails;
    /// problems accumulate for [`finish`](Self::finish).
    pub fn set(&mut self, key: &str, value: &str) -> &mut Self {
        match key {
            "topology" => match TopologySpec::parse(value) {
                Some(spec) => self.topology = spec,
                None => self.unknown_value(key, value, TopologySpec::NAMES),
            },
            "nodes" => {
                if let Some(n) = self.num(key, value) {
                    self.nodes = n;
                    if n == 0 {
                        self.out_of_range(key, "must be at least 1");
                    }
                }
            }
            "protocol" => match ProtocolSpec::parse(value) {
                Some(spec) => self.protocol = spec,
                None => self.unknown_value(key, value, ProtocolSpec::NAMES),
            },
            "scheduler" => match value {
                "sync" => self.scheduler = SchedulerKind::Sync,
                "async" => self.scheduler = SchedulerKind::Async,
                _ => self.unknown_value(key, value, SchedulerSpec::NAMES),
            },
            "messages" => {
                if let Some(k) = self.num(key, value) {
                    self.messages = k;
                    if k == 0 {
                        self.out_of_range(key, "must be at least 1");
                    }
                }
            }
            "seed" => match value.parse::<u64>() {
                Ok(seed) => self.seed = seed,
                Err(_) => self.bad_value(key, value, "a non-negative integer"),
            },
            "seeds" => {
                if let Some(n) = self.num(key, value) {
                    self.seeds = n;
                    if n == 0 {
                        self.out_of_range(key, "must be at least 1");
                    }
                }
            }
            "max-rounds" => {
                if let Some(r) = self.num(key, value) {
                    self.max_rounds = Some(r);
                }
            }
            "threads" => {
                if let Some(t) = self.num(key, value) {
                    self.threads = t;
                    if t == 0 {
                        self.out_of_range(
                            key,
                            "0 is meaningless: the round loop needs at least one worker",
                        );
                    }
                }
            }
            "radius" => {
                if let Some(r) = self.float(key, value) {
                    self.radius = Some(r);
                    if !(r > 0.0 && r.is_finite()) {
                        self.out_of_range(key, "the connection radius must be a positive number");
                    }
                }
            }
            "drift" => {
                if let Some(d) = self.float(key, value) {
                    self.timing.drift = d;
                }
            }
            "refresh-jitter" => {
                if let Some(j) = self.float(key, value) {
                    self.timing.refresh_jitter = j;
                }
            }
            "min-latency" => {
                if let Some(t) = self.num(key, value) {
                    self.timing.min_latency = t as u64;
                }
            }
            "max-latency" => {
                if let Some(t) = self.num(key, value) {
                    self.timing.max_latency = t as u64;
                }
            }
            "churn-rate" => {
                if let Some(rate) = self.float(key, value) {
                    self.churn_rate = Some(rate);
                }
            }
            "rejoin" => match RejoinPolicy::parse(value) {
                Some(policy) => self.rejoin = Some(policy),
                None => self.unknown_value(key, value, RejoinPolicy::NAMES),
            },
            "fade-prob" => {
                if let Some(p) = self.float(key, value) {
                    self.fade_prob = Some(p);
                }
            }
            "mobility" => {
                if let Some(b) = self.boolean(key, value) {
                    self.mobility = b;
                }
            }
            "membership" => match value {
                "full" => self.membership_hyparview = false,
                "hyparview" => self.membership_hyparview = true,
                _ => self.unknown_value(key, value, MembershipSpec::NAMES),
            },
            "active-view" => {
                if let Some(n) = self.num(key, value) {
                    self.active_view = Some(n);
                }
            }
            "passive-view" => {
                if let Some(n) = self.num(key, value) {
                    self.passive_view = Some(n);
                }
            }
            "shuffle-period" => {
                if let Some(n) = self.num(key, value) {
                    self.shuffle_period = Some(n);
                }
            }
            "probe-period" => {
                if let Some(n) = self.num(key, value) {
                    self.probe_period = Some(n);
                }
            }
            "format" => match OutputFormat::parse(value) {
                Some(format) => self.format = format,
                None => self.unknown_value(key, value, OutputFormat::NAMES),
            },
            "history" => {
                if let Some(b) = self.boolean(key, value) {
                    self.history = b;
                }
            }
            "rounds" => {
                if let Some(r) = self.num(key, value) {
                    self.bench_rounds = Some(r);
                    if r == 0 {
                        self.out_of_range(key, "must be at least 1");
                    }
                }
            }
            _ => self.errors.push(SpecError::UnknownKey {
                key: key.to_string(),
            }),
        }
        self
    }

    fn num(&mut self, key: &str, value: &str) -> Option<usize> {
        match value.parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => {
                self.bad_value(key, value, "a non-negative integer");
                None
            }
        }
    }

    fn float(&mut self, key: &str, value: &str) -> Option<f64> {
        match value.parse::<f64>() {
            Ok(f) => Some(f),
            Err(_) => {
                self.bad_value(key, value, "a number");
                None
            }
        }
    }

    fn boolean(&mut self, key: &str, value: &str) -> Option<bool> {
        match value {
            "true" => Some(true),
            "false" => Some(false),
            _ => {
                self.bad_value(key, value, "'true' or 'false'");
                None
            }
        }
    }

    fn bad_value(&mut self, key: &str, value: &str, expected: &'static str) {
        self.errors.push(SpecError::BadValue {
            key: key.to_string(),
            value: value.to_string(),
            expected,
        });
    }

    fn unknown_value(&mut self, key: &str, value: &str, expected: &[&str]) {
        self.errors.push(SpecError::UnknownValue {
            key: key.to_string(),
            value: value.to_string(),
            expected: expected.join(", "),
        });
    }

    fn out_of_range(&mut self, key: &str, reason: &str) {
        self.errors.push(SpecError::OutOfRange {
            key: key.to_string(),
            reason: reason.to_string(),
        });
    }

    // ---- validation ----------------------------------------------------

    /// Cross-field validation and assembly. Returns the scenario, or
    /// **every** accumulated error at once.
    pub fn finish(self) -> Result<Scenario, Vec<SpecError>> {
        let mut errors = self.errors.clone();

        // Assemble the topology spec; an explicit radius only means
        // something on a random geometric graph.
        let topology = match (self.topology, self.radius) {
            (TopologySpec::Rgg { .. }, radius) => TopologySpec::Rgg { radius },
            (other, None) => other,
            (other, Some(_)) => {
                errors.push(SpecError::Conflict {
                    reason: format!(
                        "radius fixes the connection radius of a random geometric graph; \
                         it requires topology rgg, not '{}'",
                        other.name()
                    ),
                });
                other
            }
        };

        // One source of truth for timing ranges: the core validator the
        // async scheduler itself enforces. Checked regardless of the
        // selected scheduler so a bad drift never parses silently.
        if let Err(e) = self.timing.validate() {
            errors.push(SpecError::OutOfRange {
                key: "drift/refresh-jitter/min-latency/max-latency".to_string(),
                reason: e,
            });
        }
        let scheduler = match self.scheduler {
            SchedulerKind::Sync => SchedulerSpec::Sync {
                threads: self.threads,
            },
            SchedulerKind::Async => SchedulerSpec::Async {
                timing: self.timing,
                threads: self.threads,
            },
        };

        // Dynamics: the models' own validators decide what a usable rate
        // is, so no front-end can admit a config the engine panics on (an
        // explicit zero rate is rejected here, not silently ignored).
        let churn = self.churn_rate.map(|rate| ChurnSpec {
            rate,
            rejoin: self.rejoin.unwrap_or_default(),
        });
        if let Some(churn) = &churn {
            if let Err(e) = churn.model().validate() {
                errors.push(SpecError::OutOfRange {
                    key: "churn-rate".to_string(),
                    reason: e,
                });
            }
        } else if self.rejoin.is_some() {
            errors.push(SpecError::Conflict {
                reason: "rejoin requires churn-rate".to_string(),
            });
        }
        let dynamics = DynamicsSpec {
            churn,
            fade_prob: self.fade_prob,
            mobility: self.mobility,
        };
        if let Some(fading) = dynamics.fading_model() {
            if let Err(e) = fading.validate() {
                errors.push(SpecError::OutOfRange {
                    key: "fade-prob".to_string(),
                    reason: e,
                });
            }
        }
        if self.mobility {
            if !topology.is_rgg() {
                errors.push(SpecError::Conflict {
                    reason: format!(
                        "mobility moves nodes of a random geometric graph; \
                         it requires topology rgg, not '{}'",
                        topology.name()
                    ),
                });
            }
            if self.fade_prob.is_some() {
                errors.push(SpecError::Conflict {
                    reason: "mobility rewires the edges that fade-prob would flap; \
                             pick one link-instability model"
                        .to_string(),
                });
            }
        }

        // Membership: view/period knobs only mean something on the
        // HyParView overlay; the crate's own validator decides the usable
        // ranges so no front-end admits a config the engine panics on.
        let membership = if self.membership_hyparview {
            let defaults = MembershipConfig::default();
            let spec = MembershipSpec::HyParView {
                active: self.active_view.unwrap_or(defaults.active_size),
                passive: self.passive_view.unwrap_or(defaults.passive_size),
                shuffle_period: self
                    .shuffle_period
                    .unwrap_or(defaults.shuffle_period as usize)
                    as u64,
                probe_period: self.probe_period.unwrap_or(defaults.probe_period as usize) as u64,
            };
            if let Some(cfg) = spec.to_config() {
                if let Err(e) = cfg.validate() {
                    errors.push(SpecError::OutOfRange {
                        key: "active-view/passive-view/shuffle-period/probe-period".to_string(),
                        reason: e,
                    });
                }
            }
            spec
        } else {
            for (key, set) in [
                ("active-view", self.active_view.is_some()),
                ("passive-view", self.passive_view.is_some()),
                ("shuffle-period", self.shuffle_period.is_some()),
                ("probe-period", self.probe_period.is_some()),
            ] {
                if set {
                    errors.push(SpecError::Conflict {
                        reason: format!("{key} requires membership hyparview"),
                    });
                }
            }
            MembershipSpec::Full
        };

        let output = OutputSpec {
            format: self.format,
            history: self.history,
        };
        if output.history && output.format == OutputFormat::Csv {
            errors.push(SpecError::Conflict {
                reason: "history emits nested per-round data, which is JSON-only".to_string(),
            });
        }

        if !errors.is_empty() {
            return Err(errors);
        }
        Ok(Scenario {
            topology,
            nodes: self.nodes,
            protocol: self.protocol,
            scheduler,
            messages: self.messages,
            seed: self.seed,
            seeds: self.seeds,
            max_rounds: self.max_rounds,
            dynamics,
            membership,
            output,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_specs_cover_the_protocol_registry_exactly() {
        // NAMES aliases the registry; parse must accept every entry and
        // name() must round-trip, so the enum and the registry cannot
        // drift apart.
        for &name in ProtocolSpec::NAMES {
            let spec = ProtocolSpec::parse(name)
                .unwrap_or_else(|| panic!("registry protocol '{name}' has no ProtocolSpec"));
            assert_eq!(spec.name(), name);
            assert_eq!(spec.build().name(), name);
        }
    }

    #[test]
    fn typed_rgg_spec_carries_its_radius_authoritatively() {
        let fixed = ScenarioBuilder::new()
            .topology(TopologySpec::Rgg { radius: Some(0.3) })
            .finish()
            .unwrap();
        assert_eq!(fixed.topology, TopologySpec::Rgg { radius: Some(0.3) });
        // Re-setting with an explicit None must clear the earlier radius,
        // not let it leak through.
        let adaptive = ScenarioBuilder::new()
            .topology(TopologySpec::Rgg { radius: Some(0.3) })
            .topology(TopologySpec::Rgg { radius: None })
            .finish()
            .unwrap();
        assert_eq!(adaptive.topology, TopologySpec::Rgg { radius: None });
    }

    #[test]
    fn membership_survives_the_spec_round_trip_and_stamps_the_id() {
        let scenario = ScenarioBuilder::new()
            .membership(MembershipSpec::HyParView {
                active: 4,
                passive: 16,
                shuffle_period: 2,
                probe_period: 3,
            })
            .finish()
            .unwrap();
        assert!(scenario.scenario_id().contains("-mem@a4p16sh2pr3-s1"));
        let cells = crate::parse_spec(&scenario.to_spec())
            .unwrap()
            .expand()
            .unwrap();
        assert_eq!(cells, vec![scenario]);

        // The full-view default stamps nothing: ids are byte-identical to
        // pre-membership builds.
        let full = ScenarioBuilder::new().finish().unwrap();
        assert_eq!(full.membership, MembershipSpec::Full);
        assert!(!full.scenario_id().contains("mem@"));
        assert!(!full.to_spec().contains("membership"));
    }

    #[test]
    fn membership_params_require_the_hyparview_overlay() {
        for key in [
            "active-view",
            "passive-view",
            "shuffle-period",
            "probe-period",
        ] {
            let mut b = ScenarioBuilder::new();
            b.set(key, "4");
            let errors = b.finish().unwrap_err();
            assert!(
                errors
                    .iter()
                    .any(|e| e.to_string().contains("requires membership hyparview")),
                "{key}: {errors:?}"
            );
        }
        // Zero capacities and periods are config bugs the membership
        // crate's validator names.
        for key in [
            "active-view",
            "passive-view",
            "shuffle-period",
            "probe-period",
        ] {
            let mut b = ScenarioBuilder::new();
            b.set("membership", "hyparview");
            b.set(key, "0");
            assert!(b.finish().is_err(), "{key} = 0 must be rejected");
        }
        // Defaults fill the unset knobs.
        let mut b = ScenarioBuilder::new();
        b.set("membership", "hyparview");
        let scenario = b.finish().unwrap();
        assert_eq!(
            scenario.membership.to_config(),
            Some(MembershipConfig::default())
        );
    }

    #[test]
    fn async_timing_survives_the_spec_round_trip_including_jitter() {
        let timing = gossip_core::TimingConfig {
            drift: 0.2,
            refresh_jitter: 0.5,
            min_latency: 16,
            max_latency: 128,
        };
        let scenario = ScenarioBuilder::new()
            .async_scheduler(timing)
            .finish()
            .unwrap();
        let cells = crate::parse_spec(&scenario.to_spec())
            .unwrap()
            .expand()
            .unwrap();
        assert_eq!(cells, vec![scenario]);
    }
}
