//! The grid determinism contract: every grid cell's [`SimResult`] is
//! byte-identical to the same scenario run standalone, and the emitted
//! lines match modulo wall time. This is the invariant the CI grid smoke
//! job re-checks in release mode against the real binary.

use gossip_experiments::{
    parse_spec, run_line_json, to_json, Emitter, Grid, OutputFormat, Scenario, ScenarioBuilder,
};

/// A small but representative grid: both protocols and both schedulers
/// over two topologies, two seeds each, with one churned cell axis-free
/// in the base.
fn smoke_grid() -> Grid {
    let mut base = ScenarioBuilder::new();
    base.set("nodes", "48").set("seed", "7").set("seeds", "2");
    Grid::new(base)
        .axis("topology", ["ring", "rgg"])
        .axis("protocol", ["uniform", "advert"])
        .axis("scheduler", ["sync", "async"])
}

/// Build the standalone scenario equivalent of one cell the way a user
/// would: a fresh builder fed the same assignments, never touching the
/// grid machinery.
fn standalone(topology: &str, protocol: &str, scheduler: &str) -> Scenario {
    let mut builder = ScenarioBuilder::new();
    builder
        .set("nodes", "48")
        .set("seed", "7")
        .set("seeds", "2")
        .set("topology", topology)
        .set("protocol", protocol)
        .set("scheduler", scheduler);
    builder.finish().expect("valid standalone scenario")
}

#[test]
fn every_grid_cell_is_byte_identical_to_its_standalone_run() {
    let cells = smoke_grid().expand().expect("valid grid");
    assert_eq!(cells.len(), 8);
    let mut checked = 0;
    for topology in ["ring", "rgg"] {
        for protocol in ["uniform", "advert"] {
            for scheduler in ["sync", "async"] {
                let solo = standalone(topology, protocol, scheduler);
                let cell = &cells[checked];
                assert_eq!(cell, &solo, "expansion order must match the nest order");
                // Byte-identical results, across the whole seed sweep.
                let cell_runs: Vec<String> = cell.run_sweep().iter().map(to_json).collect();
                let solo_runs: Vec<String> = solo.run_sweep().iter().map(to_json).collect();
                assert_eq!(
                    cell_runs, solo_runs,
                    "{topology}/{protocol}/{scheduler} diverged between grid and standalone"
                );
                checked += 1;
            }
        }
    }
    assert_eq!(checked, cells.len());
}

#[test]
fn grid_cells_from_a_spec_file_match_builder_built_cells() {
    let grid = parse_spec(
        "[scenario]\n\
         nodes = 48\n\
         seed = 7\n\
         seeds = 2\n\
         [axis]\n\
         topology = ring, rgg\n\
         protocol = uniform, advert\n\
         scheduler = sync, async\n",
    )
    .expect("valid spec");
    assert_eq!(
        grid.expand().unwrap(),
        smoke_grid().expand().unwrap(),
        "spec files and the builder API describe the same grid"
    );
}

#[test]
fn emitted_lines_match_modulo_wall_time() {
    let cells = smoke_grid().expand().unwrap();
    // Emit the whole grid through the Emitter, then re-emit each cell
    // standalone; after stripping wall_ms the streams must be identical.
    let strip = |line: &str| -> String {
        let at = line.find("\"wall_ms\":").expect("timed line");
        line[..at].to_string()
    };
    let mut grid_lines = Vec::new();
    let mut solo_lines = Vec::new();
    for cell in &cells {
        for (result, meta) in cell.sweep_timed_iter() {
            let id = cell.with_seed(result.seed).scenario_id();
            grid_lines.push(strip(&run_line_json(&id, &result, &meta)));
        }
    }
    for topology in ["ring", "rgg"] {
        for protocol in ["uniform", "advert"] {
            for scheduler in ["sync", "async"] {
                let solo = standalone(topology, protocol, scheduler);
                for (result, meta) in solo.sweep_timed_iter() {
                    let id = solo.with_seed(result.seed).scenario_id();
                    solo_lines.push(strip(&run_line_json(&id, &result, &meta)));
                }
            }
        }
    }
    assert_eq!(grid_lines, solo_lines);

    // And the Emitter streams exactly those lines (JSON needs no header).
    let mut emitter = Emitter::new(OutputFormat::Json, Vec::<u8>::new());
    for cell in &cells {
        for (result, meta) in cell.sweep_timed_iter() {
            emitter.emit(cell, &result, &meta).unwrap();
        }
    }
    let out = String::from_utf8(emitter.into_inner()).unwrap();
    let emitted: Vec<String> = out.lines().map(strip).collect();
    assert_eq!(emitted, grid_lines);
}

#[test]
fn scenario_ids_are_pinned_and_distinct_across_the_grid() {
    let cells = smoke_grid().expand().unwrap();
    let ids: Vec<String> = cells.iter().map(|s| s.scenario_id()).collect();
    assert_eq!(ids[0], "ring-uniform-sync-n48-k1-s7");
    assert_eq!(ids[1], "ring-uniform-async@d0.1j0.25l32:256-n48-k1-s7");
    let distinct: std::collections::HashSet<&String> = ids.iter().collect();
    assert_eq!(distinct.len(), ids.len());
    // Sweep members get their own ids via the seed stamp.
    let second_seed = cells[0].with_seed(8).scenario_id();
    assert_eq!(second_seed, "ring-uniform-sync-n48-k1-s8");
}
