//! The parallel-grid contract: the work-stealing pool's stdout is
//! byte-identical (modulo `wall_ms`) to the serial grid at any core
//! count, checkpoints make any completed-cell prefix resumable with the
//! same combined output, and corrupted checkpoints are rejected loudly.
//! This is the invariant the CI grid-smoke job re-checks in release mode
//! against the real binary (including a real `kill -9` resume).

use gossip_experiments::{
    execute_grid, parse_checkpoint, read_checkpoint, run_cell, verify_against, CellRecord,
    CheckpointWriter, Grid, ScenarioBuilder,
};

use std::fs;

/// The 3-axis × 2-seed grid the CI smoke spec mirrors: 8 cells, 16 runs,
/// sync and async engines, deterministic and fast.
fn smoke_grid() -> Grid {
    let mut base = ScenarioBuilder::new();
    base.set("nodes", "48").set("seed", "7").set("seeds", "2");
    Grid::new(base)
        .axis("topology", ["ring", "rgg"])
        .axis("protocol", ["uniform", "advert"])
        .axis("scheduler", ["sync", "async"])
}

/// Strip the wall-clock fields a byte-comparison must ignore (the CI sed
/// idiom, in-process).
fn strip_wall_ms(output: &str) -> String {
    output
        .lines()
        .map(|line| {
            let at = line.find("\"wall_ms\":").expect("timed line");
            line[..at].to_string()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Run the grid through the pool at the given core budget and return its
/// stripped stdout.
fn pooled_output(cores: usize) -> String {
    let cells = smoke_grid().expand().unwrap();
    let mut out = Vec::<u8>::new();
    let summary = execute_grid(&cells, cores, Vec::new(), None, false, &mut out).unwrap();
    assert!(summary.workers >= 1 && summary.workers <= cores);
    strip_wall_ms(&String::from_utf8(out).unwrap())
}

/// The serial reference: the exact per-cell rendering the serial grid
/// emits, in row-major order.
fn serial_output() -> String {
    let cells = smoke_grid().expand().unwrap();
    let lines: Vec<String> = cells.iter().flat_map(|cell| run_cell(cell).lines).collect();
    strip_wall_ms(&lines.join("\n"))
}

#[test]
fn pool_output_is_byte_identical_to_serial_at_any_core_count() {
    let reference = serial_output();
    assert_eq!(
        reference.lines().count(),
        16,
        "8 cells x 2 seeds, one line each"
    );
    for cores in [1, 2, 4, 7] {
        assert_eq!(
            pooled_output(cores),
            reference,
            "--cores {cores} diverged from the serial grid"
        );
    }
}

#[test]
fn every_completed_prefix_of_a_checkpoint_resumes_to_identical_output() {
    // Simulate a crash after every possible number of completed cells: a
    // checkpoint holding any k-cell subset (here: the completion-order
    // prefix) must resume to the same combined stdout.
    let cells = smoke_grid().expand().unwrap();
    let dir = std::env::temp_dir().join(format!("gossip-pool-test-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();

    // Full run with a checkpoint: records land in completion order.
    let full_path = dir.join("full.jsonl");
    let full_path_str = full_path.to_str().unwrap();
    let mut full_out = Vec::<u8>::new();
    let writer = CheckpointWriter::create(full_path_str).unwrap();
    execute_grid(&cells, 4, Vec::new(), Some(writer), false, &mut full_out).unwrap();
    let reference = strip_wall_ms(&String::from_utf8(full_out).unwrap());

    let full_text = fs::read_to_string(&full_path).unwrap();
    let records = parse_checkpoint(&full_text).unwrap().records;
    assert_eq!(records.len(), cells.len());

    for kill_after in 0..=cells.len() {
        // The crash left the first `kill_after` completion-order records
        // durable; resume from exactly those.
        let prefix: Vec<CellRecord> = records[..kill_after].to_vec();
        let resumed = verify_against(prefix, &cells).unwrap();
        let mut out = Vec::<u8>::new();
        let summary = execute_grid(&cells, 2, resumed, None, false, &mut out).unwrap();
        assert_eq!(summary.resumed, kill_after);
        assert_eq!(
            strip_wall_ms(&String::from_utf8(out).unwrap()),
            reference,
            "resume after {kill_after} completed cell(s) diverged"
        );
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_files_survive_torn_tails_but_reject_corruption() {
    let cells = smoke_grid().expand().unwrap();
    let dir = std::env::temp_dir().join(format!("gossip-pool-corrupt-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cp.jsonl");
    let path_str = path.to_str().unwrap();

    // Write two real records, then simulate a crash mid-third-record.
    let mut writer = CheckpointWriter::create(path_str).unwrap();
    for cell in [0usize, 1] {
        let output = run_cell(&cells[cell]);
        writer
            .record(&CellRecord {
                cell,
                scenario_id: cells[cell].scenario_id(),
                seed: cells[cell].seed,
                wall_ms: output.wall_ms,
                lines: output.lines,
            })
            .unwrap();
    }
    drop(writer);
    let clean = fs::read_to_string(&path).unwrap();
    let torn = format!("{clean}{{\"checkpoint\":1,\"cell\":2,\"scena");
    fs::write(&path, &torn).unwrap();

    // Torn tail: the two durable records survive, the tail is flagged.
    let replay = read_checkpoint(path_str).unwrap();
    assert!(replay.torn_tail);
    assert_eq!(replay.records.len(), 2);
    let resumed = verify_against(replay.records, &cells).unwrap();
    assert_eq!(resumed.iter().flatten().count(), 2);

    // Corruption anywhere else is a hard error naming the line.
    let corrupt = clean.replacen("\"checkpoint\":1", "\"checkpoint\":", 1);
    fs::write(&path, &corrupt).unwrap();
    let err = read_checkpoint(path_str).unwrap_err();
    assert!(err.to_string().contains("corrupt"), "{err}");
    assert!(err.to_string().contains("line 1"), "{err}");

    // A truncated-but-newline-terminated record is corruption, not a torn
    // tail — the writer always terminates records before fsync.
    let half = &clean[..clean.len() / 2];
    fs::write(&path, format!("{half}\n")).unwrap();
    assert!(read_checkpoint(path_str).is_err());

    // Records from a different grid are rejected at verification.
    fs::write(&path, &clean).unwrap();
    let replay = read_checkpoint(path_str).unwrap();
    let other = Grid::new(ScenarioBuilder::new())
        .axis("seed", ["1", "2"])
        .expand()
        .unwrap();
    let err = verify_against(replay.records, &other).unwrap_err();
    assert!(err.contains("spec changed"), "{err}");

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fresh_checkpoints_refuse_to_overwrite_existing_files() {
    let dir = std::env::temp_dir().join(format!("gossip-pool-exists-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cp.jsonl");
    let path_str = path.to_str().unwrap();
    fs::write(&path, "precious prior work\n").unwrap();
    let err = CheckpointWriter::create(path_str).unwrap_err();
    assert!(err.to_string().contains("--resume"), "{err}");
    assert_eq!(
        fs::read_to_string(&path).unwrap(),
        "precious prior work\n",
        "the existing file is untouched"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn csv_grids_emit_one_header_through_the_pool_and_on_resume() {
    let mut base = ScenarioBuilder::new();
    base.set("nodes", "32")
        .set("seed", "5")
        .set("format", "csv");
    let cells = Grid::new(base)
        .axis("protocol", ["uniform", "advert"])
        .expand()
        .unwrap();

    let mut out = Vec::<u8>::new();
    execute_grid(&cells, 2, Vec::new(), None, false, &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert_eq!(text.lines().count(), 3, "header + one row per cell");
    assert!(text.starts_with("schema,scenario_id,"));
    assert_eq!(text.matches("schema,scenario_id,").count(), 1);

    // Resuming the first cell from a record replays it under the same
    // single header.
    let first = run_cell(&cells[0]);
    let resumed = vec![
        Some(CellRecord {
            cell: 0,
            scenario_id: cells[0].scenario_id(),
            seed: cells[0].seed,
            wall_ms: first.wall_ms,
            lines: first.lines,
        }),
        None,
    ];
    let mut out = Vec::<u8>::new();
    execute_grid(&cells, 2, resumed, None, false, &mut out).unwrap();
    let resumed_text = String::from_utf8(out).unwrap();
    assert_eq!(
        strip_csv_wall(&resumed_text),
        strip_csv_wall(&text),
        "resumed CSV output diverged"
    );
}

/// CSV rows end in `...,threads,wall_ms`; drop the final column.
fn strip_csv_wall(text: &str) -> String {
    text.lines()
        .map(|line| match line.rfind(',') {
            Some(at) => &line[..at],
            None => line,
        })
        .collect::<Vec<_>>()
        .join("\n")
}
