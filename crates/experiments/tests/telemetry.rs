//! The determinism-under-observation contract, end to end through the
//! scenario layer: attaching a probe never changes a run's [`SimResult`]
//! (byte-identical with tracing on or off), and the event stream itself is
//! identical at any thread count — for both schedulers, static and
//! churned. Plus the trace-schema pin: a small ring run's JSONL trace must
//! match its committed golden file byte for byte.

use gossip_experiments::{Scenario, ScenarioBuilder};
use gossip_telemetry::{MemoryProbe, TraceWriter};

/// One scenario per point of the scheduler × threads × dynamics cube the
/// contract quantifies over. Small enough to run in milliseconds, big
/// enough that the async engine shards across several event regions.
fn scenario(scheduler: &str, threads: usize, churn: bool) -> Scenario {
    let mut builder = ScenarioBuilder::new();
    builder
        .set("topology", "ring")
        .set("nodes", "64")
        .set("messages", "4")
        .set("seed", "11")
        .set("protocol", "advert")
        .set("scheduler", scheduler)
        .set("threads", &threads.to_string());
    if churn {
        builder.set("churn-rate", "0.1").set("rejoin", "keep");
    }
    builder.finish().expect("valid scenario")
}

#[test]
fn results_are_byte_identical_with_the_probe_on_or_off() {
    for scheduler in ["sync", "async"] {
        for churn in [false, true] {
            for threads in [1usize, 8] {
                let s = scenario(scheduler, threads, churn);
                let unobserved = s.run();
                let mut probe = MemoryProbe::default();
                let observed = s.run_probed(&mut probe);
                assert_eq!(
                    unobserved, observed,
                    "{scheduler}/churn={churn}/threads={threads}: probing changed the result"
                );
                assert!(
                    !probe.events.is_empty(),
                    "{scheduler}/churn={churn}/threads={threads}: probe saw nothing"
                );
            }
        }
    }
}

#[test]
fn the_event_stream_is_identical_at_any_thread_count() {
    for scheduler in ["sync", "async"] {
        for churn in [false, true] {
            let mut serial = MemoryProbe::default();
            scenario(scheduler, 1, churn).run_probed(&mut serial);
            let mut sharded = MemoryProbe::default();
            scenario(scheduler, 8, churn).run_probed(&mut sharded);
            assert_eq!(
                serial.events, sharded.events,
                "{scheduler}/churn={churn}: trace diverged between 1 and 8 threads"
            );
        }
    }
}

/// Render one full trace (header + events) for the golden scenario.
fn golden_trace(scheduler: &str, threads: usize) -> Vec<u8> {
    let mut builder = ScenarioBuilder::new();
    builder
        .set("topology", "ring")
        .set("nodes", "12")
        .set("messages", "2")
        .set("seed", "3")
        .set("protocol", "advert")
        .set("scheduler", scheduler)
        .set("threads", &threads.to_string());
    let s = builder.finish().expect("valid scenario");
    let mut tw = TraceWriter::new(Vec::new());
    tw.begin_run(&s.scenario_id(), s.nodes, s.messages, s.seed);
    s.run_probed(&mut tw);
    tw.into_inner().expect("Vec<u8> writes cannot fail")
}

/// The trace *format* is pinned by a committed golden file: any change to
/// event shapes, field order, or emission order is a schema change and
/// must be made deliberately (regenerate with the command in the golden
/// file's sibling README comment and bump [`TRACE_SCHEMA_VERSION`]
/// (gossip_telemetry::TRACE_SCHEMA_VERSION) if shapes changed).
#[test]
fn small_ring_trace_matches_the_committed_golden_file() {
    let traced = golden_trace("sync", 1);
    let golden = include_bytes!("golden/trace_ring12_sync.jsonl");
    assert_eq!(
        String::from_utf8_lossy(&traced),
        String::from_utf8_lossy(golden),
        "trace schema drifted from the golden file"
    );
}

#[test]
fn trace_bytes_are_identical_across_thread_counts() {
    for scheduler in ["sync", "async"] {
        assert_eq!(
            String::from_utf8_lossy(&golden_trace(scheduler, 1)),
            String::from_utf8_lossy(&golden_trace(scheduler, 8)),
            "{scheduler}: trace bytes diverged between 1 and 8 threads"
        );
    }
}
