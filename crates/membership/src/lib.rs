//! Partial-view membership: bounded HyParView-style active/passive views
//! with SWIM-style probe/suspect/evict failure detection.
//!
//! The simulator's engines hand every node its *full* underlay
//! neighborhood. Real smartphone meshes do not work that way: a peer only
//! gossips with the handful of neighbors it has *discovered*, maintained
//! by a membership protocol. This crate supplies that layer as a
//! [`Membership`] overlay sitting between the underlay topology and the
//! gossip protocol:
//!
//! - **Active views** (HyParView): each node keeps a small bounded set of
//!   symmetric links — the peers it actually gossips with. [`Membership`]
//!   implements [`GraphView`], so the engines' advertise/scan/connect
//!   machinery runs over the discovered overlay completely unmodified.
//! - **Passive views** (HyParView): a larger bounded reservoir of known
//!   peers, refreshed by periodic shuffle steps and promoted into the
//!   active view when capacity frees up (eviction, churn).
//! - **Failure detection** (SWIM): each node periodically probes one
//!   random active peer. A probe fails when the peer is dead or no longer
//!   underlay-reachable; the peer is then *suspected* and, unless a later
//!   probe refutes the suspicion before its deadline (two probe periods),
//!   *evicted* from the active view. An eviction whose target was in fact
//!   alive and reachable is counted as a **false positive**.
//!
//! # Determinism
//!
//! All membership state advances in [`Membership::tick`], which both
//! engines call from **serial** sections only — the synchronous scheduler
//! at round boundaries, the time-sliced asynchronous scheduler at slice
//! boundaries, before the parallel phase of the round/slice reads the
//! views. One tick consumes exactly one RNG stream,
//! `Rng::stream(seed, tick, MEMBERSHIP_STREAM)`, walked in node-id order,
//! so the overlay's evolution is a pure function of
//! `(seed, tick, underlay, alive)` and is byte-identical at any thread
//! count. Trace emission never consumes randomness, so probed and
//! unprobed runs agree too.
//!
//! # Interaction with churn
//!
//! A departed node's *own* state is cleared (it powered off), but its
//! peers keep their links to it — they have no oracle, and must discover
//! the death the way a real mesh does: the link stops working (a dead
//! peer never listens, so connections to it simply fail) and the failure
//! detector eventually suspects and evicts it. A rejoining node comes
//! back empty and re-enters through the join step. The symmetry invariant
//! therefore holds between *alive* nodes; links dangling toward the dead
//! are exactly the staleness the layer is modeling.

use gossip_core::{GraphView, NodeId, Rng, TICKS_PER_ROUND};
use gossip_telemetry::{Probe, TraceEvent};

/// Stream id for membership ticks, disjoint from every engine stream
/// (matching boundary `u64::MAX - 1`, sliced sweep `u64::MAX - 2`, sliced
/// mutation `u64::MAX - 3`, and the bounded per-region bases).
pub const MEMBERSHIP_STREAM: u64 = u64::MAX - 4;

/// Tuning knobs of the membership layer. Validated once by the
/// experiment front-ends via [`validate`](Self::validate); the layer
/// itself assumes a valid config.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MembershipConfig {
    /// Active view bound: how many symmetric gossip links a node keeps.
    pub active_size: usize,
    /// Passive view bound: how many known-peer entries a node remembers.
    pub passive_size: usize,
    /// Shuffle every this many ticks (1 = every round/slice).
    pub shuffle_period: u64,
    /// Probe one random active peer every this many ticks. The suspect
    /// deadline is two probe periods: one full period in which a repeat
    /// probe may refute the suspicion before eviction.
    pub probe_period: u64,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            active_size: 5,
            passive_size: 30,
            shuffle_period: 1,
            probe_period: 1,
        }
    }
}

impl MembershipConfig {
    /// Range-check the knobs; the error names the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.active_size == 0 {
            return Err("active view size must be at least 1".to_string());
        }
        if self.passive_size == 0 {
            return Err("passive view size must be at least 1".to_string());
        }
        if self.shuffle_period == 0 {
            return Err("shuffle period must be at least 1 tick".to_string());
        }
        if self.probe_period == 0 {
            return Err("probe period must be at least 1 tick".to_string());
        }
        Ok(())
    }

    /// Ticks from suspicion to eviction (two probe periods).
    pub fn suspect_timeout(&self) -> u64 {
        2 * self.probe_period
    }
}

/// End-of-run membership metrics, emitted as `SimResult.membership`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MembershipStats {
    /// Smallest active view over alive nodes at the end of the run.
    pub active_min: usize,
    /// Mean active view size over alive nodes at the end of the run.
    pub active_mean: f64,
    /// Largest active view over alive nodes at the end of the run.
    pub active_max: usize,
    /// Alive nodes whose active view ended empty (undiscovered or
    /// physically isolated).
    pub isolated_nodes: usize,
    /// Join steps taken (initial discovery and post-churn re-entry).
    pub joins: u64,
    /// Shuffle steps taken (one per node per shuffle tick).
    pub shuffles: u64,
    /// Probes sent.
    pub probes: u64,
    /// Probe failures that opened a suspicion.
    pub suspicions: u64,
    /// Suspects evicted at their deadline.
    pub evictions: u64,
    /// Evictions whose target was alive and underlay-reachable — the
    /// failure detector's false-positive count.
    pub false_positive_evictions: u64,
}

/// The membership overlay: per-node bounded active/passive views plus
/// suspect bookkeeping. Implements [`GraphView`] over the **active**
/// views, so engines gossip over the discovered overlay exactly as they
/// would over an underlay topology.
#[derive(Clone, Debug)]
pub struct Membership {
    cfg: MembershipConfig,
    /// Sorted active view per node (the `GraphView` adjacency).
    active: Vec<Vec<NodeId>>,
    /// Sorted passive view per node, disjoint from the active view.
    passive: Vec<Vec<NodeId>>,
    /// Open suspicions per node: `(suspect, eviction deadline tick)`.
    suspects: Vec<Vec<(NodeId, u64)>>,
    /// Liveness at the previous tick, to detect deaths edge-triggered.
    alive_prev: Vec<bool>,
    /// Scratch candidate buffer, reused across ticks.
    scratch: Vec<NodeId>,
    joins: u64,
    shuffles: u64,
    probes: u64,
    suspicions: u64,
    evictions: u64,
    false_positive_evictions: u64,
}

impl GraphView for Membership {
    fn num_nodes(&self) -> usize {
        self.active.len()
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.active[node.index()]
    }
}

fn is_alive(alive: Option<&[bool]>, u: usize) -> bool {
    alive.is_none_or(|mask| mask[u])
}

fn contains(view: &[NodeId], v: NodeId) -> bool {
    view.binary_search(&v).is_ok()
}

fn insert_sorted(view: &mut Vec<NodeId>, v: NodeId) {
    if let Err(pos) = view.binary_search(&v) {
        view.insert(pos, v);
    }
}

/// Remove `v` if present; reports whether it was.
fn remove_sorted(view: &mut Vec<NodeId>, v: NodeId) -> bool {
    match view.binary_search(&v) {
        Ok(pos) => {
            view.remove(pos);
            true
        }
        Err(_) => false,
    }
}

impl Membership {
    /// An empty overlay over `n` nodes: every view starts empty and fills
    /// through join/shuffle ticks (discovery is part of the model).
    pub fn new(n: usize, cfg: MembershipConfig) -> Self {
        Membership {
            cfg,
            active: vec![Vec::new(); n],
            passive: vec![Vec::new(); n],
            suspects: vec![Vec::new(); n],
            alive_prev: vec![true; n],
            scratch: Vec::new(),
            joins: 0,
            shuffles: 0,
            probes: 0,
            suspicions: 0,
            evictions: 0,
            false_positive_evictions: 0,
        }
    }

    /// The configuration this overlay runs with.
    pub fn config(&self) -> &MembershipConfig {
        &self.cfg
    }

    /// `node`'s current passive view (sorted).
    pub fn passive_view(&self, node: NodeId) -> &[NodeId] {
        &self.passive[node.index()]
    }

    /// Advance the overlay by one tick (a synchronous round or an
    /// asynchronous slice pass). Serial and deterministic: one RNG stream
    /// per tick, walked in node-id order; `probe` observes join / shuffle
    /// / suspect / evict events but never perturbs the stream.
    ///
    /// `underlay` is the physical topology (who *could* be discovered),
    /// `alive` the dynamics liveness mask (`None` = everyone alive).
    pub fn tick<G: GraphView + ?Sized>(
        &mut self,
        underlay: &G,
        alive: Option<&[bool]>,
        seed: u64,
        tick: u64,
        probe: &mut dyn Probe,
    ) {
        let n = self.active.len();
        let mut rng = Rng::stream(seed, tick, MEMBERSHIP_STREAM);
        let tracing = probe.enabled();
        let t = tick * TICKS_PER_ROUND;

        // 1. Edge-triggered deaths: a departing node loses its own state
        //    (it powered off). Peers keep their dangling links — the
        //    failure detector has to find the death, that's the model.
        for u in 0..n {
            let a = is_alive(alive, u);
            if !a && self.alive_prev[u] {
                self.active[u].clear();
                self.passive[u].clear();
                self.suspects[u].clear();
            }
            self.alive_prev[u] = a;
        }

        // 2. Join: a node with an empty active view links to one random
        //    alive underlay neighbor (initial discovery and churn
        //    re-entry both land here).
        for u in 0..n {
            if !is_alive(alive, u) || !self.active[u].is_empty() {
                continue;
            }
            self.scratch.clear();
            for &v in underlay.neighbors(NodeId(u as u32)) {
                if is_alive(alive, v.index()) {
                    self.scratch.push(v);
                }
            }
            if self.scratch.is_empty() {
                continue; // physically isolated right now
            }
            let c = self.scratch[rng.gen_range(self.scratch.len())];
            self.link(u, c.index(), &mut rng);
            self.joins += 1;
            if tracing {
                probe.record(&TraceEvent::Join {
                    t,
                    round: tick,
                    node: u as u32,
                    peer: c.0,
                });
            }
        }

        // 3. Shuffle: refresh the passive reservoir with one random alive
        //    underlay neighbor, then promote alive passive peers until the
        //    active view is full again.
        if tick.is_multiple_of(self.cfg.shuffle_period) {
            for u in 0..n {
                if !is_alive(alive, u) {
                    continue;
                }
                self.scratch.clear();
                for &v in underlay.neighbors(NodeId(u as u32)) {
                    if is_alive(alive, v.index()) && v.index() != u {
                        self.scratch.push(v);
                    }
                }
                if !self.scratch.is_empty() {
                    let v = self.scratch[rng.gen_range(self.scratch.len())];
                    self.note_passive(u, v.index(), &mut rng);
                    self.shuffles += 1;
                    if tracing {
                        probe.record(&TraceEvent::Shuffle {
                            t,
                            round: tick,
                            node: u as u32,
                            peer: v.0,
                        });
                    }
                }
                self.promote(u, alive, &mut rng);
            }
        }

        // 4. Probe: ping one random active peer; failure (dead or no
        //    longer underlay-reachable) opens a suspicion, success refutes
        //    any standing one.
        if tick.is_multiple_of(self.cfg.probe_period) {
            for u in 0..n {
                if !is_alive(alive, u) || self.active[u].is_empty() {
                    continue;
                }
                let v = self.active[u][rng.gen_range(self.active[u].len())];
                self.probes += 1;
                let reachable =
                    is_alive(alive, v.index()) && underlay.are_neighbors(NodeId(u as u32), v);
                if reachable {
                    self.suspects[u].retain(|&(s, _)| s != v);
                } else if !self.suspects[u].iter().any(|&(s, _)| s == v) {
                    self.suspects[u].push((v, tick + self.cfg.suspect_timeout()));
                    self.suspicions += 1;
                    if tracing {
                        probe.record(&TraceEvent::Suspect {
                            t,
                            round: tick,
                            node: u as u32,
                            peer: v.0,
                        });
                    }
                }
            }
        }

        // 5. Evict: unrefuted suspicions past their deadline sever the
        //    link on both sides. An eviction of a peer that was actually
        //    alive and reachable is a detector false positive.
        for u in 0..n {
            let mut i = 0;
            while i < self.suspects[u].len() {
                if self.suspects[u][i].1 > tick {
                    i += 1;
                    continue;
                }
                let (v, _) = self.suspects[u].remove(i);
                if remove_sorted(&mut self.active[u], v) {
                    remove_sorted(&mut self.active[v.index()], NodeId(u as u32));
                    self.evictions += 1;
                    if is_alive(alive, v.index()) && underlay.are_neighbors(NodeId(u as u32), v) {
                        self.false_positive_evictions += 1;
                    }
                    if tracing {
                        probe.record(&TraceEvent::Evict {
                            t,
                            round: tick,
                            node: u as u32,
                            peer: v.0,
                        });
                    }
                }
            }
        }
    }

    /// Establish the symmetric active link `u — v`, demoting a random
    /// victim to the passive view on any side that is full. Idempotent
    /// per side, so a half-link (churn leftovers) heals into a full one.
    fn link(&mut self, u: usize, v: usize, rng: &mut Rng) {
        if u == v {
            return;
        }
        if !contains(&self.active[u], NodeId(v as u32)) {
            self.make_room(u, rng);
            insert_sorted(&mut self.active[u], NodeId(v as u32));
        }
        if !contains(&self.active[v], NodeId(u as u32)) {
            self.make_room(v, rng);
            insert_sorted(&mut self.active[v], NodeId(u as u32));
        }
        // Active and passive stay disjoint.
        remove_sorted(&mut self.passive[u], NodeId(v as u32));
        remove_sorted(&mut self.passive[v], NodeId(u as u32));
    }

    /// If `u`'s active view is full, demote one random link to make room:
    /// the severed endpoints remember each other passively.
    fn make_room(&mut self, u: usize, rng: &mut Rng) {
        if self.active[u].len() < self.cfg.active_size {
            return;
        }
        let idx = rng.gen_range(self.active[u].len());
        let w = self.active[u].remove(idx);
        remove_sorted(&mut self.active[w.index()], NodeId(u as u32));
        self.note_passive(u, w.index(), rng);
        self.note_passive(w.index(), u, rng);
    }

    /// Remember `v` in `u`'s bounded passive view (evicting a random
    /// entry when full); no-op if already known actively or passively.
    fn note_passive(&mut self, u: usize, v: usize, rng: &mut Rng) {
        if u == v
            || contains(&self.active[u], NodeId(v as u32))
            || contains(&self.passive[u], NodeId(v as u32))
        {
            return;
        }
        if self.passive[u].len() >= self.cfg.passive_size {
            let idx = rng.gen_range(self.passive[u].len());
            self.passive[u].remove(idx);
        }
        insert_sorted(&mut self.passive[u], NodeId(v as u32));
    }

    /// Promote random alive passive peers into `u`'s active view until it
    /// is full (or the passive view runs out of alive candidates).
    fn promote(&mut self, u: usize, alive: Option<&[bool]>, rng: &mut Rng) {
        while self.active[u].len() < self.cfg.active_size {
            self.scratch.clear();
            self.scratch.extend(
                self.passive[u]
                    .iter()
                    .copied()
                    .filter(|v| is_alive(alive, v.index())),
            );
            if self.scratch.is_empty() {
                return;
            }
            let v = self.scratch[rng.gen_range(self.scratch.len())];
            remove_sorted(&mut self.passive[u], v);
            self.link(u, v.index(), rng);
        }
    }

    /// End-of-run stats over the final views; `alive` masks the view-size
    /// aggregates to nodes that are still up.
    pub fn finish(&self, alive: Option<&[bool]>) -> MembershipStats {
        let n = self.active.len();
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        let mut count = 0usize;
        let mut isolated = 0usize;
        for u in 0..n {
            if !is_alive(alive, u) {
                continue;
            }
            let len = self.active[u].len();
            min = min.min(len);
            max = max.max(len);
            sum += len;
            count += 1;
            if len == 0 {
                isolated += 1;
            }
        }
        MembershipStats {
            active_min: if count == 0 { 0 } else { min },
            active_mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            active_max: max,
            isolated_nodes: isolated,
            joins: self.joins,
            shuffles: self.shuffles,
            probes: self.probes,
            suspicions: self.suspicions,
            evictions: self.evictions,
            false_positive_evictions: self.false_positive_evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_core::Topology;
    use gossip_telemetry::{MemoryProbe, NoopProbe};

    fn run_ticks(topo: &Topology, cfg: MembershipConfig, seed: u64, ticks: u64) -> Membership {
        let mut mem = Membership::new(topo.num_nodes(), cfg);
        for tick in 1..=ticks {
            mem.tick(topo, None, seed, tick, &mut NoopProbe);
        }
        mem
    }

    fn assert_invariants(mem: &Membership, topo: &Topology) {
        let n = topo.num_nodes();
        for u in 0..n {
            let active = mem.neighbors(NodeId(u as u32));
            assert!(
                active.len() <= mem.config().active_size,
                "node {u}: active view over bound"
            );
            assert!(
                mem.passive_view(NodeId(u as u32)).len() <= mem.config().passive_size,
                "node {u}: passive view over bound"
            );
            assert!(active.windows(2).all(|w| w[0] < w[1]), "node {u}: unsorted");
            for &v in active {
                assert_ne!(v.index(), u, "node {u}: self-link");
                assert!(
                    topo.are_neighbors(NodeId(u as u32), v),
                    "node {u}: active peer {v:?} is not an underlay neighbor"
                );
                assert!(
                    mem.neighbors(v).contains(&NodeId(u as u32)),
                    "link {u} -> {v:?} is not symmetric"
                );
                assert!(
                    !contains(mem.passive_view(NodeId(u as u32)), v),
                    "node {u}: {v:?} both active and passive"
                );
            }
        }
    }

    #[test]
    fn static_views_converge_nonempty_symmetric_and_bounded() {
        for (name, topo) in [
            ("ring", Topology::ring(64)),
            ("grid", Topology::grid(64)),
            ("complete", Topology::complete(16)),
        ] {
            let mem = run_ticks(&topo, MembershipConfig::default(), 7, 10);
            assert_invariants(&mem, &topo);
            for u in 0..topo.num_nodes() {
                assert!(
                    !mem.neighbors(NodeId(u as u32)).is_empty(),
                    "{name}: node {u} still isolated after 10 ticks"
                );
            }
            let stats = mem.finish(None);
            assert_eq!(stats.isolated_nodes, 0);
            assert!(stats.active_min >= 1);
            assert!(stats.active_max <= 5);
            assert!(stats.joins >= topo.num_nodes() as u64 / 2);
        }
    }

    #[test]
    fn ticks_are_deterministic_and_probe_independent() {
        let topo = Topology::grid(100);
        let mut a = Membership::new(100, MembershipConfig::default());
        let mut b = Membership::new(100, MembershipConfig::default());
        let mut probe = MemoryProbe::default();
        for tick in 1..=8 {
            a.tick(&topo, None, 42, tick, &mut NoopProbe);
            b.tick(&topo, None, 42, tick, &mut probe);
        }
        for u in 0..100 {
            assert_eq!(a.neighbors(NodeId(u)), b.neighbors(NodeId(u)));
            assert_eq!(a.passive_view(NodeId(u)), b.passive_view(NodeId(u)));
        }
        assert_eq!(a.finish(None), b.finish(None));
        assert!(
            probe
                .events
                .iter()
                .any(|e| matches!(e, TraceEvent::Join { .. })),
            "tracing a converging overlay must observe joins"
        );
    }

    #[test]
    fn dead_peers_are_suspected_then_evicted() {
        let topo = Topology::complete(8);
        let cfg = MembershipConfig {
            active_size: 7,
            ..MembershipConfig::default()
        };
        let mut mem = Membership::new(8, cfg);
        let all_alive = vec![true; 8];
        for tick in 1..=6 {
            mem.tick(&topo, Some(&all_alive), 3, tick, &mut NoopProbe);
        }
        // Node 0 departs; its links dangle until probes find the death.
        let mut alive = all_alive.clone();
        alive[0] = false;
        let dangling: Vec<usize> = (1..8)
            .filter(|&u| contains(mem.neighbors(NodeId(u as u32)), NodeId(0)))
            .collect();
        assert!(
            !dangling.is_empty(),
            "a 7-wide view on K8 must include node 0"
        );
        for tick in 7..=40 {
            mem.tick(&topo, Some(&alive), 3, tick, &mut NoopProbe);
        }
        let stats = mem.finish(Some(&alive));
        assert!(stats.suspicions > 0, "the dead peer was never suspected");
        assert!(stats.evictions > 0, "the dead peer was never evicted");
        assert_eq!(
            stats.false_positive_evictions, 0,
            "evicting a dead peer is not a false positive"
        );
        for u in 1..8 {
            assert!(
                !contains(mem.neighbors(NodeId(u as u32)), NodeId(0)),
                "node {u} still links the departed node 0"
            );
        }
        // The dead node's own state was cleared on departure.
        assert!(mem.neighbors(NodeId(0)).is_empty());
        assert!(mem.passive_view(NodeId(0)).is_empty());
    }

    #[test]
    fn rejoiners_reenter_through_join() {
        let topo = Topology::ring(16);
        let mut mem = Membership::new(16, MembershipConfig::default());
        let mut alive = vec![true; 16];
        for tick in 1..=4 {
            mem.tick(&topo, Some(&alive), 9, tick, &mut NoopProbe);
        }
        alive[5] = false;
        for tick in 5..=12 {
            mem.tick(&topo, Some(&alive), 9, tick, &mut NoopProbe);
        }
        assert!(mem.neighbors(NodeId(5)).is_empty());
        let joins_before = mem.finish(Some(&alive)).joins;
        alive[5] = true;
        for tick in 13..=16 {
            mem.tick(&topo, Some(&alive), 9, tick, &mut NoopProbe);
        }
        let stats = mem.finish(Some(&alive));
        assert!(stats.joins > joins_before, "the rejoiner never re-joined");
        assert!(!mem.neighbors(NodeId(5)).is_empty());
    }

    #[test]
    fn isolated_nodes_stay_isolated_and_are_counted() {
        // Two components: {0,1} and {2,3}, plus node 4 with no edges.
        let topo = Topology::from_edges("split", 5, &[(0, 1), (2, 3)]);
        let mem = run_ticks(&topo, MembershipConfig::default(), 1, 6);
        assert!(mem.neighbors(NodeId(4)).is_empty());
        let stats = mem.finish(None);
        assert_eq!(stats.isolated_nodes, 1);
        assert_eq!(stats.active_min, 0);
    }

    #[test]
    fn config_validation_names_the_bad_field() {
        let ok = MembershipConfig::default();
        assert!(ok.validate().is_ok());
        for (cfg, needle) in [
            (
                MembershipConfig {
                    active_size: 0,
                    ..ok
                },
                "active",
            ),
            (
                MembershipConfig {
                    passive_size: 0,
                    ..ok
                },
                "passive",
            ),
            (
                MembershipConfig {
                    shuffle_period: 0,
                    ..ok
                },
                "shuffle",
            ),
            (
                MembershipConfig {
                    probe_period: 0,
                    ..ok
                },
                "probe",
            ),
        ] {
            let err = cfg.validate().expect_err("must reject the zero field");
            assert!(err.contains(needle), "error '{err}' must name '{needle}'");
        }
    }
}
