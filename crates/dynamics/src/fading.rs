//! Edge fading: links flap on and off to model interference.

use crate::{geometric_ticks, DynamicsModel, Mutation, MutationKind, MutationStream};

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gossip_core::{GraphView, NodeId, Rng, SimTime, Topology};

/// Independent on/off flapping of every base edge. An up edge fades with
/// per-round probability `fade_prob` (geometric up-time, mean
/// `1/fade_prob` rounds) and recovers after a geometric downtime with mean
/// `mean_downtime` rounds. Nodes stay alive throughout — only links drop.
#[derive(Clone, Copy, Debug)]
pub struct EdgeFading {
    /// Per-round probability that an up edge fades, in `(0, 1)`.
    pub fade_prob: f64,
    /// Mean downtime of a faded edge in rounds, `> 0`.
    pub mean_downtime: f64,
}

impl Default for EdgeFading {
    fn default() -> Self {
        EdgeFading {
            fade_prob: 0.05,
            mean_downtime: 1.0,
        }
    }
}

impl DynamicsModel for EdgeFading {
    fn name(&self) -> String {
        "fading".to_string()
    }

    fn validate(&self) -> Result<(), String> {
        if !(self.fade_prob > 0.0 && self.fade_prob < 1.0) {
            return Err(format!(
                "fade probability {} must lie in (0, 1); omit fading entirely for stable links",
                self.fade_prob
            ));
        }
        if !(self.mean_downtime > 0.0 && self.mean_downtime.is_finite()) {
            return Err(format!(
                "mean edge downtime {} must be a positive number of rounds",
                self.mean_downtime
            ));
        }
        Ok(())
    }

    fn stream(&self, topology: &Topology, seed: u64) -> Box<dyn MutationStream> {
        let mut rng = Rng::new(seed);
        // Enumerate each undirected edge once, in deterministic order.
        let edges: Vec<(NodeId, NodeId)> = (0..topology.num_nodes())
            .flat_map(|u| {
                let u = NodeId(u as u32);
                GraphView::neighbors(topology, u)
                    .iter()
                    .copied()
                    .filter(move |&v| v > u)
                    .map(move |v| (u, v))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut heap = BinaryHeap::with_capacity(edges.len());
        let mut seq = 0u64;
        for (i, _) in edges.iter().enumerate() {
            let uptime = geometric_ticks(self.fade_prob, &mut rng);
            heap.push(Reverse((SimTime(uptime), seq, i as u32, false)));
            seq += 1;
        }
        Box::new(FadingStream {
            model: *self,
            rng,
            edges,
            heap,
            seq,
        })
    }
}

struct FadingStream {
    model: EdgeFading,
    rng: Rng,
    edges: Vec<(NodeId, NodeId)>,
    /// Min-heap of `(time, seq, edge index, currently down?)`.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32, bool)>>,
    seq: u64,
}

impl MutationStream for FadingStream {
    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, ..))| *t)
    }

    fn next(&mut self) -> Option<Mutation> {
        let Reverse((time, _, edge, down)) = self.heap.pop()?;
        let (u, v) = self.edges[edge as usize];
        let (delay, kind) = if down {
            // The edge was down and recovers now; schedule the next fade.
            (
                geometric_ticks(self.model.fade_prob, &mut self.rng),
                MutationKind::EdgeUp(u, v),
            )
        } else {
            // The edge fades now; schedule its recovery.
            (
                geometric_ticks(1.0 / self.model.mean_downtime, &mut self.rng),
                MutationKind::EdgeDown(u, v),
            )
        };
        self.heap
            .push(Reverse((time.after(delay), self.seq, edge, !down)));
        self.seq += 1;
        Some(Mutation { time, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_alternate_down_and_up() {
        let model = EdgeFading {
            fade_prob: 0.5,
            mean_downtime: 1.0,
        };
        let topo = Topology::ring(8);
        let mut stream = model.stream(&topo, 4);
        let mut down = std::collections::HashSet::new();
        let mut last = SimTime::ZERO;
        for _ in 0..200 {
            let m = stream.next().expect("fading streams are unbounded");
            assert!(m.time >= last);
            last = m.time;
            match m.kind {
                MutationKind::EdgeDown(u, v) => {
                    assert!(topo.are_neighbors(u, v), "fade of a non-edge {u}-{v}");
                    assert!(down.insert((u, v)), "{u}-{v} faded twice in a row");
                }
                MutationKind::EdgeUp(u, v) => {
                    assert!(down.remove(&(u, v)), "{u}-{v} recovered while up");
                }
                ref other => panic!("fading emitted {other:?}"),
            }
        }
        assert!(!down.is_empty() || last > SimTime::ZERO);
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let model = EdgeFading::default();
        let topo = Topology::grid(16);
        let drain = |seed| {
            let mut s = model.stream(&topo, seed);
            (0..150).filter_map(|_| s.next()).collect::<Vec<_>>()
        };
        assert_eq!(drain(7), drain(7));
        assert_ne!(drain(7), drain(8));
    }

    #[test]
    fn edgeless_topology_yields_an_empty_stream() {
        let model = EdgeFading::default();
        let topo = Topology::from_edges("isolated", 4, &[]);
        let mut stream = model.stream(&topo, 1);
        assert_eq!(stream.peek_time(), None);
        assert!(stream.next().is_none());
    }

    #[test]
    fn validate_rejects_degenerate_probabilities() {
        let ok = EdgeFading::default();
        assert!(ok.validate().is_ok());
        assert!(EdgeFading {
            fade_prob: 0.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(EdgeFading {
            fade_prob: 1.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(EdgeFading {
            mean_downtime: -1.0,
            ..ok
        }
        .validate()
        .is_err());
    }
}
