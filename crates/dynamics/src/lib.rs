//! Churn and mobility for the mobile telephone model: deterministic
//! topology-mutation event streams on the [`SimTime`] axis.
//!
//! The mobile telephone model exists because smartphone peer-to-peer
//! networks are *unstable* — devices join, leave, and move, so the
//! connection graph changes under the protocol's feet. The asynchronous
//! follow-up work (Newport, Weaver & Zheng, "Asynchronous Gossip in
//! Smartphone Peer-to-Peer Networks", 2021) explicitly motivates
//! evaluating gossip under unpredictable, time-varying connectivity. This
//! crate owns that instability:
//!
//! - a [`DynamicsModel`] describes *how* the network changes
//!   ([`Churn`], [`EdgeFading`], [`Waypoint`] mobility, or a
//!   [`CompositeDynamics`] of several);
//! - [`DynamicsModel::stream`] instantiates it for one run as a
//!   [`MutationStream`]: a lazy, time-ordered, seed-deterministic sequence
//!   of [`Mutation`]s;
//! - a scheduler drains the stream and applies each [`MutationKind`] to a
//!   [`DynamicTopology`] — the synchronous engine at round boundaries,
//!   the event-driven engine interleaved in its event heap.
//!
//! Crucially, the stream is a pure function of `(model, topology, seed)`
//! and independent of the consuming scheduler, so synchronous and
//! asynchronous runs of the same experiment face the **same** sequence of
//! departures, rejoins, fades, and moves — sync-vs-async comparisons stay
//! apples-to-apples.

mod churn;
mod fading;
mod waypoint;

pub use churn::{Churn, RejoinPolicy, DEFAULT_MEAN_DOWNTIME_ROUNDS};
pub use fading::EdgeFading;
pub use waypoint::{Waypoint, DEFAULT_SPEED_PER_ROUND};

use gossip_core::{DynamicTopology, NodeId, Rng, SimTime, Topology};

/// Salt mixed into the run seed to derive the mutation-stream seed, so
/// dynamics draw from a stream decorrelated from the engine's own RNG.
/// Both schedulers derive the stream the same way, which is what keeps
/// sync and async runs of one experiment on the same mutation sequence.
pub const DYNAMICS_SEED_SALT: u64 = 0x0dd5_eed5;

/// The stream seed for a run with engine seed `run_seed`.
pub fn dynamics_seed(run_seed: u64) -> u64 {
    run_seed ^ DYNAMICS_SEED_SALT
}

/// One topology mutation at one instant of virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mutation {
    pub time: SimTime,
    pub kind: MutationKind,
}

/// What a [`Mutation`] does to the network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutationKind {
    /// The node powers off / walks out of the network.
    Depart(NodeId),
    /// The node returns. `reset_messages` asks the engine to clear its
    /// message set (the [`RejoinPolicy::Lose`] semantics); a rejoining
    /// source always re-learns the rumors it originated.
    Rejoin { node: NodeId, reset_messages: bool },
    /// The edge fades out (interference); both endpoints stay alive.
    EdgeDown(NodeId, NodeId),
    /// A faded edge recovers.
    EdgeUp(NodeId, NodeId),
    /// The node moved: replace its base adjacency with `neighbors`.
    Rewire {
        node: NodeId,
        neighbors: Vec<NodeId>,
    },
}

impl MutationKind {
    /// Apply the topology-side effect to `topo`. Returns whether anything
    /// changed (e.g. a `Depart` of an already-dead node is a no-op).
    /// Message-set side effects (`reset_messages`) are the engine's job —
    /// the topology does not know about gossip state.
    pub fn apply(&self, topo: &mut DynamicTopology) -> bool {
        match self {
            MutationKind::Depart(u) => topo.kill(*u),
            MutationKind::Rejoin { node, .. } => topo.revive(*node),
            MutationKind::EdgeDown(u, v) => topo.fade_edge(*u, *v),
            MutationKind::EdgeUp(u, v) => topo.restore_edge(*u, *v),
            MutationKind::Rewire { node, neighbors } => {
                topo.rewire(*node, neighbors);
                true
            }
        }
    }
}

/// A model of how the network changes over a run. Implementations must be
/// deterministic: the stream produced by [`stream`](Self::stream) is a
/// pure function of `(self, topology, seed)`.
pub trait DynamicsModel {
    /// Model name for reporting ("churn", "fading", "waypoint", or a
    /// `+`-joined composite).
    fn name(&self) -> String;

    /// Check parameter ranges; the one source of truth the CLI validation
    /// and the engines both consult.
    fn validate(&self) -> Result<(), String>;

    /// Instantiate the model for one run over `topology`.
    fn stream(&self, topology: &Topology, seed: u64) -> Box<dyn MutationStream>;
}

/// A lazy, time-ordered sequence of [`Mutation`]s. Streams are unbounded
/// in general (churn never stops); consumers drain them up to their own
/// time horizon via [`peek_time`](Self::peek_time).
pub trait MutationStream {
    /// Virtual time of the next pending mutation, if any. Never decreases.
    fn peek_time(&self) -> Option<SimTime>;

    /// Pop the next mutation. Its `time` equals the last `peek_time`.
    fn next(&mut self) -> Option<Mutation>;
}

/// Several models running at once (e.g. churn plus fading): their streams
/// are merged in time order, ties broken by part index so the merge is
/// deterministic.
pub struct CompositeDynamics {
    pub parts: Vec<Box<dyn DynamicsModel>>,
}

impl DynamicsModel for CompositeDynamics {
    fn name(&self) -> String {
        self.parts
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join("+")
    }

    fn validate(&self) -> Result<(), String> {
        if self.parts.is_empty() {
            return Err("composite dynamics needs at least one part".to_string());
        }
        for part in &self.parts {
            part.validate()?;
        }
        Ok(())
    }

    fn stream(&self, topology: &Topology, seed: u64) -> Box<dyn MutationStream> {
        // Decorrelate the parts' streams off the one stream seed.
        let mut rng = Rng::new(seed);
        let streams = self
            .parts
            .iter()
            .map(|p| p.stream(topology, rng.next_u64()))
            .collect();
        Box::new(MergedStream { streams })
    }
}

struct MergedStream {
    streams: Vec<Box<dyn MutationStream>>,
}

impl MergedStream {
    fn earliest(&self) -> Option<usize> {
        self.streams
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.peek_time().map(|t| (t, i)))
            .min() // (time, index): ties go to the lowest part index
            .map(|(_, i)| i)
    }
}

impl MutationStream for MergedStream {
    fn peek_time(&self) -> Option<SimTime> {
        self.streams.iter().filter_map(|s| s.peek_time()).min()
    }

    fn next(&mut self) -> Option<Mutation> {
        let i = self.earliest()?;
        self.streams[i].next()
    }
}

/// Sample a geometric waiting time in ticks with per-round success
/// probability `per_round_prob` (i.e. mean `TICKS_PER_ROUND /
/// per_round_prob` ticks), by inverting the geometric CDF at per-tick
/// granularity. Always at least one tick, so streams can never emit two
/// transitions of one process at the same instant.
pub(crate) fn geometric_ticks(per_round_prob: f64, rng: &mut Rng) -> u64 {
    let p = (per_round_prob / gossip_core::TICKS_PER_ROUND as f64).clamp(0.0, 1.0);
    if p >= 1.0 {
        return 1;
    }
    // U in (0, 1]; T = floor(ln U / ln(1-p)) + 1 is Geometric(p).
    let u = 1.0 - rng.gen_f64();
    let t = (u.ln() / (1.0 - p).ln()).floor();
    if !t.is_finite() || t >= 9.0e18 {
        return u64::MAX;
    }
    t as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_core::TICKS_PER_ROUND;

    #[test]
    fn geometric_ticks_has_the_right_mean() {
        let mut rng = Rng::new(5);
        let samples = 20_000;
        let total: f64 = (0..samples)
            .map(|_| geometric_ticks(0.5, &mut rng) as f64)
            .sum();
        let mean = total / samples as f64;
        let expected = TICKS_PER_ROUND as f64 / 0.5;
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} far from expected {expected}"
        );
    }

    #[test]
    fn geometric_ticks_is_always_positive() {
        let mut rng = Rng::new(9);
        for _ in 0..1000 {
            assert!(geometric_ticks(0.99, &mut rng) >= 1);
        }
    }

    #[test]
    fn composite_merges_in_time_order() {
        let model = CompositeDynamics {
            parts: vec![
                Box::new(Churn {
                    rate: 0.3,
                    rejoin: RejoinPolicy::Keep,
                    mean_downtime: 2.0,
                }),
                Box::new(EdgeFading {
                    fade_prob: 0.3,
                    mean_downtime: 1.0,
                }),
            ],
        };
        assert_eq!(model.name(), "churn+fading");
        model.validate().expect("valid composite");
        let topo = Topology::ring(12);
        let mut stream = model.stream(&topo, 7);
        let mut last = SimTime::ZERO;
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..200 {
            let peek = stream.peek_time().expect("unbounded stream");
            let m = stream.next().expect("unbounded stream");
            assert_eq!(m.time, peek, "peek must match the popped mutation");
            assert!(m.time >= last, "stream went backwards in time");
            last = m.time;
            kinds.insert(std::mem::discriminant(&m.kind));
        }
        assert!(kinds.len() >= 3, "merge should carry both parts' events");
    }

    #[test]
    fn composite_is_deterministic_per_seed() {
        let model = CompositeDynamics {
            parts: vec![
                Box::new(Churn {
                    rate: 0.2,
                    rejoin: RejoinPolicy::Lose,
                    mean_downtime: 3.0,
                }),
                Box::new(EdgeFading {
                    fade_prob: 0.1,
                    mean_downtime: 2.0,
                }),
            ],
        };
        let topo = Topology::grid(16);
        let mut a = model.stream(&topo, 42);
        let mut b = model.stream(&topo, 42);
        for _ in 0..300 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = model.stream(&topo, 43);
        let diverged = (0..50).any(|_| a.next() != c.next());
        assert!(diverged, "different seeds should give different streams");
    }
}
