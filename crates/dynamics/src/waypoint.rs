//! Random-waypoint mobility over a random geometric graph.

use crate::{DynamicsModel, Mutation, MutationKind, MutationStream};

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gossip_core::{NodeId, RggGeometry, Rng, SimTime, Topology, TICKS_PER_ROUND};

/// Random-waypoint mobility: each node of a random geometric graph walks
/// to a uniformly chosen waypoint in the unit square at a per-leg speed
/// drawn from `[0.5, 1.5] × speed` units per round, then immediately picks
/// the next waypoint. On arrival the node's radius-based edges are
/// re-derived against every other node's current position and emitted as a
/// [`MutationKind::Rewire`].
///
/// Positions update lazily — a node's position changes only at its own
/// arrival events — which keeps every event `O(n)` and the whole stream an
/// exact function of the seed. The `geometry` must be the one returned by
/// [`Topology::random_geometric_with_geometry`] for the run's topology, so
/// the initial graph and the mobility model agree on where everyone is.
#[derive(Clone, Debug)]
pub struct Waypoint {
    /// Initial positions and connection radius of the RGG being walked.
    pub geometry: RggGeometry,
    /// Nominal speed in unit-square units per round, `> 0`.
    pub speed: f64,
}

/// Default nominal speed: crossing the unit square takes ~20 rounds.
pub const DEFAULT_SPEED_PER_ROUND: f64 = 0.05;

impl DynamicsModel for Waypoint {
    fn name(&self) -> String {
        "waypoint".to_string()
    }

    fn validate(&self) -> Result<(), String> {
        if !(self.speed > 0.0 && self.speed.is_finite()) {
            return Err(format!(
                "waypoint speed {} must be a positive number of units per round",
                self.speed
            ));
        }
        // The radius needs no check here: `RggGeometry::new` is the only
        // constructor and rejects non-positive / non-finite radii.
        Ok(())
    }

    fn stream(&self, topology: &Topology, seed: u64) -> Box<dyn MutationStream> {
        assert_eq!(
            self.geometry.num_nodes(),
            topology.num_nodes(),
            "waypoint geometry must cover exactly the run's topology"
        );
        let n = topology.num_nodes();
        let mut stream = WaypointStream {
            speed: self.speed,
            geometry: self.geometry.clone(),
            targets: vec![(0.0, 0.0); n],
            rng: Rng::new(seed),
            heap: BinaryHeap::with_capacity(n),
            seq: 0,
        };
        for u in 0..n as u32 {
            stream.depart_for_next_waypoint(NodeId(u), SimTime::ZERO);
        }
        Box::new(stream)
    }
}

struct WaypointStream {
    speed: f64,
    /// The geometry holds every node's *current* position (and the
    /// spatial index that keeps neighbor re-derivation local).
    geometry: RggGeometry,
    targets: Vec<(f64, f64)>,
    rng: Rng,
    /// Min-heap of `(arrival time, seq, node)`.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    seq: u64,
}

impl WaypointStream {
    /// Pick `node`'s next waypoint and per-leg speed, and schedule its
    /// arrival. Travel time is distance over speed, in round-sized units.
    fn depart_for_next_waypoint(&mut self, node: NodeId, now: SimTime) {
        let (x, y) = self.geometry.position(node);
        let target = (self.rng.gen_f64(), self.rng.gen_f64());
        let leg_speed = self.speed * (0.5 + self.rng.gen_f64());
        let dist = ((x - target.0).powi(2) + (y - target.1).powi(2)).sqrt();
        let ticks = ((dist / leg_speed) * TICKS_PER_ROUND as f64)
            .ceil()
            .max(1.0) as u64;
        self.targets[node.index()] = target;
        self.heap
            .push(Reverse((now.after(ticks), self.seq, node.0)));
        self.seq += 1;
    }
}

impl MutationStream for WaypointStream {
    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, ..))| *t)
    }

    fn next(&mut self) -> Option<Mutation> {
        let Reverse((time, _, node)) = self.heap.pop()?;
        let node = NodeId(node);
        self.geometry.move_to(node, self.targets[node.index()]);
        let neighbors = self.geometry.neighbors_of(node);
        self.depart_for_next_waypoint(node, time);
        Some(Mutation {
            time,
            kind: MutationKind::Rewire { node, neighbors },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: usize, seed: u64) -> (Waypoint, Topology) {
        let mut rng = Rng::new(seed);
        let (topo, geometry) = Topology::random_geometric_with_geometry(n, &mut rng);
        (
            Waypoint {
                geometry,
                speed: DEFAULT_SPEED_PER_ROUND,
            },
            topo,
        )
    }

    #[test]
    fn emits_valid_rewires_in_time_order() {
        let (model, topo) = model(20, 11);
        let mut stream = model.stream(&topo, 5);
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            let m = stream.next().expect("mobility never stops");
            assert!(m.time >= last);
            last = m.time;
            let MutationKind::Rewire { node, neighbors } = m.kind else {
                panic!("waypoint emitted a non-rewire mutation");
            };
            assert!(node.index() < 20);
            assert!(neighbors.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            assert!(!neighbors.contains(&node), "no self-loops");
            assert!(neighbors.iter().all(|v| v.index() < 20));
        }
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let (model, topo) = model(15, 3);
        let drain = |seed| {
            let mut s = model.stream(&topo, seed);
            (0..120).filter_map(|_| s.next()).collect::<Vec<_>>()
        };
        assert_eq!(drain(9), drain(9));
        assert_ne!(drain(9), drain(10));
    }

    #[test]
    fn every_node_eventually_moves() {
        let (model, topo) = model(10, 21);
        let mut stream = model.stream(&topo, 2);
        let mut moved = std::collections::HashSet::new();
        for _ in 0..200 {
            if let Some(Mutation {
                kind: MutationKind::Rewire { node, .. },
                ..
            }) = stream.next()
            {
                moved.insert(node);
            }
        }
        assert_eq!(moved.len(), 10, "all nodes should reach waypoints");
    }

    #[test]
    fn validate_rejects_degenerate_speeds() {
        let (ok, _) = model(5, 1);
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.speed = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.speed = f64::INFINITY;
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn degenerate_radii_cannot_even_be_constructed() {
        // A zero radius is rejected at geometry construction, so no
        // waypoint model can ever carry one.
        let _ = gossip_core::RggGeometry::new(vec![(0.5, 0.5)], 0.0);
    }
}
