//! Node churn: devices depart and (optionally) rejoin.

use crate::{geometric_ticks, DynamicsModel, Mutation, MutationKind, MutationStream};

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gossip_core::{NodeId, Rng, SimTime, Topology};

/// What a rejoining node remembers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RejoinPolicy {
    /// The device comes back with its message set intact (it was merely
    /// out of range or powered down; storage persists).
    #[default]
    Keep,
    /// The device comes back empty and must re-learn everything. Sources
    /// still re-learn the rumors they originated — the rumor is their own
    /// data — so a rumor can never go permanently extinct while its
    /// source churns.
    Lose,
    /// Departed nodes never return. The network can drain; a run where
    /// every node departs simply idles to its cap.
    Never,
}

impl RejoinPolicy {
    /// The stable spec/CLI names, in declaration order: `keep`, `lose`,
    /// `none`. One source of truth for every front-end that names
    /// policies, so parsers and help text cannot drift.
    pub const NAMES: &'static [&'static str] = &["keep", "lose", "none"];

    /// The stable spec/CLI name of this policy.
    pub fn name(self) -> &'static str {
        match self {
            RejoinPolicy::Keep => "keep",
            RejoinPolicy::Lose => "lose",
            RejoinPolicy::Never => "none",
        }
    }

    /// Parse a stable name back into a policy (the inverse of
    /// [`name`](Self::name)).
    pub fn parse(name: &str) -> Option<RejoinPolicy> {
        match name {
            "keep" => Some(RejoinPolicy::Keep),
            "lose" => Some(RejoinPolicy::Lose),
            "none" => Some(RejoinPolicy::Never),
            _ => None,
        }
    }
}

/// Memoryless node churn. Each alive node departs after a geometrically
/// sampled lifetime with per-round departure probability `rate` (mean
/// lifetime `1/rate` rounds); a departed node rejoins after a geometric
/// downtime with mean `mean_downtime` rounds, unless the policy is
/// [`RejoinPolicy::Never`].
#[derive(Clone, Copy, Debug)]
pub struct Churn {
    /// Per-round departure probability of an alive node, in `(0, 1)`.
    pub rate: f64,
    /// What a rejoining node remembers.
    pub rejoin: RejoinPolicy,
    /// Mean downtime in rounds, `> 0`.
    pub mean_downtime: f64,
}

/// Default mean downtime: a few rounds out of the network.
pub const DEFAULT_MEAN_DOWNTIME_ROUNDS: f64 = 4.0;

impl Default for Churn {
    fn default() -> Self {
        Churn {
            rate: 0.1,
            rejoin: RejoinPolicy::Keep,
            mean_downtime: DEFAULT_MEAN_DOWNTIME_ROUNDS,
        }
    }
}

impl DynamicsModel for Churn {
    fn name(&self) -> String {
        "churn".to_string()
    }

    fn validate(&self) -> Result<(), String> {
        if !(self.rate > 0.0 && self.rate < 1.0) {
            return Err(format!(
                "churn rate {} must lie in (0, 1); omit churn entirely for a static run",
                self.rate
            ));
        }
        if !(self.mean_downtime > 0.0 && self.mean_downtime.is_finite()) {
            return Err(format!(
                "mean downtime {} must be a positive number of rounds",
                self.mean_downtime
            ));
        }
        Ok(())
    }

    fn stream(&self, topology: &Topology, seed: u64) -> Box<dyn MutationStream> {
        let mut rng = Rng::new(seed);
        let mut heap = BinaryHeap::with_capacity(topology.num_nodes());
        let mut seq = 0u64;
        for u in 0..topology.num_nodes() as u32 {
            let lifetime = geometric_ticks(self.rate, &mut rng);
            heap.push(Reverse((SimTime(lifetime), seq, u, Transition::Depart)));
            seq += 1;
        }
        Box::new(ChurnStream {
            model: *self,
            rng,
            heap,
            seq,
        })
    }
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Transition {
    Depart,
    Rejoin,
}

struct ChurnStream {
    model: Churn,
    rng: Rng,
    /// Min-heap of per-node pending transitions, ordered by `(time, seq)`
    /// so simultaneous transitions fire in scheduling order.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32, Transition)>>,
    seq: u64,
}

impl MutationStream for ChurnStream {
    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, ..))| *t)
    }

    fn next(&mut self) -> Option<Mutation> {
        let Reverse((time, _, node, transition)) = self.heap.pop()?;
        let node = NodeId(node);
        match transition {
            Transition::Depart => {
                if self.model.rejoin != RejoinPolicy::Never {
                    let downtime = geometric_ticks(1.0 / self.model.mean_downtime, &mut self.rng);
                    self.heap.push(Reverse((
                        time.after(downtime),
                        self.seq,
                        node.0,
                        Transition::Rejoin,
                    )));
                    self.seq += 1;
                }
                Some(Mutation {
                    time,
                    kind: MutationKind::Depart(node),
                })
            }
            Transition::Rejoin => {
                let lifetime = geometric_ticks(self.model.rate, &mut self.rng);
                self.heap.push(Reverse((
                    time.after(lifetime),
                    self.seq,
                    node.0,
                    Transition::Depart,
                )));
                self.seq += 1;
                Some(Mutation {
                    time,
                    kind: MutationKind::Rejoin {
                        node,
                        reset_messages: self.model.rejoin == RejoinPolicy::Lose,
                    },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(model: &Churn, topo: &Topology, seed: u64, count: usize) -> Vec<Mutation> {
        let mut stream = model.stream(topo, seed);
        (0..count).filter_map(|_| stream.next()).collect()
    }

    #[test]
    fn nodes_alternate_depart_and_rejoin() {
        let model = Churn {
            rate: 0.5,
            rejoin: RejoinPolicy::Keep,
            mean_downtime: 1.0,
        };
        let topo = Topology::ring(6);
        let mutations = drain(&model, &topo, 3, 100);
        let mut down = [false; 6];
        let mut last = SimTime::ZERO;
        for m in &mutations {
            assert!(m.time >= last);
            last = m.time;
            match m.kind {
                MutationKind::Depart(u) => {
                    assert!(!down[u.index()], "{u} departed twice in a row");
                    down[u.index()] = true;
                }
                MutationKind::Rejoin {
                    node,
                    reset_messages,
                } => {
                    assert!(down[node.index()], "{node} rejoined while alive");
                    assert!(!reset_messages, "Keep policy must not reset");
                    down[node.index()] = false;
                }
                ref other => panic!("churn emitted {other:?}"),
            }
        }
    }

    #[test]
    fn lose_policy_marks_resets() {
        let model = Churn {
            rate: 0.5,
            rejoin: RejoinPolicy::Lose,
            mean_downtime: 1.0,
        };
        let topo = Topology::ring(4);
        let rejoins = drain(&model, &topo, 1, 50)
            .into_iter()
            .filter(|m| matches!(m.kind, MutationKind::Rejoin { .. }))
            .count();
        assert!(rejoins > 0, "expected rejoins in 50 mutations");
        for m in drain(&model, &topo, 1, 50) {
            if let MutationKind::Rejoin { reset_messages, .. } = m.kind {
                assert!(reset_messages, "Lose policy must reset");
            }
        }
    }

    #[test]
    fn never_policy_exhausts_after_n_departures() {
        let model = Churn {
            rate: 0.5,
            rejoin: RejoinPolicy::Never,
            mean_downtime: 1.0,
        };
        let topo = Topology::ring(5);
        let mut stream = model.stream(&topo, 9);
        let mut departures = 0;
        while let Some(m) = stream.next() {
            assert!(matches!(m.kind, MutationKind::Depart(_)));
            departures += 1;
            assert!(departures <= 5, "more departures than nodes");
        }
        assert_eq!(departures, 5);
        assert_eq!(stream.peek_time(), None);
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let model = Churn::default();
        let topo = Topology::grid(20);
        assert_eq!(drain(&model, &topo, 42, 200), drain(&model, &topo, 42, 200));
        assert_ne!(drain(&model, &topo, 42, 200), drain(&model, &topo, 43, 200));
    }

    #[test]
    fn validate_rejects_degenerate_rates() {
        let ok = Churn::default();
        assert!(ok.validate().is_ok());
        assert!(Churn { rate: 0.0, ..ok }.validate().is_err());
        assert!(Churn { rate: 1.0, ..ok }.validate().is_err());
        assert!(Churn { rate: -0.2, ..ok }.validate().is_err());
        assert!(Churn {
            mean_downtime: 0.0,
            ..ok
        }
        .validate()
        .is_err());
    }
}
